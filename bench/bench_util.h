#ifndef GTER_BENCH_BENCH_UTIL_H_
#define GTER_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the table/figure reproduction binaries.
//
// Every binary accepts:
//   --scale   dataset scale (1.0 = the paper's sizes; default below)
//   --seed    generator seed
//   --threads worker threads for the parallel hot paths (1 = sequential)
//   --simd    compute-kernel level: scalar | avx2 | auto
// and prints a paper-style table to stdout. The default scale is reduced
// so the whole bench suite completes in minutes on a small machine; pass
// --scale=1 to reproduce the published dataset sizes.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gter/gter.h"

namespace gter {
namespace bench {

inline constexpr double kDefaultScale = 0.5;

/// A generated benchmark, preprocessed, with its candidate-pair universe
/// and evaluation labels — the common setup of §VII.
struct Prepared {
  GeneratedDataset data;
  PairSpace pairs;
  std::vector<bool> labels;
  uint64_t positives = 0;

  const Dataset& dataset() const { return data.dataset; }
  const GroundTruth& truth() const { return data.truth; }
};

inline Prepared Prepare(BenchmarkKind kind, double scale, uint64_t seed) {
  Prepared p;
  p.data = GenerateBenchmark(kind, scale, seed);
  RemoveFrequentTerms(&p.data.dataset);
  p.pairs = PairSpace::Build(p.data.dataset);
  p.labels = LabelPairs(p.pairs, p.data.truth);
  p.positives = TotalPositives(p.data.dataset, p.data.truth);
  return p;
}

/// Optimal-threshold F1 for a score vector (the §VII-C protocol for
/// threshold-based methods).
inline double ScoreF1(const Prepared& p, const std::vector<double>& scores) {
  return BestF1Threshold(scores, p.labels, p.positives).f1;
}

/// F1 of hard decisions.
inline double DecisionF1(const Prepared& p, const std::vector<bool>& matches) {
  return EvaluatePairPredictions(p.pairs, matches, p.labels, p.positives).F1();
}

/// Parses the standard --scale/--seed flags plus the shared stage flags
/// from common_flags.h (plus any the caller added), and applies
/// --log_level and --simd.
inline bool ParseStandardFlags(int argc, char** argv, FlagSet* flags) {
  flags->AddDouble("scale", kDefaultScale, "dataset scale (1.0 = paper size)");
  flags->AddInt("seed", 2018, "generator seed");
  AddCommonStageFlags(flags);
  Status s = flags->Parse(argc, argv);
  if (s.ok()) s = ApplyCommonStageFlags(*flags);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags->Usage().c_str());
    return false;
  }
  return true;
}

/// Pool for --threads, or nullptr for the sequential path. Every stage is
/// bit-identical for any thread count, so results match --threads=1 runs.
inline ThreadPool* BenchPool(const FlagSet& flags) {
  static std::unique_ptr<ThreadPool> pool =
      MakeThreadPool(flags.GetInt("threads"));
  return pool.get();
}

/// ExecContext over BenchPool: the standard context for a bench binary's
/// stage calls (ambient metrics/trace from BenchMetricsScope, no cancel).
inline ExecContext BenchContext(const FlagSet& flags) {
  return ExecContext::WithPool(BenchPool(flags));
}

/// Installs a MetricsRegistry (--metrics_out) and/or a TraceRecorder
/// (--trace_out) for the binary's lifetime and writes the JSON dumps on
/// destruction. Declare one at the top of main(), after ParseStandardFlags:
///
///   bench::BenchMetricsScope metrics(flags);
///
/// With both flags empty this is a no-op and the pipeline runs with
/// observability fully disabled (the zero-cost path).
class BenchMetricsScope {
 public:
  explicit BenchMetricsScope(const FlagSet& flags)
      : path_(flags.GetString("metrics_out")),
        trace_path_(flags.GetString("trace_out")) {
    if (!path_.empty()) {
      registry_ = std::make_unique<MetricsRegistry>();
      DeclarePipelineMetrics(registry_.get());
      install_ = std::make_unique<ScopedMetricsInstall>(registry_.get());
    }
    if (!trace_path_.empty()) {
      SetCurrentThreadTraceName("main");
      trace_ = std::make_unique<TraceRecorder>();
      trace_install_ = std::make_unique<ScopedTraceInstall>(trace_.get());
    }
    // Stamp every metrics dump / trace with the compute path that ran.
    EmitCpuInfo(registry_.get(), trace_.get());
  }

  ~BenchMetricsScope() {
    if (registry_ != nullptr) {
      install_.reset();
      Status s = WriteMetricsJson(path_, *registry_);
      if (s.ok()) {
        std::printf("metrics written to %s\n", path_.c_str());
      } else {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
      }
    }
    if (trace_ != nullptr) {
      trace_install_.reset();
      Status s = WriteTraceJson(trace_path_, *trace_);
      if (s.ok()) {
        std::printf("trace written to %s (%zu events)\n", trace_path_.c_str(),
                    trace_->event_count());
      } else {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
      }
    }
  }

  MetricsRegistry* registry() const { return registry_.get(); }

 private:
  std::string path_;
  std::string trace_path_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<ScopedMetricsInstall> install_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<ScopedTraceInstall> trace_install_;
};

inline const std::vector<BenchmarkKind>& AllBenchmarks() {
  static const std::vector<BenchmarkKind> kAll = {
      BenchmarkKind::kRestaurant, BenchmarkKind::kProduct,
      BenchmarkKind::kPaper};
  return kAll;
}

/// Prints a separator line sized to `width`.
inline void Rule(size_t width) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

}  // namespace bench
}  // namespace gter

#endif  // GTER_BENCH_BENCH_UTIL_H_
