// Reproduces Table II: F1-scores of all 15 methods on the three benchmark
// datasets. The paper copied the machine-learning and crowd rows from the
// original publications; here every method runs for real on our substrate
// (the ML rows are simplified analogues and the crowd rows use a simulated
// oracle — see DESIGN.md §3). Crowd methods additionally report the
// question count, the cost axis the paper discusses.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

struct Row {
  std::string name;
  double f1[3] = {0, 0, 0};
  size_t questions[3] = {0, 0, 0};
  bool is_crowd = false;
};

void Run(double scale, uint64_t seed, double crowd_error) {
  std::vector<Prepared> prepared;
  for (BenchmarkKind kind : AllBenchmarks()) {
    prepared.push_back(Prepare(kind, scale, seed));
  }

  std::vector<Row> rows;
  auto add_scorer = [&](PairScorer& scorer) {
    Row row;
    row.name = scorer.name();
    for (size_t d = 0; d < prepared.size(); ++d) {
      row.f1[d] = ScoreF1(prepared[d],
                          scorer.Score(prepared[d].dataset(),
                                       prepared[d].pairs));
    }
    rows.push_back(row);
  };

  std::printf("Table II: F1-scores in three datasets (scale=%.2f)\n", scale);

  // -- String-distance methods ------------------------------------------
  JaccardScorer jaccard;
  add_scorer(jaccard);
  TfIdfScorer tfidf;
  add_scorer(tfidf);

  // -- Learning-based analogues -----------------------------------------
  std::vector<std::vector<std::vector<double>>> features;
  for (auto& p : prepared) {
    features.push_back(ComputePairFeatures(p.dataset(), p.pairs));
  }
  {
    Row row;
    row.name = "Gaussian Mixture Model*";
    for (size_t d = 0; d < prepared.size(); ++d) {
      row.f1[d] = ScoreF1(prepared[d], GmmMatchProbability(features[d]));
    }
    rows.push_back(row);
  }
  {
    Row row;
    row.name = "HGM+Bootstrap*";
    for (size_t d = 0; d < prepared.size(); ++d) {
      row.f1[d] =
          ScoreF1(prepared[d], BootstrapGmmMatchProbability(features[d]));
    }
    rows.push_back(row);
  }
  {
    Row row;
    row.name = "MLE (Fellegi-Sunter)*";
    for (size_t d = 0; d < prepared.size(); ++d) {
      FellegiSunterResult fs =
          FitFellegiSunter(prepared[d].dataset(), prepared[d].pairs, {});
      row.f1[d] = ScoreF1(prepared[d], fs.probability);
    }
    rows.push_back(row);
  }
  {
    Row row;
    row.name = "SVM (supervised)*";
    for (size_t d = 0; d < prepared.size(); ++d) {
      row.f1[d] = ScoreF1(prepared[d],
                          SvmMatchScore(features[d], prepared[d].labels));
    }
    rows.push_back(row);
  }

  // -- Crowd-assisted strategies over the simulated oracle ----------------
  auto add_crowd = [&](const std::string& name, auto runner) {
    Row row;
    row.name = name;
    row.is_crowd = true;
    for (size_t d = 0; d < prepared.size(); ++d) {
      std::vector<double> machine =
          JaccardScorer().Score(prepared[d].dataset(), prepared[d].pairs);
      CrowdOracle oracle(prepared[d].truth(), crowd_error, seed + d);
      CrowdRunResult result = runner(prepared[d].pairs, machine, &oracle);
      row.f1[d] = DecisionF1(prepared[d], result.matches);
      row.questions[d] = result.questions;
    }
    rows.push_back(row);
  };
  // The paper's 0.3 Jaccard machine filter assumes real Abt-Buy token
  // overlap; our noisier synthetic product text needs a lower cut to keep
  // candidate recall comparable.
  add_crowd("CrowdER*", [](const PairSpace& pairs,
                           const std::vector<double>& m, CrowdOracle* o) {
    CrowdErOptions options;
    options.filter_threshold = 0.15;
    return RunCrowdEr(pairs, m, o, options);
  });
  add_crowd("TransM*", [](const PairSpace& pairs,
                          const std::vector<double>& m, CrowdOracle* o) {
    TransMOptions options;
    options.filter_threshold = 0.15;
    return RunTransM(pairs, m, o, options);
  });
  add_crowd("GCER*", [](const PairSpace& pairs, const std::vector<double>& m,
                        CrowdOracle* o) {
    GcerOptions options;
    options.budget = pairs.size() / 4 + 100;
    return RunGcer(pairs, m, o, options);
  });
  add_crowd("ACD*", [](const PairSpace& pairs, const std::vector<double>& m,
                       CrowdOracle* o) {
    AcdOptions options;
    options.filter_threshold = 0.15;
    return RunAcd(pairs, m, o, options);
  });
  add_crowd("Power+*", [](const PairSpace& pairs,
                          const std::vector<double>& m, CrowdOracle* o) {
    return RunPowerPlus(pairs, m, o, {});
  });

  // -- Graph-theoretic baselines (§III) -----------------------------------
  SimRankScorer simrank;
  add_scorer(simrank);
  TwIdfPageRankScorer pagerank;
  add_scorer(pagerank);
  HybridScorer hybrid;
  add_scorer(hybrid);

  // -- The proposed fusion framework --------------------------------------
  {
    Row row;
    row.name = "ITER+CliqueRank";
    for (size_t d = 0; d < prepared.size(); ++d) {
      FusionConfig config;  // α=20, S=20, η=0.98, 5 rounds — §VII-C
      FusionPipeline pipeline(prepared[d].dataset(), config);
      FusionResult result = pipeline.Run().value();
      row.f1[d] = DecisionF1(prepared[d], result.matches);
    }
    rows.push_back(row);
  }

  Rule(78);
  std::printf("%-26s %12s %12s %12s\n", "Method", "Restaurant", "Product",
              "Paper");
  Rule(78);
  for (const Row& row : rows) {
    std::printf("%-26s %12.3f %12.3f %12.3f", row.name.c_str(), row.f1[0],
                row.f1[1], row.f1[2]);
    if (row.is_crowd) {
      std::printf("   (questions: %zu/%zu/%zu)", row.questions[0],
                  row.questions[1], row.questions[2]);
    }
    std::printf("\n");
  }
  Rule(78);
  std::printf(
      "* simplified analogue / simulated crowd oracle (error rate %.2f); "
      "see DESIGN.md §3\n",
      crowd_error);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddDouble("crowd_error", 0.05, "simulated crowd worker error rate");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")),
                   flags.GetDouble("crowd_error"));
  return 0;
}
