// bench_loadgen: concurrent load generator for gterd.
//
// Drives N concurrent connections, each issuing a fixed number of
// requests (a resolve / pair_score / stats mix), and reports throughput
// and latency percentiles:
//
//   loadgen: 16 conns x 250 reqs: 4000 ok, 0 errors, 0 deadline_exceeded
//   qps 12345.6  p50 0.41 ms  p95 1.02 ms  p99 2.31 ms
//
// Modes:
//   --port=0 (default) self-hosts: generates a dataset at --scale, trains
//     a ResolutionService, starts a GterdServer on an ephemeral loopback
//     port, and hammers it — the perf-gate configuration, hermetic in one
//     process. The server gets an ephemeral metrics port, and after the
//     run its /metrics is scraped to cross-check the server-side resolve
//     work_us p99 against the client-side resolve p99. --incremental
//     self-hosts the updatable ResolverState engine instead of the
//     frozen batch model (add_record then ingests for real).
//   --port=N targets an already-running gterd (--host to point off-box).
//     Queries are built from a stats() probe, so no dataset is needed.
//     --metrics_port=N enables the same scrape cross-check.
//
// --mix=R:A:P:S sets the per-connection request cycle as a ratio of
// resolve : add_record : pair_score : stats calls. The default 2:0:1:1
// is the historical mix; 8:1:4:3 is the mixed-ingest gate configuration.
// A method that cannot run degrades in place (resolve/add_record need
// record texts, pair_score needs >= 2 records; the fallback is stats),
// so external-mode runs without texts still issue every slot.
//
// --warmup_requests=N has every connection issue N unrecorded requests
// before measurement starts (cache/JIT-free here, but it drains the
// first-connection and allocator cold paths out of the percentiles).
//
// --p99_budget_ms=B (0 = off) turns the run into a latency gate: exit 1
// when the measured client p99 exceeds B. tools/perf_gate.sh wires this
// through PERF_GATE_P99_BUDGET_MS.
//
// Exit code: 0 when every request got a well-formed response (deadline
// errors are valid responses), 1 on any transport/protocol error or a
// blown latency budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace gter {
namespace {

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::vector<double> resolve_latencies_ms;  // resolve calls only
  uint64_t ok = 0;
  uint64_t deadline = 0;  // Cancelled / DeadlineExceeded responses
  uint64_t errors = 0;    // transport or malformed-frame failures
};

enum class ReqKind { kResolve, kAddRecord, kPairScore, kStats };

/// Parses "R:A:P:S" (resolve : add_record : pair_score : stats ratio)
/// into the per-connection request cycle. Returns false on malformed
/// input or an all-zero ratio.
bool ParseMix(const std::string& spec, std::vector<ReqKind>* cycle) {
  constexpr ReqKind kOrder[] = {ReqKind::kResolve, ReqKind::kAddRecord,
                                ReqKind::kPairScore, ReqKind::kStats};
  cycle->clear();
  size_t pos = 0;
  for (size_t field = 0; field < 4; ++field) {
    size_t end = spec.find(':', pos);
    if (field < 3 ? end == std::string::npos : end != std::string::npos) {
      return false;
    }
    if (field == 3) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const unsigned long count = std::strtoul(token.c_str(), nullptr, 10);
    if (count > 1000) return false;  // the cycle is repeated, keep it short
    for (unsigned long k = 0; k < count; ++k) cycle->push_back(kOrder[field]);
    pos = end + 1;
  }
  return !cycle->empty();
}

/// One connection's request loop. `texts` drives resolve/add_record
/// bodies; a cycle slot whose method cannot run here (no texts, or
/// pair_score with < 2 records) degrades toward stats so every slot
/// still issues a request. The first `warmup` requests are issued but
/// not recorded.
void RunWorker(const std::string& host, uint16_t port, uint64_t requests,
               uint64_t warmup, int64_t deadline_ms, uint64_t num_records,
               const std::vector<std::string>* texts,
               const std::vector<ReqKind>* cycle, uint64_t seed,
               WorkerResult* out) {
  auto connected = GterdClient::Connect(host, port);
  if (!connected.ok()) {
    out->errors += requests;
    return;
  }
  GterdClient client = std::move(connected).value();
  Rng rng(seed);
  out->latencies_ms.reserve(requests);
  const bool have_texts = texts != nullptr && !texts->empty();
  for (uint64_t i = 0; i < warmup + requests; ++i) {
    const bool measured = i >= warmup;
    JsonValue params = JsonValue::MakeObject();
    std::string method;
    ReqKind kind = (*cycle)[i % cycle->size()];
    // Degradation ladder: resolve/add_record need texts, pair_score
    // needs two records; anything unservable lands on stats.
    if ((kind == ReqKind::kResolve || kind == ReqKind::kAddRecord) &&
        !have_texts) {
      kind = ReqKind::kPairScore;
    }
    if (kind == ReqKind::kPairScore && num_records < 2) {
      kind = ReqKind::kStats;
    }
    switch (kind) {
      case ReqKind::kResolve:
        method = "resolve";
        params.Set("text", JsonValue::MakeString(
                               (*texts)[rng.NextBounded(texts->size())]));
        break;
      case ReqKind::kAddRecord:
        method = "add_record";
        params.Set("text", JsonValue::MakeString(
                               (*texts)[rng.NextBounded(texts->size())]));
        params.Set("source", JsonValue::MakeNumber(0.0));
        break;
      case ReqKind::kPairScore:
        method = "pair_score";
        params.Set("a", JsonValue::MakeNumber(static_cast<double>(
                            rng.NextBounded(num_records))));
        params.Set("b", JsonValue::MakeNumber(static_cast<double>(
                            rng.NextBounded(num_records))));
        break;
      case ReqKind::kStats:
        method = "stats";
        break;
    }
    const auto start = std::chrono::steady_clock::now();
    auto response = client.Call(method, std::move(params), deadline_ms);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (measured) {
      const double ms =
          std::chrono::duration<double, std::milli>(elapsed).count();
      out->latencies_ms.push_back(ms);
      if (method == "resolve") out->resolve_latencies_ms.push_back(ms);
    }
    if (response.ok()) {
      if (measured) ++out->ok;
    } else if (IsCancellation(response.status())) {
      if (measured) ++out->deadline;
    } else {
      ++out->errors;  // counted even in warmup: a broken run must not pass
      if (response.status().code() == StatusCode::kIOError) return;
    }
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("host", "127.0.0.1", "gterd address (external mode)");
  flags.AddInt("port", 0, "gterd port; 0 self-hosts an in-process server");
  flags.AddInt("connections", 16, "concurrent connections");
  flags.AddInt("requests", 250, "requests per connection");
  flags.AddInt("warmup_requests", 0,
               "unrecorded warmup requests per connection");
  flags.AddInt("deadline_ms", 0, "per-request deadline (0 = none)");
  flags.AddDouble("p99_budget_ms", 0.0,
                  "fail (exit 1) when client p99 exceeds this (0 = off)");
  flags.AddInt("metrics_port", 0,
               "external server's /metrics port for the scrape cross-check "
               "(self-host mode discovers it automatically)");
  flags.AddString("kind", "restaurant",
                  "self-host dataset kind: restaurant | product | paper");
  flags.AddString("mix", "2:0:1:1",
                  "resolve:add_record:pair_score:stats request ratio");
  flags.AddBool("incremental", false,
                "self-host the incremental ResolverState engine "
                "(add_record ingests for real)");
  if (!bench::ParseStandardFlags(argc, argv, &flags)) return 2;
  bench::BenchMetricsScope metrics(flags);

  std::vector<ReqKind> cycle;
  if (!ParseMix(flags.GetString("mix"), &cycle)) {
    std::fprintf(stderr, "loadgen: bad --mix '%s' (want R:A:P:S, e.g. "
                 "2:0:1:1)\n",
                 flags.GetString("mix").c_str());
    return 2;
  }

  const auto connections = static_cast<size_t>(flags.GetInt("connections"));
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests"));
  const auto warmup =
      static_cast<uint64_t>(std::max<int64_t>(0, flags.GetInt("warmup_requests")));
  const int64_t deadline_ms = flags.GetInt("deadline_ms");
  const double p99_budget_ms = flags.GetDouble("p99_budget_ms");
  std::string host = flags.GetString("host");
  auto port = static_cast<uint16_t>(flags.GetInt("port"));
  auto metrics_port = static_cast<uint16_t>(flags.GetInt("metrics_port"));

  // Self-host state (kept alive for the run when --port=0).
  std::unique_ptr<ResolutionService> service;
  std::unique_ptr<GterdServer> server;
  std::vector<std::string> texts;
  uint64_t num_records = 0;

  if (port == 0) {
    host = "127.0.0.1";
    BenchmarkKind kind;
    const std::string& name = flags.GetString("kind");
    if (name == "restaurant") {
      kind = BenchmarkKind::kRestaurant;
    } else if (name == "product") {
      kind = BenchmarkKind::kProduct;
    } else if (name == "paper") {
      kind = BenchmarkKind::kPaper;
    } else {
      std::fprintf(stderr, "unknown --kind '%s'\n", name.c_str());
      return 2;
    }
    GeneratedDataset data =
        GenerateBenchmark(kind, flags.GetDouble("scale"),
                          static_cast<uint64_t>(flags.GetInt("seed")));
    RemoveFrequentTerms(&data.dataset);
    num_records = data.dataset.size();
    texts.reserve(num_records);
    for (const Record& r : data.dataset.records()) {
      texts.push_back(r.raw_text);
    }
    std::fprintf(stderr, "loadgen: training on %llu records...\n",
                 static_cast<unsigned long long>(num_records));
    ResolutionServiceOptions service_options;
    service_options.incremental = flags.GetBool("incremental");
    auto built = ResolutionService::Create(
        std::move(data.dataset), std::move(service_options),
        bench::BenchContext(flags));
    if (!built.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    service = std::move(built).value();
    GterdServerOptions server_options;
    server_options.metrics_port = 0;  // ephemeral: scraped after the run
    auto started = GterdServer::Start(service.get(), server_options,
                                      bench::BenchContext(flags));
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
    port = server->port();
    metrics_port = server->metrics_port();
  } else {
    // Probe the target so pair_score draws valid record ids.
    auto probe = GterdClient::Connect(host, port);
    if (!probe.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
    auto stats = probe.value().Call("stats", JsonValue::MakeObject());
    if (!stats.ok()) {
      std::fprintf(stderr, "loadgen: stats probe: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    num_records =
        static_cast<uint64_t>(stats.value().NumberOr("records", 0.0));
  }

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back(RunWorker, host, port, requests, warmup,
                         deadline_ms, num_records,
                         texts.empty() ? nullptr : &texts, &cycle,
                         static_cast<uint64_t>(flags.GetInt("seed")) + c,
                         &results[c]);
  }
  for (auto& w : workers) w.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  uint64_t ok = 0, deadline = 0, errors = 0;
  std::vector<double> latencies;
  std::vector<double> resolve_latencies;
  for (const WorkerResult& r : results) {
    ok += r.ok;
    deadline += r.deadline;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    resolve_latencies.insert(resolve_latencies.end(),
                             r.resolve_latencies_ms.begin(),
                             r.resolve_latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(resolve_latencies.begin(), resolve_latencies.end());
  const double qps =
      wall_seconds > 0.0 ? static_cast<double>(latencies.size()) / wall_seconds
                         : 0.0;

  std::printf("loadgen: %zu conns x %llu reqs: %llu ok, %llu errors, "
              "%llu deadline_exceeded\n",
              connections, static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(deadline));
  const double client_p99 = Percentile(latencies, 0.99);
  std::printf("qps %.1f  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n", qps,
              Percentile(latencies, 0.50), Percentile(latencies, 0.95),
              client_p99);

  // Scrape cross-check: read the server's own windowed resolve queue_us /
  // work_us histograms off /metrics and put their p99s next to the
  // client-observed resolve p99. Client latency ≈ queue + work + wire, so
  // client and server-side queue+work should agree closely (within ~20%
  // once work is non-trivial); the split localizes a latency regression
  // to the handler (work moves), admission backlog (queue moves), or the
  // transport (only the client moves).
  if (metrics_port != 0 && !resolve_latencies.empty()) {
    auto scraped = GterdClient::HttpGet(host, metrics_port, "/metrics");
    if (!scraped.ok()) {
      std::fprintf(stderr, "loadgen: /metrics scrape: %s\n",
                   scraped.status().ToString().c_str());
      ++errors;
    } else {
      PromParsedHistogram queue_us, work_us;
      if (!FindPromHistogram(scraped.value(), "gter_server_resolve_queue_us",
                             &queue_us) ||
          !FindPromHistogram(scraped.value(), "gter_server_resolve_work_us",
                             &work_us)) {
        std::fprintf(stderr,
                     "loadgen: gter_server_resolve_{queue,work}_us missing "
                     "from /metrics\n");
        ++errors;
      } else {
        const double work_p99_ms =
            PromHistogramQuantile(work_us, 0.99) / 1000.0;
        const double queue_p99_ms =
            PromHistogramQuantile(queue_us, 0.99) / 1000.0;
        const double server_p99_ms = queue_p99_ms + work_p99_ms;
        const double client_resolve_p99 = Percentile(resolve_latencies, 0.99);
        const double ratio = server_p99_ms > 0.0
                                 ? client_resolve_p99 / server_p99_ms
                                 : 0.0;
        std::printf("resolve p99: client %.3f ms, server queue+work %.3f ms "
                    "(queue %.3f + work %.3f; x%.2f, %llu server-side "
                    "observations)\n",
                    client_resolve_p99, server_p99_ms, queue_p99_ms,
                    work_p99_ms, ratio,
                    static_cast<unsigned long long>(work_us.count));
      }
    }
  }

  if (p99_budget_ms > 0.0 && client_p99 > p99_budget_ms) {
    std::fprintf(stderr,
                 "loadgen: LATENCY BUDGET EXCEEDED: client p99 %.3f ms > "
                 "budget %.3f ms\n",
                 client_p99, p99_budget_ms);
    return 1;
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace gter

int main(int argc, char** argv) { return gter::Run(argc, argv); }
