// Reproduces Table IV: Spearman's rank correlation between the learned
// term ranking and the oracle score(t) ranking (§VII-E), for the PageRank
// term salience and for ITER's discrimination power. Both the round-1 ITER
// ranking (uniform p) and the post-fusion ranking are reported.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  std::printf(
      "Table IV: Spearman's rank correlation with oracle score(t) "
      "(scale=%.2f)\n",
      scale);
  Rule(70);
  std::printf("%-22s %12s %12s %12s\n", "", "Restaurant", "Product", "Paper");
  Rule(70);

  std::vector<double> rho_pagerank, rho_iter, rho_fused;
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph graph = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterResult iter =
        RunIter(graph, std::vector<double>(p.pairs.size(), 1.0)).value();
    FusionConfig config;
    config.rounds = 3;
    FusionPipeline pipeline(p.dataset(), config);
    FusionResult fused = pipeline.Run().value();
    TwIdfPageRankScorer pagerank;
    pagerank.Score(p.dataset(), p.pairs);
    auto oracle = OracleTermScores(graph, p.pairs, p.truth());

    std::vector<double> iw, fw, pw, ow;
    for (TermId t = 0; t < graph.num_terms(); ++t) {
      if (graph.PairsOfTerm(t).empty()) continue;
      iw.push_back(iter.term_weights[t]);
      fw.push_back(fused.term_weights[t]);
      pw.push_back(pagerank.term_salience()[t]);
      ow.push_back(oracle[t]);
    }
    rho_pagerank.push_back(SpearmanRho(pw, ow));
    rho_iter.push_back(SpearmanRho(iw, ow));
    rho_fused.push_back(SpearmanRho(fw, ow));
  }

  std::printf("%-22s %12.2f %12.2f %12.2f\n", "PageRank", rho_pagerank[0],
              rho_pagerank[1], rho_pagerank[2]);
  std::printf("%-22s %12.2f %12.2f %12.2f\n", "ITER (round 1)", rho_iter[0],
              rho_iter[1], rho_iter[2]);
  std::printf("%-22s %12.2f %12.2f %12.2f\n", "ITER (after fusion)",
              rho_fused[0], rho_fused[1], rho_fused[2]);
  Rule(70);
  std::printf(
      "Note: the synthetic Restaurant oracle is nearly all ties (score 0 or "
      "1),\nwhich deflates rank correlations there; see EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
