// Ablation A1: sensitivity to the non-linear transition exponent α
// (Eq. 11). The paper argues α must be "large enough to generate a
// dominating gap" and uses α=20 universally; this sweep shows F1 at the
// universal η across α, reproducing that reasoning: small α lets random
// walks leak across weak edges (precision collapses), large α saturates.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  const std::vector<double> alphas = {1, 2, 5, 10, 20, 40};
  std::printf("Ablation A1: alpha sweep, F1 at eta=0.98 (scale=%.2f)\n",
              scale);
  Rule(64);
  std::printf("%8s %14s %14s %14s\n", "alpha", "Restaurant", "Product",
              "Paper");
  Rule(64);

  // One prepared dataset + round-1 ITER per benchmark; CliqueRank reruns
  // per α on the same similarity graph.
  struct Ctx {
    Prepared p;
    RecordGraph graph;
  };
  std::vector<Ctx> ctxs;
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph bipartite = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterResult iter =
        RunIter(bipartite, std::vector<double>(p.pairs.size(), 1.0)).value();
    RecordGraph graph =
        RecordGraph::Build(p.dataset().size(), p.pairs, iter.pair_scores);
    ctxs.push_back({std::move(p), std::move(graph)});
  }

  for (double alpha : alphas) {
    std::printf("%8.0f", alpha);
    for (const Ctx& ctx : ctxs) {
      CliqueRankOptions options;
      options.alpha = alpha;
      CliqueRankResult result =
          RunCliqueRank(ctx.graph, ctx.p.pairs, options).value();
      std::vector<bool> matches(ctx.p.pairs.size());
      for (PairId pid = 0; pid < ctx.p.pairs.size(); ++pid) {
        matches[pid] = result.pair_probability[pid] >= 0.98;
      }
      std::printf(" %14.3f", DecisionF1(ctx.p, matches));
    }
    std::printf("\n");
  }
  Rule(64);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
