// Scaling study: the complexity claims of §V-C and §VI-C measured
// empirically — ITER's per-sweep cost is linear in the bipartite edge
// count; CliqueRank grows with the record-graph size (up to cubic for the
// dense engine); RSS is the cubic-times-samples baseline the paper
// replaces. Sweeps the Paper benchmark across scales.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(uint64_t seed) {
  const std::vector<double> scales = {0.1, 0.2, 0.3, 0.4, 0.5};
  std::printf("Scaling on the Paper benchmark (per component)\n");
  Rule(92);
  std::printf("%7s %8s %12s %12s %14s %14s %14s\n", "scale", "records",
              "bip.edges", "Gr edges", "ITER sweep(ms)", "CliqueRank(s)",
              "RSS est.(s)");
  Rule(92);

  for (double scale : scales) {
    Prepared p = Prepare(BenchmarkKind::kPaper, scale, seed);
    BipartiteGraph bipartite = BipartiteGraph::Build(p.dataset(), p.pairs);

    // One ITER sweep, timed.
    IterOptions iter_options;
    iter_options.max_iterations = 1;
    iter_options.tolerance = 0.0;
    std::vector<double> uniform(p.pairs.size(), 1.0);
    Stopwatch iter_watch;
    IterResult iter = RunIter(bipartite, uniform, iter_options).value();
    double iter_ms = iter_watch.ElapsedMillis();

    // Converged similarities for the graph stages.
    iter = RunIter(bipartite, uniform).value();
    RecordGraph graph =
        RecordGraph::Build(p.dataset().size(), p.pairs, iter.pair_scores);

    Stopwatch cr_watch;
    RunCliqueRank(graph, p.pairs, {}).value();
    double cr_s = cr_watch.ElapsedSeconds();

    // RSS estimate from a reduced-walk probe (per-edge independent).
    RssOptions probe;
    probe.num_walks = 4;
    Stopwatch rss_watch;
    RunRss(graph, p.pairs, probe).value();
    double rss_s = rss_watch.ElapsedSeconds() * (100.0 / 4.0);

    std::printf("%7.2f %8zu %12zu %12zu %14.1f %14.2f %14.1f\n", scale,
                p.dataset().size(), bipartite.num_edges(), graph.num_edges(),
                iter_ms, cr_s, rss_s);
  }
  Rule(92);
  std::printf(
      "ITER per-sweep time should track bip.edges linearly; CliqueRank\n"
      "tracks the record-graph size (dense engine: n^3 per step).\n");
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
