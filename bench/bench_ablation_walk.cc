// Ablation A2: the two rectified-walk refinements of §VI-B — the per-step
// bonus toward the target (the big-clique fix) and the early-stop rule.
// The boost toggle is evaluated through CliqueRank on every dataset; the
// early-stop toggle only exists in the Monte-Carlo RSS sampler and is
// evaluated there on the (small) Restaurant graph.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  std::printf("Ablation A2: walk refinements, F1 at eta=0.98 (scale=%.2f)\n",
              scale);
  Rule(64);
  std::printf("%-24s %12s %12s %12s\n", "CliqueRank variant", "Restaurant",
              "Product", "Paper");
  Rule(64);

  struct Ctx {
    Prepared p;
    RecordGraph graph;
  };
  std::vector<Ctx> ctxs;
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph bipartite = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterResult iter =
        RunIter(bipartite, std::vector<double>(p.pairs.size(), 1.0)).value();
    RecordGraph graph =
        RecordGraph::Build(p.dataset().size(), p.pairs, iter.pair_scores);
    ctxs.push_back({std::move(p), std::move(graph)});
  }

  auto run_cliquerank = [&](bool boost, BoostMode mode) {
    for (const Ctx& ctx : ctxs) {
      CliqueRankOptions options;
      options.use_boost = boost;
      options.boost_mode = mode;
      CliqueRankResult result =
          RunCliqueRank(ctx.graph, ctx.p.pairs, options).value();
      std::vector<bool> matches(ctx.p.pairs.size());
      for (PairId pid = 0; pid < ctx.p.pairs.size(); ++pid) {
        matches[pid] = result.pair_probability[pid] >= 0.98;
      }
      std::printf(" %12.3f", DecisionF1(ctx.p, matches));
    }
    std::printf("\n");
  };
  std::printf("%-24s", "boost (sampled b)");
  run_cliquerank(true, BoostMode::kSampled);
  std::printf("%-24s", "boost (expected b)");
  run_cliquerank(true, BoostMode::kExpected);
  std::printf("%-24s", "no boost");
  run_cliquerank(false, BoostMode::kSampled);
  Rule(64);

  // RSS grid on the Restaurant graph (small enough for full sampling).
  const Ctx& restaurant = ctxs[0];
  std::printf("%-36s %12s\n", "RSS variant (Restaurant)", "F1");
  Rule(50);
  for (bool boost : {true, false}) {
    for (bool early_stop : {true, false}) {
      RssOptions options;
      options.use_boost = boost;
      options.early_stop = early_stop;
      options.num_walks = 100;
      auto probability =
          RunRss(restaurant.graph, restaurant.p.pairs, options).value();
      std::vector<bool> matches(restaurant.p.pairs.size());
      for (PairId pid = 0; pid < restaurant.p.pairs.size(); ++pid) {
        matches[pid] = probability[pid] >= 0.98;
      }
      std::printf("boost=%-5s early_stop=%-5s          %12.3f\n",
                  boost ? "on" : "off", early_stop ? "on" : "off",
                  DecisionF1(restaurant.p, matches));
    }
  }
  Rule(50);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
