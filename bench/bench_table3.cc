// Reproduces Table III: efficiency of ITER+CliqueRank — record-graph size,
// total running time for 5 reinforcement rounds, ITER-only time, and the
// speedup of the matrix CliqueRank over Monte-Carlo RSS.
//
// RSS cost is measured on a sample of the edges and extrapolated linearly
// (per-edge sampling is embarrassingly parallel and independent, so the
// extrapolation is exact in expectation); pass --full_rss to force the
// complete run.

#include <algorithm>

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed, bool full_rss,
         const ExecContext& ctx) {
  std::printf("Table III: efficiency of ITER+CliqueRank (scale=%.2f)\n",
              scale);
  Rule(76);
  std::printf("%-34s %12s %12s %12s\n", "", "Restaurant", "Product", "Paper");
  Rule(76);

  struct Col {
    size_t nodes = 0, edges = 0;
    double total_s = 0, iter_s = 0, cliquerank_s = 0, rss_s = 0;
  };
  std::vector<Col> cols;

  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    Col col;
    col.nodes = p.dataset().size();
    col.edges = p.pairs.size();

    FusionConfig config;  // 5 rounds, α=20, S=20
    FusionPipeline pipeline(p.dataset(), config);
    FusionResult result = pipeline.Run(ctx).value();
    col.total_s = result.total_seconds;
    for (const FusionRoundStats& stats : result.round_stats) {
      col.iter_s += stats.iter_seconds;
      col.cliquerank_s += stats.probability_seconds;
    }

    // RSS on the same record graph (one pass; the fusion loop would run it
    // 5 times, so scale accordingly for the speedup figure).
    RecordGraph graph =
        RecordGraph::Build(p.dataset().size(), p.pairs, result.pair_scores);
    RssOptions rss_options;  // M=100 walks, S=20 — §VI-B defaults
    if (full_rss || p.pairs.size() <= 1500) {
      Stopwatch watch;
      RunRss(graph, p.pairs, rss_options, ctx).value();
      col.rss_s = watch.ElapsedSeconds() * 5;  // 5 fusion rounds
    } else {
      // Walks are per-edge independent, so a run with proportionally fewer
      // walks per edge measures the same total work scaled down — rescale
      // to the full M=100.
      RssOptions probe = rss_options;
      probe.num_walks = std::max<size_t>(
          2, rss_options.num_walks * 1500 / p.pairs.size());
      Stopwatch watch;
      RunRss(graph, p.pairs, probe, ctx).value();
      double fraction = static_cast<double>(probe.num_walks) /
                        static_cast<double>(rss_options.num_walks);
      col.rss_s = watch.ElapsedSeconds() / fraction * 5;
    }
    cols.push_back(col);
  }

  auto print_row = [&](const char* label, auto getter, const char* fmt) {
    std::printf("%-34s", label);
    for (const Col& col : cols) std::printf(fmt, getter(col));
    std::printf("\n");
  };
  print_row("Number of nodes in Gr",
            [](const Col& c) { return static_cast<double>(c.nodes); },
            " %12.0f");
  print_row("Number of edges in Gr",
            [](const Col& c) { return static_cast<double>(c.edges); },
            " %12.0f");
  print_row("Total running time (s)",
            [](const Col& c) { return c.total_s; }, " %12.2f");
  print_row("Running time for ITER (s)",
            [](const Col& c) { return c.iter_s; }, " %12.2f");
  print_row("CliqueRank time (s)",
            [](const Col& c) { return c.cliquerank_s; }, " %12.2f");
  print_row("RSS time, extrapolated (s)",
            [](const Col& c) { return c.rss_s; }, " %12.2f");
  print_row("Speedup vs RSS",
            [](const Col& c) {
              return c.cliquerank_s > 0 ? c.rss_s / c.cliquerank_s : 0.0;
            },
            " %11.1fx");
  Rule(76);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddBool("full_rss", false, "run RSS on every edge (slow)");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")),
                   flags.GetBool("full_rss"), gter::bench::BenchContext(flags));
  return 0;
}
