// Ablation A5: sensitivity to the matching-probability threshold η. The
// paper's claim (§VI, §VII-C): because p(r_i, r_j) is a probability, a
// single near-1 threshold works across domains — unlike similarity
// thresholds, which need per-domain tuning. This sweep shows the F1
// plateau near η = 1 and how far each domain's optimum sits from the
// universal 0.98.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  const std::vector<double> etas = {0.5,  0.7,  0.9,  0.95,
                                    0.98, 0.99, 0.999};
  std::printf("Ablation A5: eta sweep (scale=%.2f)\n", scale);
  Rule(64);
  std::printf("%8s %14s %14s %14s\n", "eta", "Restaurant", "Product",
              "Paper");
  Rule(64);

  struct Ctx {
    Prepared p;
    std::vector<double> probability;
  };
  std::vector<Ctx> ctxs;
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    FusionConfig config;
    config.rounds = 3;
    FusionPipeline pipeline(p.dataset(), config);
    FusionResult result = pipeline.Run().value();
    ctxs.push_back({std::move(p), std::move(result.pair_probability)});
  }

  for (double eta : etas) {
    std::printf("%8.3f", eta);
    for (const Ctx& ctx : ctxs) {
      std::vector<bool> matches(ctx.p.pairs.size());
      for (PairId pid = 0; pid < ctx.p.pairs.size(); ++pid) {
        matches[pid] = ctx.probability[pid] >= eta;
      }
      std::printf(" %14.3f", DecisionF1(ctx.p, matches));
    }
    std::printf("\n");
  }
  Rule(64);
  // The tuning-free story in one number: distance between the universal
  // 0.98 and each domain's oracle-optimal threshold on p.
  std::printf("%8s", "best");
  for (const Ctx& ctx : ctxs) {
    SweepResult sweep =
        BestF1Threshold(ctx.probability, ctx.p.labels, ctx.p.positives);
    std::printf("  %.3f@%.3f", sweep.f1, sweep.threshold);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
