// Endgame bench: wall time and clustering quality of every registered
// clustering endgame over the three synthetic families. Fusion trains the
// pairwise probabilities once per family (that cost is reported separately
// and amortizes over endgames); each clusterer then re-partitions the same
// graph — the production shape after `resolve --clusterer=` landed.
//
// Timing protocol: each endgame runs `--reps` times on the trained graph
// and the minimum wall time is reported (clustering is deterministic, so
// min isolates scheduler noise rather than hiding variance).

#include <algorithm>

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(const FlagSet& flags) {
  const double scale = flags.GetDouble("scale");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps"));
  ExecContext ctx = BenchContext(flags);

  std::printf("Clustering endgames (scale=%.2f, reps=%zu)\n", scale, reps);

  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    FusionConfig config;
    config.rounds = 3;
    FusionPipeline pipeline(p.dataset(), config);
    FusionResult result = pipeline.Run(ctx).value();

    std::printf("\n%s: %zu records, %zu pairs (fusion %.2fs)\n",
                BenchmarkName(kind).c_str(), p.dataset().size(),
                p.pairs.size(), result.total_seconds);
    Rule(72);
    std::printf("%-22s %8s %8s %8s %9s %12s\n", "clusterer", "prec",
                "recall", "f1", "clusters", "min_ms");
    Rule(72);

    ClusterProblem problem;
    problem.num_records = p.dataset().size();
    problem.pairs = &p.pairs;
    problem.pair_probability = &result.pair_probability;
    problem.eta = config.eta;
    std::vector<uint32_t> source_of;
    if (p.dataset().num_sources() > 1) {
      source_of.reserve(p.dataset().size());
      for (const Record& r : p.dataset().records()) {
        source_of.push_back(r.source);
      }
      problem.source_of = &source_of;
    }

    for (ClustererKind ck : AllClustererKinds()) {
      std::unique_ptr<Clusterer> clusterer = MakeClusterer(ck);
      double best_seconds = 0.0;
      Clustering clustering;
      for (size_t rep = 0; rep < reps; ++rep) {
        Stopwatch watch;
        clustering = clusterer->Cluster(problem, ctx).value();
        const double seconds = watch.ElapsedSeconds();
        best_seconds = rep == 0 ? seconds : std::min(best_seconds, seconds);
      }
      ClusterEvaluation eval = EvaluateClustering(clustering.cluster_of,
                                                  p.truth());
      std::printf("%-22s %8.4f %8.4f %8.4f %9zu %12.3f\n",
                  ClustererKindName(ck), eval.pairwise_precision,
                  eval.pairwise_recall, eval.pairwise_f1,
                  clustering.num_clusters, best_seconds * 1e3);
    }
    Rule(72);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddInt("reps", 5, "timed repetitions per endgame (min is reported)");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags);
  return 0;
}
