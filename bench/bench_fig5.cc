// Reproduces Figure 5: convergence of ITER — the total amount of weight
// update Σ_t |Δx_t| per iteration for the first 20 iterations. The paper's
// plot shows a sharp early peak (random initialization) followed by fast
// convergence on all three datasets.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed, size_t iterations) {
  std::printf("Figure 5: convergence of ITER (scale=%.2f)\n", scale);

  std::vector<std::vector<double>> traces;
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph graph = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterOptions options;
    options.track_convergence = true;
    options.max_iterations = iterations;
    options.tolerance = 0.0;  // run all iterations for the full trace
    IterResult result =
        RunIter(graph, std::vector<double>(p.pairs.size(), 1.0), options)
            .value();
    traces.push_back(result.update_trace);
  }

  Rule(64);
  std::printf("%9s %14s %14s %14s\n", "Iteration", "Restaurant", "Product",
              "Paper");
  Rule(64);
  for (size_t i = 0; i < iterations; ++i) {
    std::printf("%9zu", i + 1);
    for (const auto& trace : traces) {
      if (i < trace.size()) {
        std::printf(" %14.4f", trace[i]);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }
  Rule(64);
  for (size_t d = 0; d < traces.size(); ++d) {
    const auto& trace = traces[d];
    size_t peak = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] > trace[peak]) peak = i;
    }
    std::printf("%s: peak update %.3f at iteration %zu, final %.2e\n",
                BenchmarkName(AllBenchmarks()[d]).c_str(), trace[peak],
                peak + 1, trace.back());
  }
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddInt("iterations", 20, "ITER sweeps to trace");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")),
                   static_cast<size_t>(flags.GetInt("iterations")));
  return 0;
}
