// Ablation A4: the two CliqueRank engines — full dense GEMM per step (the
// paper's Eigen formulation) vs the masked-sparse kernel confined to the
// edge pattern. The engines are exact reimplementations of the same
// recurrence; this bench verifies their outputs agree and shows where each
// wins as graph density varies.

#include <algorithm>
#include <cmath>

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  std::printf(
      "Ablation A4: dense vs masked-sparse CliqueRank engines (scale=%.2f)\n",
      scale);
  Rule(86);
  std::printf("%-12s %8s %10s %10s %12s %12s %12s\n", "Dataset", "nodes",
              "edges", "density", "dense (s)", "masked (s)", "max |diff|");
  Rule(86);

  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph bipartite = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterResult iter =
        RunIter(bipartite, std::vector<double>(p.pairs.size(), 1.0)).value();
    RecordGraph graph =
        RecordGraph::Build(p.dataset().size(), p.pairs, iter.pair_scores);

    CliqueRankOptions dense_options;
    dense_options.engine = CliqueRankEngine::kDense;
    CliqueRankOptions masked_options;
    masked_options.engine = CliqueRankEngine::kMaskedSparse;

    CliqueRankResult dense =
        RunCliqueRank(graph, p.pairs, dense_options).value();
    CliqueRankResult masked =
        RunCliqueRank(graph, p.pairs, masked_options).value();

    double max_diff = 0.0;
    for (PairId pid = 0; pid < p.pairs.size(); ++pid) {
      max_diff = std::max(max_diff,
                          std::fabs(dense.pair_probability[pid] -
                                    masked.pair_probability[pid]));
    }
    std::printf("%-12s %8zu %10zu %10.4f %12.3f %12.3f %12.2e\n",
                BenchmarkName(kind).c_str(), graph.num_nodes(),
                graph.num_edges(), graph.Density(), dense.seconds,
                masked.seconds, max_diff);
  }
  Rule(86);
  std::printf(
      "The kAuto engine picks masked-sparse below density %.2f and dense "
      "above.\n",
      CliqueRankOptions{}.dense_density_threshold);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
