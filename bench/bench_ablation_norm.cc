// Ablation A3: the ITER weight-normalization variant — the paper's default
// logistic squash x ← 1/(1 + 1/x) vs the L2 alternative mentioned in §V-C.
// Reported: full-fusion F1 at the universal η and the round-1 optimal-
// threshold F1 of the raw ITER similarity.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed) {
  std::printf("Ablation A3: ITER normalization variants (scale=%.2f)\n",
              scale);
  Rule(76);
  std::printf("%-28s %14s %14s %14s\n", "Variant", "Restaurant", "Product",
              "Paper");
  Rule(76);

  for (IterNormalization norm :
       {IterNormalization::kLogistic, IterNormalization::kL2}) {
    const char* name =
        norm == IterNormalization::kLogistic ? "logistic" : "l2";
    std::vector<double> round1(AllBenchmarks().size());
    std::vector<double> fused(AllBenchmarks().size());
    for (size_t d = 0; d < AllBenchmarks().size(); ++d) {
      Prepared p = Prepare(AllBenchmarks()[d], scale, seed);
      BipartiteGraph graph = BipartiteGraph::Build(p.dataset(), p.pairs);
      IterOptions iter_options;
      iter_options.normalization = norm;
      IterResult iter =
          RunIter(graph, std::vector<double>(p.pairs.size(), 1.0),
                  iter_options)
              .value();
      round1[d] = ScoreF1(p, iter.pair_scores);

      FusionConfig config;
      config.iter.normalization = norm;
      config.rounds = 3;
      FusionPipeline pipeline(p.dataset(), config);
      fused[d] = DecisionF1(p, pipeline.Run().value().matches);
    }
    std::printf("%-28s %14.3f %14.3f %14.3f\n",
                (std::string(name) + " (ITER sweep-F1)").c_str(), round1[0],
                round1[1], round1[2]);
    std::printf("%-28s %14.3f %14.3f %14.3f\n",
                (std::string(name) + " (fusion eta-F1)").c_str(), fused[0],
                fused[1], fused[2]);
  }
  Rule(76);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
