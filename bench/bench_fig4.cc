// Reproduces Figure 4: visualization of the learned term weights. Terms
// are sorted by decreasing ITER weight x_t (x-axis = rank); the y-value is
// the oracle score(t). The paper's plots show score-1 terms clustered at
// the front and low-score terms at the tail. Output: a downsampled
// (rank, score) series per dataset plus an ASCII summary.

#include <algorithm>

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed, size_t points) {
  std::printf("Figure 4: oracle score(t) vs rank of learned weight "
              "(scale=%.2f)\n", scale);
  for (BenchmarkKind kind : AllBenchmarks()) {
    Prepared p = Prepare(kind, scale, seed);
    BipartiteGraph graph = BipartiteGraph::Build(p.dataset(), p.pairs);
    IterResult iter =
        RunIter(graph, std::vector<double>(p.pairs.size(), 1.0)).value();
    auto oracle = OracleTermScores(graph, p.pairs, p.truth());

    struct Entry {
      double weight;
      double score;
    };
    std::vector<Entry> entries;
    for (TermId t = 0; t < graph.num_terms(); ++t) {
      if (graph.PairsOfTerm(t).empty()) continue;
      entries.push_back({iter.term_weights[t], oracle[t]});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.weight > b.weight;
              });

    std::printf("\n(%s) %zu ranked terms — series (rank, score):\n",
                BenchmarkName(kind).c_str(), entries.size());
    size_t step = std::max<size_t>(1, entries.size() / points);
    for (size_t i = 0; i < entries.size(); i += step) {
      std::printf("  %6zu %.3f\n", i + 1, entries[i].score);
    }
    // Summary statistic the figure conveys: mean oracle score in the front
    // decile vs the back decile of the learned ranking.
    size_t decile = std::max<size_t>(1, entries.size() / 10);
    double front = 0.0, back = 0.0;
    for (size_t i = 0; i < decile; ++i) front += entries[i].score;
    for (size_t i = entries.size() - decile; i < entries.size(); ++i) {
      back += entries[i].score;
    }
    std::printf("  mean score: front decile %.3f, back decile %.3f\n",
                front / decile, back / decile);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddInt("points", 40, "series points per dataset");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")),
                   static_cast<size_t>(flags.GetInt("points")));
  return 0;
}
