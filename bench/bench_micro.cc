// Micro-benchmarks (google-benchmark) for the substrates: blocked GEMM,
// masked sparse multiply, string metrics, tokenization, one ITER sweep,
// PageRank, and the parallel RSS pair loop — the kernels whose cost model
// DESIGN.md documents.
//
// Besides the usual --benchmark_* flags, main() accepts:
//   --metrics_out=PATH   dump the stage timers the kernels record (the
//                        input of `gter_cli report` / tools/perf_gate.sh)
//   --trace_out=PATH     dump a Chrome/Perfetto trace of the run
//   --log_level=LEVEL    debug|info|warning|error
//   --simd=LEVEL         scalar|avx2|avx512|auto — caps the dispatch level
//                        the kernels may use (per-benchmark "simd" args
//                        still pin each measurement below that cap)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gter/gter.h"

namespace gter {
namespace {

DenseMatrix RandomMatrix(size_t n, Rng* rng) {
  DenseMatrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = rng->UniformDouble();
  }
  return m;
}

// Pins the SIMD level of the benchmark's "simd" argument (0 = scalar,
// 1 = avx2, 2 = avx512) for the benchmark's lifetime, or skips the
// benchmark when the level exceeds what the CPU/build supports — or what a
// global --simd= cap allows (so `--simd=scalar` runs produce scalar-only
// timers, directly diffable against pre-SIMD baselines). Each dispatched
// kernel is benchmarked at every level so the scalar-vs-SIMD ratio is
// readable from one bench run.
std::unique_ptr<ScopedSimdLevel> PinSimdLevel(benchmark::State& state,
                                              int64_t level_arg) {
  const SimdLevel level = static_cast<SimdLevel>(level_arg);
  if (level > ActiveSimdLevel()) {
    state.SkipWithError("SIMD level unavailable (CPU, build, or --simd cap)");
    return nullptr;
  }
  return std::make_unique<ScopedSimdLevel>(level);
}

// "bench/<kernel>_<level>" — the per-level stage timers tools/perf_gate.sh
// diffs against BENCH_baseline.json (bench/gemm_avx512, ...). The returned
// string must outlive the ScopedTimer reading it (keep it in the benchmark
// body's scope).
std::string TimerName(const char* kernel, SimdLevel level) {
  return std::string("bench/") + kernel + "_" + SimdLevelName(level);
}

void BM_Gemm(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto pin = PinSimdLevel(state, state.range(1));
  if (pin == nullptr) return;
  Rng rng(1);
  DenseMatrix a = RandomMatrix(n, &rng);
  DenseMatrix b = RandomMatrix(n, &rng);
  DenseMatrix c;
  const std::string timer_name = TimerName("gemm", ActiveSimdLevel());
  {
    ScopedTimer timer(MetricsRegistry::Current(), timer_name.c_str(),
                      TraceArg{"n", static_cast<double>(n)});
    for (auto _ : state) {
      Gemm(a, b, &c);
      benchmark::DoNotOptimize(c.data());
    }
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Gemm)
    ->ArgNames({"n", "simd"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2});

void BM_MaskedProduct(benchmark::State& state) {
  // Random graph with n nodes and ~8n edges; the CliqueRank inner kernel.
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<CsrMatrix::Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 8; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      triplets.push_back({i, j, rng.OpenUniformDouble()});
      triplets.push_back({j, i, rng.OpenUniformDouble()});
    }
  }
  CsrMatrix trans = CsrMatrix::FromTriplets(n, n, triplets);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;  // same structure
  std::vector<double> values(pattern.nnz(), 0.5);
  std::vector<double> scratch(n * n, 0.0);
  ScatterToDense(pattern, values.data(), scratch.data());
  std::vector<double> out(pattern.nnz(), 0.0);
  for (auto _ : state) {
    ComputeMaskedProduct(trans, scratch.data(), pattern, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["edges"] = static_cast<double>(pattern.nnz());
}
BENCHMARK(BM_MaskedProduct)->Arg(512)->Arg(2048);

void BM_MaskedProductCsr(benchmark::State& state) {
  // Same kernel through the CSR-gather path: no n×n scratch, the previous
  // power stays in CSR form.
  size_t n = static_cast<size_t>(state.range(0));
  auto pin = PinSimdLevel(state, state.range(1));
  if (pin == nullptr) return;
  Rng rng(2);
  std::vector<CsrMatrix::Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 8; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      triplets.push_back({i, j, rng.OpenUniformDouble()});
      triplets.push_back({j, i, rng.OpenUniformDouble()});
    }
  }
  CsrMatrix trans = CsrMatrix::FromTriplets(n, n, triplets);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;  // same structure
  std::vector<double> values(pattern.nnz(), 0.5);
  std::vector<double> out(pattern.nnz(), 0.0);
  const std::string timer_name = TimerName("masked_csr", ActiveSimdLevel());
  {
    ScopedTimer timer(MetricsRegistry::Current(), timer_name.c_str(),
                      TraceArg{"n", static_cast<double>(n)});
    for (auto _ : state) {
      ComputeMaskedProductCsr(trans, values.data(), pattern, out.data());
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["edges"] = static_cast<double>(pattern.nnz());
}
BENCHMARK(BM_MaskedProductCsr)
    ->ArgNames({"n", "simd"})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2});

// Batch of restaurant-style field pairs: long enough to exercise the DP /
// bit-parallel cores, small enough to stay cache-resident. One iteration
// scores the whole corpus, so per-call overhead does not dominate.
std::vector<std::pair<std::string, std::string>> LevenshteinCorpus() {
  std::vector<std::pair<std::string, std::string>> corpus;
  Rng rng(7);
  const char* bases[] = {
      "arnie mortons of chicago 435 s la cienega blvd los angeles",
      "art s delicatessen 12224 ventura blvd studio city",
      "panasonic pslx350h turntable with usb output and dust cover",
      "campanile 624 s la brea ave los angeles california american",
  };
  for (const char* base : bases) {
    for (int v = 0; v < 8; ++v) {
      std::string noisy = base;
      for (int edits = 0; edits <= v % 4; ++edits) {
        size_t pos = rng.NextBounded(noisy.size());
        noisy[pos] = static_cast<char>('a' + rng.NextBounded(26));
      }
      corpus.emplace_back(base, noisy);
    }
  }
  return corpus;
}

// The corpus regrouped as one candidate batch per base string — the shape
// the batched entry points take (and the 8-lane avx512 Levenshtein kernel's
// natural unit: 8 variants per base = one __m512i of lanes).
std::vector<std::pair<std::string, std::vector<std::string>>>
GroupedCorpus() {
  std::vector<std::pair<std::string, std::vector<std::string>>> grouped;
  for (auto& [base, noisy] : LevenshteinCorpus()) {
    if (grouped.empty() || grouped.back().first != base) {
      grouped.push_back({base, {}});
    }
    grouped.back().second.push_back(std::move(noisy));
  }
  return grouped;
}

void BM_Levenshtein(benchmark::State& state) {
  auto pin = PinSimdLevel(state, state.range(0));
  if (pin == nullptr) return;
  const auto grouped = GroupedCorpus();
  int64_t pairs = 0;
  for (const auto& [base, batch] : grouped) {
    pairs += static_cast<int64_t>(batch.size());
  }
  const std::string timer_name = TimerName("levenshtein", ActiveSimdLevel());
  ScopedTimer timer(MetricsRegistry::Current(), timer_name.c_str());
  std::vector<size_t> distances;
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& [base, batch] : grouped) {
      LevenshteinDistanceBatch(base, batch, &distances);
      for (size_t d : distances) total += d;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * pairs);
}
BENCHMARK(BM_Levenshtein)->ArgNames({"simd"})->Arg(0)->Arg(1)->Arg(2);

void BM_JaroWinkler(benchmark::State& state) {
  auto pin = PinSimdLevel(state, state.range(0));
  if (pin == nullptr) return;
  const auto grouped = GroupedCorpus();
  int64_t pairs = 0;
  for (const auto& [base, batch] : grouped) {
    pairs += static_cast<int64_t>(batch.size());
  }
  const std::string timer_name = TimerName("jaro_winkler", ActiveSimdLevel());
  ScopedTimer timer(MetricsRegistry::Current(), timer_name.c_str());
  std::vector<double> sims;
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& [base, batch] : grouped) {
      JaroWinklerSimilarityBatch(base, batch, &sims);
      for (double s : sims) total += s;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * pairs);
}
BENCHMARK(BM_JaroWinkler)->ArgNames({"simd"})->Arg(0)->Arg(1)->Arg(2);

void BM_JaccardTerms(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint32_t> a, b;
  for (int i = 0; i < 12; ++i) {
    a.push_back(static_cast<uint32_t>(rng.NextBounded(10000)));
    b.push_back(static_cast<uint32_t>(rng.NextBounded(10000)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardTerms);

void BM_Tokenize(benchmark::State& state) {
  std::string text =
      "Golden Dragon Palace, 435 S. La Cienega Blvd., Los Angeles "
      "310-246-1501 Chinese";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

// One ITER sweep, fused (arg 1: update + normalize + convergence delta in
// one pass over the term vector) vs staged (arg 0: the three-pass
// reference). Both produce bit-identical weights; the timer pair is the
// fusion speedup the perf gate watches.
void BM_IterSweep(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  BipartiteGraph graph = BipartiteGraph::Build(data.dataset, pairs);
  std::vector<double> probability(pairs.size(), 1.0);
  IterOptions options;
  options.max_iterations = 1;  // cost of one sweep
  options.tolerance = 0.0;
  options.fuse_sweeps = fused;
  ScopedTimer timer(MetricsRegistry::Current(),
                    fused ? "bench/iter_sweep_fused"
                          : "bench/iter_sweep_staged");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIter(graph, probability, options));
  }
  state.counters["bipartite_edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_IterSweep)->ArgNames({"fused"})->Arg(0)->Arg(1);

// CliqueRank through the masked-sparse engine, fused (arg 1: one-sweep
// transition+boost setup, accumulate folded into the masked-product
// readout) vs staged (arg 0). Bit-identical outputs by contract; the timer
// pair is the pipeline-fusion speedup on the paper's hot stage.
void BM_CliqueRankMasked(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  std::vector<double> sims(pairs.size(), 0.8);
  RecordGraph graph = RecordGraph::Build(data.dataset.size(), pairs, sims);
  CliqueRankOptions options;
  options.engine = CliqueRankEngine::kMaskedSparse;
  options.max_steps = 8;
  options.fuse_passes = fused;
  ScopedTimer timer(MetricsRegistry::Current(),
                    fused ? "bench/cliquerank_masked_fused"
                          : "bench/cliquerank_masked_staged");
  for (auto _ : state) {
    auto result = RunCliqueRank(graph, pairs, options);
    benchmark::DoNotOptimize(result.value().pair_probability.data());
  }
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_CliqueRankMasked)->ArgNames({"fused"})->Arg(0)->Arg(1);

// RSS over the Paper-like record graph, pair loop split across a pool of
// range(0) threads. Results are bit-identical for every thread count
// (checked once per run below), so the wall-clock ratio between /1 and /N
// is the parallel speedup of the hot path.
void BM_Rss(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  std::vector<double> sims(pairs.size(), 0.8);
  RecordGraph graph = RecordGraph::Build(data.dataset.size(), pairs, sims);

  RssOptions options;
  options.num_walks = 20;
  ThreadPool pool(threads);
  ExecContext ctx;
  if (threads > 1) ctx.pool = &pool;

  // Determinism contract: the parallel run must match the serial run bit
  // for bit before we time anything.
  GTER_CHECK(RunRss(graph, pairs, options, ctx).value() ==
             RunRss(graph, pairs, options).value());

  for (auto _ : state) {
    auto p = RunRss(graph, pairs, options, ctx).value();
    benchmark::DoNotOptimize(p.data());
  }
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_Rss)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// One ITER sweep with the propagation loops split across range(0) threads.
void BM_IterSweepParallel(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  BipartiteGraph graph = BipartiteGraph::Build(data.dataset, pairs);
  std::vector<double> probability(pairs.size(), 1.0);
  IterOptions options;
  options.max_iterations = 1;  // cost of one sweep
  options.tolerance = 0.0;
  ThreadPool pool(threads);
  ExecContext ctx;
  if (threads > 1) ctx.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIter(graph, probability, options, ctx));
  }
  state.counters["bipartite_edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_IterSweepParallel)->Arg(1)->Arg(4)->UseRealTime();

void BM_PageRank(benchmark::State& state) {
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  TermGraph graph = TermGraph::Build(data.dataset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PageRank(graph));
  }
}
BENCHMARK(BM_PageRank);

// Single-record ingest into a live ~10k-record ResolverState (arg 1) vs
// recomputing the whole batch fixed point from scratch (arg 0) — the
// incremental engine's reason to exist. The ingest arm streams a fresh
// record per iteration into the pre-built state (O(neighborhood) +
// dirty-region re-ITER); the rebuild arm is what a batch-only stack
// would pay for the same freshness. Acceptance: ingest ≥ 20x cheaper.
void BM_IncrementalIngest(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  // kRestaurant at scale 11.66 is the 10k-record corpus (10004 records).
  // The restaurant generator's bimodal token frequencies (near-unique
  // tail + a few street-suffix hubs) match the sparse regime streaming
  // ingest targets; kPaper's dense synthetic overlap would make every
  // ingest perturb half the graph and measure the batch path instead.
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 11.66, 5);
  RemoveFrequentTerms(&data.dataset);
  // Fresh records to stream, generated off a disjoint seed so they are
  // new entities with realistic term overlap.
  auto extra = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 77);
  std::vector<std::string> extra_texts;
  for (const Record& r : extra.dataset.records()) {
    extra_texts.push_back(r.raw_text);
  }
  ResolverStateOptions options;
  state.counters["records"] = static_cast<double>(data.dataset.size());
  if (incremental) {
    ResolverState st(&data.dataset, options);
    GTER_CHECK(st.BuildBatch().ok());
    size_t next = 0;
    ScopedTimer timer(MetricsRegistry::Current(), "bench/incremental_ingest");
    for (auto _ : state) {
      auto ingested =
          st.Ingest(0, extra_texts[next++ % extra_texts.size()]);
      GTER_CHECK(ingested.ok());
      benchmark::DoNotOptimize(ingested.value().cluster);
    }
  } else {
    ScopedTimer timer(MetricsRegistry::Current(), "bench/batch_rebuild");
    for (auto _ : state) {
      ResolverState st(&data.dataset, options);
      GTER_CHECK(st.BuildBatch().ok());
      benchmark::DoNotOptimize(st.matched_count());
    }
  }
}
BENCHMARK(BM_IncrementalIngest)
    ->ArgNames({"incremental"})
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime();

// The budgeted progressive scheduler over a trained candidate space:
// benefit-orders every pair (descending ITER score) and emits the match
// decisions. Unlimited budget — the full scan whose prefix a --budget_ms
// run keeps, so this timer is the endgame's worst case.
void BM_ProgressiveResolve(benchmark::State& state) {
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.5, 5);
  RemoveFrequentTerms(&data.dataset);
  ResolverState st(&data.dataset, ResolverStateOptions{});
  GTER_CHECK(st.BuildBatch().ok());
  ProgressiveOptions options;
  ScopedTimer timer(MetricsRegistry::Current(), "bench/progressive_resolve");
  for (auto _ : state) {
    ProgressiveResult out;
    GTER_CHECK(RunProgressive(data.dataset.size(), st.pairs(),
                              st.pair_scores(), st.pair_probability(),
                              options, &out)
                   .ok());
    benchmark::DoNotOptimize(out.matched_count);
  }
  state.counters["pairs"] = static_cast<double>(st.pairs().size());
}
BENCHMARK(BM_ProgressiveResolve);

}  // namespace
}  // namespace gter

// BENCHMARK_MAIN(), plus the observability flags: gter-specific flags are
// peeled out of argv (equals-form only) before google-benchmark parses the
// rest, so --benchmark_filter etc. still work.
int main(int argc, char** argv) {
  std::string metrics_out, trace_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    gter::Status flag_status;
    if (gter::ConsumeCommonStageFlag(argv[i], &metrics_out, &trace_out,
                                     &flag_status)) {
      if (!flag_status.ok()) {
        std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
        return 1;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }

  std::unique_ptr<gter::MetricsRegistry> metrics;
  std::unique_ptr<gter::ScopedMetricsInstall> metrics_install;
  if (!metrics_out.empty()) {
    metrics = std::make_unique<gter::MetricsRegistry>();
    metrics_install = std::make_unique<gter::ScopedMetricsInstall>(
        metrics.get());
  }
  std::unique_ptr<gter::TraceRecorder> trace;
  std::unique_ptr<gter::ScopedTraceInstall> trace_install;
  if (!trace_out.empty()) {
    gter::SetCurrentThreadTraceName("main");
    trace = std::make_unique<gter::TraceRecorder>();
    trace_install = std::make_unique<gter::ScopedTraceInstall>(trace.get());
  }
  gter::EmitCpuInfo(metrics.get(), trace.get());

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (metrics != nullptr) {
    metrics_install.reset();
    gter::Status s = gter::WriteMetricsJson(metrics_out, *metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (trace != nullptr) {
    trace_install.reset();
    gter::Status s = gter::WriteTraceJson(trace_out, *trace);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                trace->event_count());
  }
  return 0;
}
