// String-metric comparison in the spirit of Cohen, Ravikumar & Fienberg
// (IJCAI 2003) — the paper's reference [15] motivating that "no single
// metric is suitable for all data sets": optimal-threshold F1 of each
// string metric on each benchmark, including the hybrid Monge–Elkan and
// SoftTFIDF metrics that won the original comparison.

#include <cmath>

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

/// Token lists and per-token IDF weights for SoftTFIDF.
struct TokenView {
  std::vector<std::vector<std::string>> tokens;
  std::vector<std::vector<double>> weights;
};

TokenView BuildTokens(const Dataset& dataset) {
  TokenView view;
  view.tokens.resize(dataset.size());
  view.weights.resize(dataset.size());
  std::vector<uint32_t> df = dataset.ComputeDocumentFrequencies();
  double n = static_cast<double>(dataset.size());
  for (const Record& rec : dataset.records()) {
    for (TermId t : rec.terms) {
      view.tokens[rec.id].push_back(dataset.vocabulary().TermOf(t));
      view.weights[rec.id].push_back(
          std::log((n + 1.0) / static_cast<double>(df[t])));
    }
  }
  return view;
}

void Run(double scale, uint64_t seed) {
  std::printf(
      "String-metric comparison (optimal-threshold F1, scale=%.2f)\n",
      scale);
  Rule(70);
  std::printf("%-16s %14s %14s %14s\n", "Metric", "Restaurant", "Product",
              "Paper");
  Rule(70);

  struct Row {
    const char* name;
    double f1[3];
  };
  std::vector<Row> rows = {{"Jaccard", {0, 0, 0}},
                           {"TF-IDF cosine", {0, 0, 0}},
                           {"Levenshtein", {0, 0, 0}},
                           {"Monge-Elkan", {0, 0, 0}},
                           {"SoftTFIDF", {0, 0, 0}}};

  for (size_t d = 0; d < AllBenchmarks().size(); ++d) {
    Prepared p = Prepare(AllBenchmarks()[d], scale, seed);
    TokenView view = BuildTokens(p.dataset());

    JaccardScorer jaccard;
    rows[0].f1[d] = ScoreF1(p, jaccard.Score(p.dataset(), p.pairs));
    TfIdfScorer tfidf;
    rows[1].f1[d] = ScoreF1(p, tfidf.Score(p.dataset(), p.pairs));

    std::vector<double> lev(p.pairs.size()), me(p.pairs.size()),
        soft(p.pairs.size());
    for (PairId pid = 0; pid < p.pairs.size(); ++pid) {
      const RecordPair& rp = p.pairs.pair(pid);
      lev[pid] = LevenshteinSimilarity(p.dataset().record(rp.a).raw_text,
                                       p.dataset().record(rp.b).raw_text);
      me[pid] = MongeElkanSimilarity(view.tokens[rp.a], view.tokens[rp.b]);
      soft[pid] = SoftTfIdfSimilarity(view.tokens[rp.a], view.weights[rp.a],
                                      view.tokens[rp.b], view.weights[rp.b]);
    }
    rows[2].f1[d] = ScoreF1(p, lev);
    rows[3].f1[d] = ScoreF1(p, me);
    rows[4].f1[d] = ScoreF1(p, soft);
  }

  for (const Row& row : rows) {
    std::printf("%-16s %14.3f %14.3f %14.3f\n", row.name, row.f1[0],
                row.f1[1], row.f1[2]);
  }
  Rule(70);
  std::printf(
      "Thresholds are oracle-tuned per metric per dataset — the adaptivity\n"
      "problem ([3], [15]) the unsupervised fusion framework removes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  // Levenshtein and Monge–Elkan are quadratic per pair; default to a
  // smaller slice than the table benches.
  double scale = flags.GetDouble("scale");
  if (scale == gter::bench::kDefaultScale) scale = 0.25;
  gter::bench::Run(scale, static_cast<uint64_t>(flags.GetInt("seed")));
  return 0;
}
