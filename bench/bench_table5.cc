// Reproduces Table V: the reinforcement effect — F1 (at the universal
// η = 0.98) and cumulative running time after each ITER⇄CliqueRank round.

#include "bench_util.h"

namespace gter {
namespace bench {
namespace {

void Run(double scale, uint64_t seed, size_t rounds) {
  std::printf("Table V: effect of reinforcement (scale=%.2f, eta=0.98)\n",
              scale);
  Rule(76);
  std::printf("%9s | %10s %8s | %10s %8s | %10s %8s\n", "", "Restaurant", "",
              "Product", "", "Paper", "");
  std::printf("%9s | %10s %8s | %10s %8s | %10s %8s\n", "Iteration", "F1",
              "Time(s)", "F1", "Time(s)", "F1", "Time(s)");
  Rule(76);

  std::vector<std::vector<double>> f1(AllBenchmarks().size());
  std::vector<std::vector<double>> time_s(AllBenchmarks().size());
  for (size_t d = 0; d < AllBenchmarks().size(); ++d) {
    Prepared p = Prepare(AllBenchmarks()[d], scale, seed);
    FusionConfig config;
    config.rounds = rounds;
    FusionPipeline pipeline(p.dataset(), config);
    pipeline.set_round_observer(
        [&](size_t, const FusionResult& snapshot) {
          std::vector<bool> matches(p.pairs.size());
          for (PairId pid = 0; pid < p.pairs.size(); ++pid) {
            matches[pid] = snapshot.pair_probability[pid] >= config.eta;
          }
          f1[d].push_back(DecisionF1(p, matches));
          time_s[d].push_back(
              snapshot.round_stats.back().cumulative_seconds);
        });
    pipeline.Run().value();
  }

  for (size_t r = 0; r < rounds; ++r) {
    std::printf("%9zu | %10.3f %8.2f | %10.3f %8.2f | %10.3f %8.2f\n", r + 1,
                f1[0][r], time_s[0][r], f1[1][r], time_s[1][r], f1[2][r],
                time_s[2][r]);
  }
  Rule(76);
}

}  // namespace
}  // namespace bench
}  // namespace gter

int main(int argc, char** argv) {
  gter::FlagSet flags;
  flags.AddInt("rounds", 5, "reinforcement rounds");
  if (!gter::bench::ParseStandardFlags(argc, argv, &flags)) return 1;
  gter::bench::BenchMetricsScope metrics_scope(flags);
  gter::bench::Run(flags.GetDouble("scale"),
                   static_cast<uint64_t>(flags.GetInt("seed")),
                   static_cast<size_t>(flags.GetInt("rounds")));
  return 0;
}
