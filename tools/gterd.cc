// gterd: the long-lived resolution daemon.
//
// Loads a CSV dataset, runs the fusion pipeline once at startup, and then
// serves resolution queries over newline-delimited JSON on TCP (protocol:
// DESIGN.md §5). Each request runs on the worker pool under its own
// CancelToken, so per-request deadlines cover queue time and a dropped
// connection cancels its in-flight work.
//
//   gterd --in data.csv [--sources 1] [--port 7421] [--bind 127.0.0.1]
//         [--eta 0.98] [--rounds 5] [--alpha 20] [--steps 20]
//         [--max_df_ratio 0.12] [--default_deadline_ms 0]
//         [--threads 0] [--simd auto] [--metrics_out m.json]
//         [--metrics_port -1] [--access_log gterd.log]
//         [--slow_request_ms 0] [--incremental]
//
// --incremental serves from the updatable ResolverState engine
// (DESIGN.md §4g): startup is a batch build of the same fixed point, and
// every add_record is a real O(neighborhood) ingest + dirty-region
// re-ITER — the response reports the cluster the record resolved into,
// and stats/metrics expose the ingest health counters.
//
// Observability (DESIGN.md §4c/§5c): --metrics_port >= 0 serves live
// Prometheus text on GET /metrics (plus /healthz and /varz);
// --access_log appends one NDJSON line per request; --slow_request_ms
// captures trace spans of requests over the threshold into a bounded
// ring served by the debug_slow method.
//
// SIGINT/SIGTERM shuts the daemon down cleanly: stop accepting, cancel
// in-flight requests, wait for workers, exit 0.

#include <csignal>
#include <cstdio>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "gter/gter.h"

namespace gter {
namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

int Fail(const Status& status) {
  std::fprintf(stderr, "gterd: error: %s\n", status.ToString().c_str());
  return 1;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("in", "dataset.csv", "input CSV (entity,source,field...)");
  flags.AddInt("sources", 1, "number of sources (1 or 2)");
  flags.AddInt("port", 7421, "TCP port (0 = ephemeral, printed at startup)");
  flags.AddString("bind", "127.0.0.1", "bind address");
  flags.AddDouble("eta", 0.98, "matching probability threshold");
  flags.AddInt("rounds", 5, "ITER/CliqueRank reinforcement rounds");
  flags.AddDouble("alpha", 20.0, "transition exponent");
  flags.AddInt("steps", 20, "random-walk steps S");
  flags.AddDouble("max_df_ratio", 0.12, "frequent-term removal ratio");
  flags.AddInt("default_deadline_ms", 0,
               "deadline for requests without their own (0 = none)");
  flags.AddInt("max_frame_bytes", 1 << 20, "request line size limit");
  flags.AddInt("metrics_port", -1,
               "HTTP observability port for /metrics, /healthz, /varz "
               "(0 = ephemeral, -1 = disabled)");
  flags.AddString("access_log", "",
                  "NDJSON access log path (one line per request)");
  flags.AddInt("slow_request_ms", 0,
               "capture trace spans of requests slower than this into the "
               "debug_slow ring (0 = off)");
  flags.AddBool("incremental", false,
                "serve from the incremental ResolverState engine: "
                "add_record ingests for real (dirty-region re-ITER) "
                "instead of parking new records as singletons");
  AddCommonStageFlags(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyCommonStageFlags(flags);
  if (!s.ok()) return Fail(s);

  // The daemon always carries a registry: the serving layer records live
  // latency histograms into it, /metrics and /varz serve it, and
  // --metrics_out snapshots it at shutdown.
  auto metrics = std::make_unique<MetricsRegistry>();
  DeclarePipelineMetrics(metrics.get());
  ScopedMetricsInstall metrics_install(metrics.get());

  auto loaded = LoadDatasetCsv(flags.GetString("in"), "input",
                               static_cast<uint32_t>(flags.GetInt("sources")));
  if (!loaded.ok()) return Fail(loaded.status());
  auto [dataset, truth] = std::move(loaded).value();

  ResolutionServiceOptions service_options;
  PreprocessOptions preprocess;
  preprocess.max_df_ratio = flags.GetDouble("max_df_ratio");
  RemoveFrequentTerms(&dataset, preprocess);
  service_options.fusion.rounds =
      static_cast<size_t>(flags.GetInt("rounds"));
  service_options.fusion.eta = flags.GetDouble("eta");
  service_options.fusion.cliquerank.alpha = flags.GetDouble("alpha");
  service_options.fusion.cliquerank.max_steps =
      static_cast<size_t>(flags.GetInt("steps"));
  service_options.incremental = flags.GetBool("incremental");
  // The incremental engine reads its threshold from the resolver options.
  service_options.resolver.eta = flags.GetDouble("eta");

  std::unique_ptr<ThreadPool> pool = MakeThreadPool(flags.GetInt("threads"));
  ExecContext ctx;
  ctx.pool = pool.get();
  ctx.metrics = metrics.get();

  const size_t num_records = dataset.size();
  std::fprintf(stderr, "gterd: training on %zu records...\n", num_records);
  auto service =
      ResolutionService::Create(std::move(dataset), service_options, ctx);
  if (!service.ok()) return Fail(service.status());

  GterdServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.GetInt("port"));
  server_options.bind_address = flags.GetString("bind");
  server_options.default_deadline_ms = flags.GetInt("default_deadline_ms");
  server_options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max_frame_bytes"));
  server_options.metrics_port = static_cast<int>(flags.GetInt("metrics_port"));
  server_options.access_log_path = flags.GetString("access_log");
  server_options.slow_request_ms = flags.GetInt("slow_request_ms");
  auto server =
      GterdServer::Start(service.value().get(), server_options, ctx);
  if (!server.ok()) return Fail(server.status());

  // Printed on stdout (and flushed) so scripts can scrape the bound ports
  // when --port=0 / --metrics_port=0.
  std::printf("gterd listening on %s:%u\n",
              server_options.bind_address.c_str(),
              server.value()->port());
  if (server.value()->metrics_port() != 0) {
    std::printf("gterd metrics on http://%s:%u/metrics\n",
                server_options.bind_address.c_str(),
                server.value()->metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "gterd: shutting down\n");
  server.value()->Stop();

  if (!flags.GetString("metrics_out").empty()) {
    Status write = WriteMetricsJson(flags.GetString("metrics_out"), *metrics);
    if (!write.ok()) return Fail(write);
  }
  return 0;
}

}  // namespace
}  // namespace gter

int main(int argc, char** argv) { return gter::Run(argc, argv); }
