#!/usr/bin/env bash
# Line-coverage summary for a GTER_COVERAGE-instrumented build (DESIGN.md
# §6). Configure, build, and run the tests first:
#
#   cmake -B build-cov -S . -DGTER_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug \
#         -DGTER_BUILD_BENCHMARKS=OFF -DGTER_BUILD_EXAMPLES=OFF
#   cmake --build build-cov -j
#   ctest --test-dir build-cov --output-on-failure -j
#   tools/coverage.sh build-cov
#
# With lcov installed the script writes an lcov tracefile (and an HTML
# report when genhtml is present). Without lcov it falls back to plain
# gcov and aggregates per-file line coverage itself — no extra packages
# needed beyond the gcc toolchain that built the tree.
#
# Usage:
#   tools/coverage.sh [build-dir] [out-dir]
#
#   build-dir  coverage-instrumented CMake build directory (default:
#              build-cov)
#   out-dir    where reports land (default: <build-dir>/coverage)
#
# Exit status: 0 when a report was produced, 1 when no coverage data was
# found (build not instrumented, or tests never ran).

set -euo pipefail

BUILD_DIR="${1:-build-cov}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="${2:-${BUILD_DIR}/coverage}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build dir '${BUILD_DIR}' does not exist" >&2
  exit 1
fi
# Absolute: the gcov fallback chdirs into the report dir, so relative
# .gcda paths from `find` would no longer resolve there.
BUILD_DIR="$(cd "${BUILD_DIR}" && pwd)"
if ! find "${BUILD_DIR}" -name '*.gcda' -print -quit | grep -q .; then
  echo "error: no .gcda files under '${BUILD_DIR}'." >&2
  echo "Configure with -DGTER_COVERAGE=ON and run ctest first." >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

if command -v lcov >/dev/null 2>&1; then
  # Preferred path: lcov tracefile, filtered to the library sources.
  TRACE="${OUT_DIR}/coverage.info"
  lcov --capture --directory "${BUILD_DIR}" --output-file "${TRACE}" \
       --rc lcov_branch_coverage=1 --quiet
  lcov --extract "${TRACE}" "${REPO_ROOT}/src/*" \
       --output-file "${TRACE}" --quiet
  lcov --list "${TRACE}"
  if command -v genhtml >/dev/null 2>&1; then
    genhtml "${TRACE}" --output-directory "${OUT_DIR}/html" --quiet
    echo "HTML report: ${OUT_DIR}/html/index.html"
  fi
  echo "lcov tracefile: ${TRACE}"
  exit 0
fi

# Fallback: plain gcov. Run gcov on every .gcda (object-dir layout keeps
# the .gcno next to it), then fold the per-file Lines executed summaries
# into one table for src/gter sources.
echo "lcov not found; falling back to gcov aggregation." >&2
GCOV_OUT="${OUT_DIR}/gcov"
rm -rf "${GCOV_OUT}"
mkdir -p "${GCOV_OUT}"
find "${BUILD_DIR}" -name '*.gcda' -print0 |
  (cd "${GCOV_OUT}" && xargs -0 gcov --preserve-paths >gcov.log 2>&1 || true)

python3 - "$GCOV_OUT" "$REPO_ROOT" <<'EOF'
import os, re, sys

gcov_dir, repo_root = sys.argv[1], sys.argv[2]
per_file = {}  # source path -> [covered, total]
for name in os.listdir(gcov_dir):
    if not name.endswith(".gcov"):
        continue
    # --preserve-paths encodes '/' as '#' in the report file name.
    source = name[:-5].replace("#", "/")
    marker = "/src/gter/"
    if marker not in "/" + source:
        continue
    rel = source[source.index(marker[1:]):]
    covered = total = 0
    with open(os.path.join(gcov_dir, name), errors="replace") as f:
        for line in f:
            count = line.split(":", 1)[0].strip()
            if count == "-":
                continue
            total += 1
            if count not in ("#####", "====="):
                covered += 1
    if total:
        prev = per_file.setdefault(rel, [0, 0])
        # The same source can appear from several test binaries; keep the
        # best-covered instance (runs differ only in which tests linked).
        if covered * prev[1] >= prev[0] * total:
            per_file[rel] = [covered, total]

if not per_file:
    print("no src/gter coverage data found", file=sys.stderr)
    sys.exit(1)

width = max(len(p) for p in per_file) + 2
print(f"{'file':<{width}} {'lines':>8} {'covered':>8} {'pct':>7}")
sum_cov = sum_tot = 0
for path in sorted(per_file):
    cov, tot = per_file[path]
    sum_cov += cov
    sum_tot += tot
    print(f"{path:<{width}} {tot:>8} {cov:>8} {100.0 * cov / tot:>6.1f}%")
print(f"{'TOTAL':<{width}} {sum_tot:>8} {sum_cov:>8} "
      f"{100.0 * sum_cov / sum_tot:>6.1f}%")
EOF
echo "per-file .gcov reports: ${GCOV_OUT}"
