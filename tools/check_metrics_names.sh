#!/usr/bin/env bash
# Metric-name lint (wired into ctest as `check_metrics_names`).
#
# Every internal metric slug must match [a-z0-9_/]+ and the set of slugs
# must map 1:1 onto valid Prometheus names under prom.cc's sanitization
# (gter_ prefix, '/' -> '_'). If two distinct slugs collapsed onto one
# Prometheus name, RenderPrometheusText would have to rename one of them
# on the fly (the ClaimName numeric-suffix fallback) and dashboards keyed
# on the name would silently split — so we reject that here, at the
# declaration site, instead.
#
# Slug sources (kept in sync with where metrics are declared):
#   * the DeclarePipelineMetrics literal list (src/gter/core/fusion.cc)
#   * every ScopedTimer name literal under src/
#   * service.cc's per-method "server/..." timer names
#   * server.cc's kMethodSlotNames x {queue_us, work_us} sliding
#     histograms, plus the server/uptime_s gauge
#
# Usage: tools/check_metrics_names.sh [repo-root]

set -u -o pipefail

repo_root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
src="${repo_root}/src"
fusion_cc="${src}/gter/core/fusion.cc"
server_cc="${src}/gter/server/server.cc"

fail=0
err() {
  echo "check_metrics_names: $*" >&2
  fail=1
}

for f in "${fusion_cc}" "${server_cc}"; do
  if [[ ! -f "$f" ]]; then
    echo "check_metrics_names: missing $f" >&2
    exit 2
  fi
done

slugs_file="$(mktemp)"
trap 'rm -f "${slugs_file}"' EXIT

# 1. The DeclarePipelineMetrics body: every string literal between the
#    function's opening line and its closing brace.
awk '/^void DeclarePipelineMetrics/,/^}/' "${fusion_cc}" \
  | grep -o '"[^"]*"' | tr -d '"' >> "${slugs_file}"

# 2. ScopedTimer name literals anywhere under src/ (the name is the first
#    string literal in the constructor call, sometimes on the next line).
grep -rh -A1 'ScopedTimer [a-z_]*(' "${src}" --include='*.cc' \
  | grep -o '"[a-z0-9_/]*/[a-z0-9_/]*"' | tr -d '"' >> "${slugs_file}"

# 3. The per-request "server/..." literals (service.cc timer names,
#    server.cc's uptime gauge). The bare "server/" composition prefix is
#    not itself a slug, hence the \+ after the slash.
grep -rh -o '"server/[a-z0-9_/]\+"' "${src}/gter/server" --include='*.cc' \
  | tr -d '"' >> "${slugs_file}"

# 4. The sliding-histogram families server.cc composes at runtime:
#    server/<method-slot>/{queue_us,work_us}.
awk '/kMethodSlotNames\[\] = \{/,/\};/' "${server_cc}" \
  | grep -o '"[^"]*"' | tr -d '"' \
  | while read -r slot; do
      echo "server/${slot}/queue_us"
      echo "server/${slot}/work_us"
    done >> "${slugs_file}"

sort -u "${slugs_file}" -o "${slugs_file}"
total="$(wc -l < "${slugs_file}")"
if [[ "${total}" -lt 20 ]]; then
  err "extraction looks broken: only ${total} slugs found (expected 20+)"
fi

# Rule 1: slug charset.
while read -r slug; do
  if ! [[ "${slug}" =~ ^[a-z0-9_/]+$ ]]; then
    err "slug '${slug}' violates [a-z0-9_/]+"
  fi
  if [[ "${slug}" == /* || "${slug}" == */ || "${slug}" == *//* ]]; then
    err "slug '${slug}' has an empty path segment"
  fi
done < "${slugs_file}"

# Rule 2: sanitized Prometheus names are valid and collision-free.
sanitized="$(sed 's|/|_|g; s|^|gter_|' "${slugs_file}")"
while read -r name; do
  if ! [[ "${name}" =~ ^[a-zA-Z_:][a-zA-Z0-9_:]*$ ]]; then
    err "prometheus name '${name}' is invalid"
  fi
done <<< "${sanitized}"

dupes="$(echo "${sanitized}" | sort | uniq -d)"
if [[ -n "${dupes}" ]]; then
  err "distinct slugs collide after sanitization: ${dupes}"
fi

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "check_metrics_names: ${total} slugs OK"
exit 0
