// gter command-line tool: run the unsupervised entity-resolution pipeline
// on CSV files without writing any C++.
//
// Subcommands:
//   gter_cli generate --kind restaurant --scale 0.5 --out data.csv
//       Synthesize a benchmark dataset (with ground truth) to CSV.
//   gter_cli resolve --in data.csv [--sources 1] [--eta 0.98]
//                    [--rounds 5] [--matches out.csv] [--weights w.csv]
//                    [--clusterer connected_components] [--merge_threshold T]
//                    [--simd scalar|avx2|auto] [--deadline_ms N]
//                    [--budget_ms N] [--incremental]
//       Resolve a CSV dataset; write matched pairs and term weights.
//       --clusterer picks the clustering endgame that turns pairwise
//       probabilities into entities (connected_components, correlation,
//       the clean-clean matching family, hierarchical).
//       --simd=scalar pins the scalar reference kernels (bit-reproducible
//       against pre-SIMD runs); auto picks the best level CPUID reports.
//       Ctrl-C (or an elapsed --deadline_ms) cancels the run at the next
//       stage boundary: the partial results seen so far are reported,
//       --metrics_out/--trace_out are still written, and the exit code
//       is 3 (vs 0 success, 1 failure, 2 usage).
//       --budget_ms bounds the match-emission endgame: the progressive
//       scheduler visits pairs in descending-score order and stops when
//       the budget trips, keeping the highest-benefit match prefix.
//       --incremental resolves through the ResolverState engine instead
//       of the batch fusion rounds (DESIGN.md §4g).
//   gter_cli evaluate --in data.csv [--sources 1] [--matches out.csv]
//       Score a match file against the CSV's ground-truth entity column.
//   gter_cli eval-endgames [--scale 0.25] [--seed 2018] [--rounds 3]
//                          [--eta 0.98] [--merge_threshold 0.5]
//                          [--out endgames.json] [--incremental]
//       Run every registered clustering endgame over the three synthetic
//       dataset families (restaurant, product, paper): fusion trains the
//       pairwise probabilities once per family, then each endgame
//       re-clusters them. Prints a table of pairwise precision/recall/F1
//       and wall time per (family, endgame) and writes the same numbers
//       as JSON when --out is given. --incremental trains through the
//       ResolverState engine instead — half the records batch-built, the
//       rest streamed in one at a time — so the endgames re-cluster the
//       live incremental probabilities.
//   gter_cli report run.json
//       Print a per-stage breakdown of one --metrics_out file.
//   gter_cli report baseline.json candidate.json [--regress_ratio 0.10]
//       Diff two --metrics_out files; exit non-zero when a stage timer
//       regressed past the threshold (the CI perf gate).
//   gter_cli client [--host H] [--port P] [--repeat N] <method> [params-json]
//       Send one request to a running gterd and print the JSON result.
//       --repeat sends it N times and prints client-observed p50/p95/p99
//       latency (comparable against the daemon's /metrics percentiles).
//       Exit 3 when the server answers Cancelled/DeadlineExceeded.
//
// Every subcommand takes --log_level=debug|info|warning|error.
//
// The CSV interchange format is the one SaveDatasetCsv writes:
//   entity,source,field...

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gter/gter.h"

namespace gter {
namespace {

// 0 success, 1 failure, 2 usage, 3 cancelled / deadline exceeded.
constexpr int kExitCancelled = 3;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Tripped by the SIGINT handler while resolve runs; the pipeline polls it
// at every stage boundary. CancelToken::Cancel is a relaxed atomic store,
// so it is async-signal-safe.
CancelToken* g_resolve_cancel = nullptr;

void HandleInterrupt(int) {
  if (g_resolve_cancel != nullptr) g_resolve_cancel->Cancel();
}

int RunGenerate(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("kind", "restaurant", "restaurant | product | paper");
  flags.AddDouble("scale", 1.0, "dataset scale (1.0 = paper sizes)");
  flags.AddInt("seed", 2018, "generator seed");
  flags.AddString("out", "dataset.csv", "output CSV path");
  AddLogLevelFlag(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyLogLevelFlag(flags);
  if (!s.ok()) return Fail(s);

  BenchmarkKind kind;
  const std::string& name = flags.GetString("kind");
  if (name == "restaurant") {
    kind = BenchmarkKind::kRestaurant;
  } else if (name == "product") {
    kind = BenchmarkKind::kProduct;
  } else if (name == "paper") {
    kind = BenchmarkKind::kPaper;
  } else {
    return Fail(Status::InvalidArgument("unknown kind '" + name + "'"));
  }
  auto data = GenerateBenchmark(kind, flags.GetDouble("scale"),
                                static_cast<uint64_t>(flags.GetInt("seed")));
  Status write = SaveDatasetCsv(flags.GetString("out"), data.dataset,
                                data.truth);
  if (!write.ok()) return Fail(write);
  std::printf("wrote %zu records (%zu entities) to %s\n", data.dataset.size(),
              data.truth.num_entities(), flags.GetString("out").c_str());
  return 0;
}

int RunResolve(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("in", "dataset.csv", "input CSV (entity,source,field...)");
  flags.AddInt("sources", 1, "number of sources (1 or 2)");
  flags.AddDouble("eta", 0.98, "matching probability threshold");
  flags.AddInt("rounds", 5, "ITER/CliqueRank reinforcement rounds");
  flags.AddDouble("alpha", 20.0, "transition exponent");
  flags.AddInt("steps", 20, "random-walk steps S");
  flags.AddDouble("max_df_ratio", 0.12, "frequent-term removal ratio");
  flags.AddString("clusterer", "connected_components",
                  "clustering endgame (see eval-endgames for the registry)");
  flags.AddDouble("merge_threshold", 0.5,
                  "hierarchical endgame: stop merging below this linkage");
  flags.AddString("matches", "matches.csv", "output: matched pairs CSV");
  flags.AddString("weights", "", "output: term weights CSV (optional)");
  flags.AddInt("deadline_ms", 0,
               "cancel the run after this many milliseconds (0 = none)");
  flags.AddInt("budget_ms", 0,
               "progressive match-emission budget: stop emitting matches "
               "after this many milliseconds, keeping the highest-benefit "
               "prefix (0 = unlimited)");
  flags.AddBool("incremental", false,
                "resolve through the incremental ResolverState engine "
                "(streaming fixed point; reciprocal-best matching, "
                "connected-components endgame)");
  AddCommonStageFlags(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyCommonStageFlags(flags);
  if (!s.ok()) return Fail(s);

  // Install the registry before loading so tokenizer/vocabulary and
  // blocking counters are captured, not just the fusion stages.
  std::unique_ptr<MetricsRegistry> metrics;
  std::optional<ScopedMetricsInstall> metrics_install;
  if (!flags.GetString("metrics_out").empty()) {
    metrics = std::make_unique<MetricsRegistry>();
    DeclarePipelineMetrics(metrics.get());
    metrics_install.emplace(metrics.get());
  }
  // Likewise the trace recorder, so blocking/band spans are captured too.
  std::unique_ptr<TraceRecorder> trace;
  std::optional<ScopedTraceInstall> trace_install;
  if (!flags.GetString("trace_out").empty()) {
    SetCurrentThreadTraceName("main");
    trace = std::make_unique<TraceRecorder>();
    trace_install.emplace(trace.get());
  }
  // Record which compute path produced this run in both sinks.
  EmitCpuInfo(metrics.get(), trace.get());

  auto loaded = LoadDatasetCsv(flags.GetString("in"), "input",
                               static_cast<uint32_t>(flags.GetInt("sources")));
  if (!loaded.ok()) return Fail(loaded.status());
  auto [dataset, truth] = std::move(loaded).value();

  PreprocessOptions preprocess;
  preprocess.max_df_ratio = flags.GetDouble("max_df_ratio");
  RemoveFrequentTerms(&dataset, preprocess);

  FusionConfig config;
  config.rounds = static_cast<size_t>(flags.GetInt("rounds"));
  config.eta = flags.GetDouble("eta");
  config.cliquerank.alpha = flags.GetDouble("alpha");
  config.cliquerank.max_steps = static_cast<size_t>(flags.GetInt("steps"));
  auto clusterer = ParseClustererKind(flags.GetString("clusterer"));
  if (!clusterer.ok()) return Fail(clusterer.status());
  config.clusterer = clusterer.value();
  config.clusterer_options.merge_threshold =
      flags.GetDouble("merge_threshold");
  config.progressive_budget_ms =
      static_cast<double>(flags.GetInt("budget_ms"));
  const bool incremental = flags.GetBool("incremental");

  // Results are bit-identical for any thread count, so --threads only
  // changes wall-clock time.
  std::unique_ptr<ThreadPool> pool = MakeThreadPool(flags.GetInt("threads"));

  CancelToken cancel;
  if (flags.GetInt("deadline_ms") > 0) {
    cancel.SetTimeout(static_cast<double>(flags.GetInt("deadline_ms")) /
                      1000.0);
  }
  ExecContext ctx;
  ctx.pool = pool.get();
  ctx.metrics = metrics.get();
  ctx.trace = trace.get();
  ctx.cancel = &cancel;

  // Ctrl-C trips the token; the next stage-boundary poll unwinds the run.
  g_resolve_cancel = &cancel;
  auto previous_handler = std::signal(SIGINT, HandleInterrupt);

  // Either arm fills a FusionResult so the output paths below are shared.
  // The incremental arm resolves through the ResolverState engine
  // (DESIGN.md §4g): same candidate space, streaming-capable fixed point,
  // reciprocal-best matching with the connected-components closure.
  std::optional<FusionPipeline> pipeline;
  std::optional<ResolverState> state;
  auto execute = [&]() -> Result<FusionResult> {
    if (incremental) {
      Stopwatch watch;
      ResolverStateOptions rs_options;
      rs_options.eta = config.eta;
      rs_options.pt_mode = config.pt_mode;
      state.emplace(&dataset, rs_options);
      GTER_RETURN_IF_ERROR(state->BuildBatch(ctx));
      FusionResult out;
      out.term_weights = state->term_weights();
      out.pair_scores = state->pair_scores();
      out.pair_probability = state->pair_probability();
      out.matches = state->matches();
      out.cluster_of = state->cluster_of();
      out.num_clusters = state->num_clusters();
      out.pairs_considered = state->pairs().size();
      out.total_seconds = watch.ElapsedSeconds();
      return out;
    }
    pipeline.emplace(dataset, config);
    return pipeline->Run(ctx);
  };
  Result<FusionResult> run = execute();

  std::signal(SIGINT, previous_handler);
  g_resolve_cancel = nullptr;

  const bool cancelled = !run.ok() && IsCancellation(run.status());
  if (!run.ok() && !cancelled) return Fail(run.status());
  static const FusionResult kEmptyResult;
  const FusionResult& result =
      run.ok() ? run.value()
               : (pipeline.has_value() ? pipeline->partial() : kEmptyResult);
  const PairSpace& pair_space =
      incremental ? state->pairs() : pipeline->pairs();

  if (cancelled) {
    if (incremental) {
      std::printf("interrupted (%s): incremental build cancelled; re-run "
                  "or resume via the daemon's converge path\n",
                  StatusCodeToString(run.status().code()));
    } else {
      std::printf("interrupted (%s): %zu of %zu rounds completed (%.1fs); "
                  "match decisions were not reached\n",
                  StatusCodeToString(run.status().code()),
                  result.round_stats.size(), config.rounds,
                  result.total_seconds);
    }
  } else {
    size_t matched = 0;
    for (bool m : result.matches) matched += m;
    std::printf("resolved %zu records: %zu candidate pairs, %zu matches, "
                "%zu entities via %s (%.1fs)\n",
                dataset.size(), pair_space.size(), matched,
                result.num_clusters,
                incremental ? "incremental"
                            : ClustererKindName(config.clusterer),
                result.total_seconds);
    if (result.budget_exhausted) {
      std::printf("note: --budget_ms tripped after %zu of %zu pairs; the "
                  "matches are the highest-benefit prefix\n",
                  result.pairs_considered, pair_space.size());
    }
    Status write = SaveMatches(flags.GetString("matches"), pair_space,
                               result);
    if (!write.ok()) return Fail(write);
    std::printf("matches written to %s\n", flags.GetString("matches").c_str());
  }
  // Term weights from the last completed ITER run are valid even on a
  // cancelled run (they exist once round 1's ITER finished).
  if (!flags.GetString("weights").empty() && !result.term_weights.empty()) {
    Status write = SaveTermWeights(flags.GetString("weights"), dataset,
                                   result.term_weights);
    if (!write.ok()) return Fail(write);
    std::printf("term weights written to %s\n",
                flags.GetString("weights").c_str());
  }
  // The observability dumps are written for cancelled runs too — a
  // partial trace of a run someone Ctrl-C'd is exactly what they want to
  // look at next.
  if (metrics != nullptr) {
    Status write = WriteMetricsJson(flags.GetString("metrics_out"), *metrics);
    if (!write.ok()) return Fail(write);
    std::printf("metrics written to %s\n",
                flags.GetString("metrics_out").c_str());
  }
  if (trace != nullptr) {
    trace_install.reset();  // stop recording before export
    Status write = WriteTraceJson(flags.GetString("trace_out"), *trace);
    if (!write.ok()) return Fail(write);
    std::printf("trace written to %s (%zu events, %llu dropped)\n",
                flags.GetString("trace_out").c_str(), trace->event_count(),
                static_cast<unsigned long long>(trace->dropped_events()));
  }
  return cancelled ? kExitCancelled : 0;
}

int RunEvaluate(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("in", "dataset.csv", "input CSV with ground truth");
  flags.AddInt("sources", 1, "number of sources (1 or 2)");
  flags.AddString("matches", "matches.csv", "match file to score");
  flags.AddDouble("max_df_ratio", 0.12, "frequent-term removal ratio");
  AddLogLevelFlag(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyLogLevelFlag(flags);
  if (!s.ok()) return Fail(s);

  auto loaded = LoadDatasetCsv(flags.GetString("in"), "input",
                               static_cast<uint32_t>(flags.GetInt("sources")));
  if (!loaded.ok()) return Fail(loaded.status());
  auto [dataset, truth] = std::move(loaded).value();
  PreprocessOptions preprocess;
  preprocess.max_df_ratio = flags.GetDouble("max_df_ratio");
  RemoveFrequentTerms(&dataset, preprocess);

  PairSpace pairs = PairSpace::Build(dataset);
  auto matches = LoadMatches(flags.GetString("matches"), pairs);
  if (!matches.ok()) return Fail(matches.status());

  auto labels = LabelPairs(pairs, truth);
  Confusion c = EvaluatePairPredictions(pairs, matches.value(), labels,
                                        TotalPositives(dataset, truth));
  std::printf("precision %.4f  recall %.4f  F1 %.4f  (TP %llu, FP %llu, "
              "FN %llu)\n",
              c.Precision(), c.Recall(), c.F1(),
              static_cast<unsigned long long>(c.true_positives),
              static_cast<unsigned long long>(c.false_positives),
              static_cast<unsigned long long>(c.false_negatives));
  return 0;
}

// Runs every registered clustering endgame over the three synthetic
// families. Fusion (the expensive part) runs once per family; the
// endgames then re-cluster the same trained probabilities, which is
// exactly how they differ in production.
int RunEvalEndgames(int argc, char** argv) {
  FlagSet flags;
  flags.AddDouble("scale", 0.25, "dataset scale (1.0 = paper sizes)");
  flags.AddInt("seed", 2018, "generator seed");
  flags.AddInt("rounds", 3, "ITER/CliqueRank reinforcement rounds");
  flags.AddDouble("eta", 0.98, "matching probability threshold");
  flags.AddDouble("merge_threshold", 0.5,
                  "hierarchical endgame: stop merging below this linkage");
  flags.AddInt("threads", 0, "worker threads (0 = sequential)");
  flags.AddString("out", "", "output JSON path (optional)");
  flags.AddBool("incremental", false,
                "train through the ResolverState engine (half the records "
                "batch-built, the rest streamed one at a time) instead of "
                "the batch fusion rounds");
  AddLogLevelFlag(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyLogLevelFlag(flags);
  if (!s.ok()) return Fail(s);
  const bool incremental = flags.GetBool("incremental");

  struct Family {
    BenchmarkKind kind;
    const char* name;
  };
  const Family kFamilies[] = {{BenchmarkKind::kRestaurant, "restaurant"},
                              {BenchmarkKind::kProduct, "product"},
                              {BenchmarkKind::kPaper, "paper"}};

  std::unique_ptr<ThreadPool> pool = MakeThreadPool(flags.GetInt("threads"));
  ExecContext ctx;
  ctx.pool = pool.get();

  JsonValue report = JsonValue::MakeObject();
  report.Set("scale", JsonValue::MakeNumber(flags.GetDouble("scale")));
  report.Set("seed", JsonValue::MakeNumber(flags.GetInt("seed")));
  report.Set("eta", JsonValue::MakeNumber(flags.GetDouble("eta")));
  JsonValue datasets = JsonValue::MakeArray();

  for (const Family& family : kFamilies) {
    auto data = GenerateBenchmark(family.kind, flags.GetDouble("scale"),
                                  static_cast<uint64_t>(flags.GetInt("seed")));
    RemoveFrequentTerms(&data.dataset);

    FusionConfig config;
    config.rounds = static_cast<size_t>(flags.GetInt("rounds"));
    config.eta = flags.GetDouble("eta");

    // Either training arm fills these: the candidate space the endgames
    // re-cluster and the pairwise probabilities over it.
    std::optional<FusionPipeline> pipeline;
    std::optional<FusionResult> result;
    std::optional<ResolverState> state;
    Stopwatch train_watch;
    if (incremental) {
      // Replay harness: batch-build the first half, stream the rest in one
      // record at a time — the endgames then see the live incremental
      // probabilities rather than a frozen fusion run.
      ResolverStateOptions rs_options;
      rs_options.eta = config.eta;
      state.emplace(&data.dataset, rs_options);
      if (Status built = state->BuildBatch(ctx, data.dataset.size() / 2);
          !built.ok()) {
        return Fail(built);
      }
      while (state->num_records() < data.dataset.size()) {
        Result<IngestStats> ingested = state->IngestExisting(ctx);
        if (!ingested.ok()) return Fail(ingested.status());
      }
    } else {
      pipeline.emplace(data.dataset, config);
      Result<FusionResult> run = pipeline->Run(ctx);
      if (!run.ok()) return Fail(run.status());
      result = std::move(run).value();
    }
    const double train_seconds =
        incremental ? train_watch.ElapsedSeconds() : result->total_seconds;
    const PairSpace& candidate_pairs =
        incremental ? state->pairs() : pipeline->pairs();
    const std::vector<double>& probabilities =
        incremental ? state->pair_probability() : result->pair_probability;

    std::printf("%s: %zu records, %zu sources, %zu candidate pairs "
                "(%s %.2fs)\n",
                family.name, data.dataset.size(),
                static_cast<size_t>(data.dataset.num_sources()),
                candidate_pairs.size(),
                incremental ? "incremental" : "fusion", train_seconds);
    std::printf("  %-22s %9s %9s %9s %9s %9s\n", "clusterer", "prec",
                "recall", "f1", "clusters", "seconds");

    JsonValue dataset_obj = JsonValue::MakeObject();
    dataset_obj.Set("kind", JsonValue::MakeString(family.name));
    dataset_obj.Set("records", JsonValue::MakeNumber(data.dataset.size()));
    dataset_obj.Set("sources",
                    JsonValue::MakeNumber(data.dataset.num_sources()));
    dataset_obj.Set("candidate_pairs",
                    JsonValue::MakeNumber(candidate_pairs.size()));
    dataset_obj.Set("fusion_seconds", JsonValue::MakeNumber(train_seconds));
    dataset_obj.Set("incremental", JsonValue::MakeBool(incremental));
    JsonValue endgames = JsonValue::MakeArray();

    ClusterProblem problem;
    problem.num_records = data.dataset.size();
    problem.pairs = &candidate_pairs;
    problem.pair_probability = &probabilities;
    problem.eta = config.eta;
    std::vector<uint32_t> source_of;
    if (data.dataset.num_sources() > 1) {
      source_of.reserve(data.dataset.size());
      for (const Record& r : data.dataset.records()) {
        source_of.push_back(r.source);
      }
      problem.source_of = &source_of;
    }

    ClustererOptions options;
    options.merge_threshold = flags.GetDouble("merge_threshold");
    for (ClustererKind kind : AllClustererKinds()) {
      Stopwatch watch;
      Result<Clustering> clustered =
          MakeClusterer(kind, options)->Cluster(problem, ctx);
      if (!clustered.ok()) return Fail(clustered.status());
      const double seconds = watch.ElapsedSeconds();
      ClusterEvaluation eval =
          EvaluateClustering(clustered.value().cluster_of, data.truth);

      std::printf("  %-22s %9.4f %9.4f %9.4f %9zu %9.3f\n",
                  ClustererKindName(kind), eval.pairwise_precision,
                  eval.pairwise_recall, eval.pairwise_f1,
                  clustered.value().num_clusters, seconds);

      JsonValue row = JsonValue::MakeObject();
      row.Set("clusterer", JsonValue::MakeString(ClustererKindName(kind)));
      row.Set("precision", JsonValue::MakeNumber(eval.pairwise_precision));
      row.Set("recall", JsonValue::MakeNumber(eval.pairwise_recall));
      row.Set("f1", JsonValue::MakeNumber(eval.pairwise_f1));
      row.Set("adjusted_rand_index",
              JsonValue::MakeNumber(eval.adjusted_rand_index));
      row.Set("clusters",
              JsonValue::MakeNumber(clustered.value().num_clusters));
      row.Set("seconds", JsonValue::MakeNumber(seconds));
      endgames.Append(std::move(row));
    }
    dataset_obj.Set("endgames", std::move(endgames));
    datasets.Append(std::move(dataset_obj));
  }
  report.Set("datasets", std::move(datasets));

  if (!flags.GetString("out").empty()) {
    const std::string path = flags.GetString("out");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::Internal("cannot open '" + path + "' for writing"));
    }
    const std::string json = report.Serialize();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                        json.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) return Fail(Status::Internal("short write to '" + path + "'"));
    std::printf("report written to %s\n", path.c_str());
  }
  return 0;
}

int RunReport(int argc, char** argv) {
  FlagSet flags;
  flags.AddDouble("regress_ratio", 0.10,
                  "diff: mean-seconds growth that counts as a regression");
  flags.AddDouble("min_seconds", 1e-4,
                  "diff: baseline means below this never gate");
  AddLogLevelFlag(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyLogLevelFlag(flags);
  if (!s.ok()) return Fail(s);

  const auto& paths = flags.positional();
  if (paths.empty() || paths.size() > 2) {
    std::fprintf(stderr,
                 "usage: gter_cli report <metrics.json> [candidate.json] "
                 "[--regress_ratio R] [--min_seconds S]\n");
    return 2;
  }

  auto baseline = MetricsSnapshot::Load(paths[0]);
  if (!baseline.ok()) return Fail(baseline.status());

  if (paths.size() == 1) {
    std::printf("run report for %s\n\n%s", paths[0].c_str(),
                FormatRunReport(baseline.value()).c_str());
    return 0;
  }

  auto candidate = MetricsSnapshot::Load(paths[1]);
  if (!candidate.ok()) return Fail(candidate.status());
  PerfDiffOptions options;
  options.regress_ratio = flags.GetDouble("regress_ratio");
  options.min_seconds = flags.GetDouble("min_seconds");
  PerfDiffResult diff =
      DiffSnapshots(baseline.value(), candidate.value(), options);
  std::printf("%s vs %s\n%s", paths[0].c_str(), paths[1].c_str(),
              diff.report.c_str());
  return diff.regressions.empty() ? 0 : 1;
}

int RunClient(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("host", "127.0.0.1", "gterd address");
  flags.AddInt("port", 7421, "gterd port");
  flags.AddInt("deadline_ms", 0, "per-request deadline (0 = none)");
  flags.AddInt("repeat", 1,
               "send the request N times and print client-observed "
               "p50/p95/p99 latency on exit");
  AddLogLevelFlag(&flags);
  Status s = flags.Parse(argc, argv);
  if (s.ok()) s = ApplyLogLevelFlag(flags);
  if (!s.ok()) return Fail(s);

  const auto& args = flags.positional();
  if (args.empty() || args.size() > 2) {
    std::fprintf(
        stderr,
        "usage: gter_cli client [--host H] [--port P] [--deadline_ms D] "
        "[--repeat N] <method> [params-json]\n"
        "e.g.   gter_cli client --port 7421 stats\n"
        "       gter_cli client resolve '{\"text\": \"fenix cafe lodge\"}'\n"
        "       gter_cli client pair_score '{\"a\": 3, \"b\": 17}'\n"
        "       gter_cli client --repeat 100 resolve '{\"text\": \"x\"}'\n");
    return 2;
  }
  const int64_t repeat = std::max<int64_t>(1, flags.GetInt("repeat"));
  JsonValue params = JsonValue::MakeObject();
  if (args.size() == 2) {
    auto parsed = JsonValue::Parse(args[1]);
    if (!parsed.ok()) return Fail(parsed.status());
    if (!parsed.value().is_object()) {
      return Fail(Status::InvalidArgument("params must be a JSON object"));
    }
    params = std::move(parsed).value();
  }

  auto client =
      GterdClient::Connect(flags.GetString("host"),
                           static_cast<uint16_t>(flags.GetInt("port")));
  if (!client.ok()) return Fail(client.status());

  // One round trip per iteration; per-call wall times feed the percentile
  // printout, so a hand-run smoke check is directly comparable to the
  // server's /metrics work_us percentiles (client time adds RTT + queue).
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(repeat));
  for (int64_t i = 0; i < repeat; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto response = client.value().Call(args[0], params,
                                        flags.GetInt("deadline_ms"));
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return IsCancellation(response.status()) ? kExitCancelled : 1;
    }
    latencies_us.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    // The response body prints once: repeats are for timing, not output.
    if (i == 0) {
      std::printf("%s\n", response.value().Serialize().c_str());
    }
  }
  if (repeat > 1) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const auto pct = [&latencies_us](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(latencies_us.size() - 1) + 0.5);
      return latencies_us[std::min(idx, latencies_us.size() - 1)];
    };
    std::printf(
        "client latency over %lld calls: p50 %.1f us, p95 %.1f us, "
        "p99 %.1f us\n",
        static_cast<long long>(repeat), pct(0.50), pct(0.95), pct(0.99));
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: gter_cli "
      "<generate|resolve|evaluate|eval-endgames|report|client> [flags]\n"
      "  generate       synthesize a benchmark dataset to CSV\n"
      "  resolve        run unsupervised resolution on a CSV dataset\n"
      "  evaluate       score a match file against ground truth\n"
      "  eval-endgames  compare every clustering endgame on the synthetic "
      "families\n"
      "  report         summarize or diff --metrics_out JSON files\n"
      "  client         send one request to a running gterd\n");
  return 2;
}

}  // namespace
}  // namespace gter

int main(int argc, char** argv) {
  if (argc < 2) return gter::Usage();
  std::string command = argv[1];
  // Shift the subcommand out of argv for the flag parser.
  if (command == "generate") return gter::RunGenerate(argc - 1, argv + 1);
  if (command == "resolve") return gter::RunResolve(argc - 1, argv + 1);
  if (command == "evaluate") return gter::RunEvaluate(argc - 1, argv + 1);
  if (command == "eval-endgames") {
    return gter::RunEvalEndgames(argc - 1, argv + 1);
  }
  if (command == "report") return gter::RunReport(argc - 1, argv + 1);
  if (command == "client") return gter::RunClient(argc - 1, argv + 1);
  return gter::Usage();
}
