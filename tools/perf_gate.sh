#!/usr/bin/env bash
# CI perf gate: run bench_micro with --metrics_out and diff the timer means
# against the checked-in BENCH_baseline.json with `gter_cli report`.
#
# Exit status is the diff's: 0 when every gated timer is within the
# regression threshold, non-zero when any baseline timer's mean-per-call
# regressed past it. Timers whose baseline mean sits under --min_seconds
# never gate (noise floor), so short sub-benchmarks can't flake the gate.
#
# Usage:
#   tools/perf_gate.sh <build-dir> [baseline.json] [regress-ratio] [simd] \
#                      [loadgen-conns] [p99-budget-ms]
#
#   build-dir      CMake build directory holding bench/bench_micro and
#                  tools/gter_cli (e.g. `build`).
#   baseline.json  Metrics snapshot to diff against. Default:
#                  BENCH_baseline.json next to this script's repo root.
#                  Regenerate on the reference machine with:
#                    build/bench/bench_micro \
#                      --metrics_out=BENCH_baseline.json \
#                      --benchmark_min_time=0.05
#   regress-ratio  Allowed fractional slowdown before failing. Default 0.5
#                  (+50%): generous because the checked-in baseline was
#                  recorded on one specific machine; tighten it when the
#                  baseline is regenerated on the machine running the gate.
#   simd           Dispatch level the gate run uses: auto (default),
#                  avx512, avx2, or scalar. The gate normally runs the SIMD
#                  path (what production runs — auto picks the highest tier
#                  the host supports); pass `scalar` to compare a candidate
#                  against a pre-SIMD baseline like for like — scalar-only
#                  timers are recorded and the *_avx2 / *_avx512 bench
#                  variants skip. Levels above the host's capability clamp
#                  down, so `avx512` is safe to pass everywhere: on a
#                  non-avx512 host it degrades to the avx2 run.
#   loadgen-conns  When > 0, additionally run bench/bench_loadgen against a
#                  self-hosted gterd with this many concurrent connections
#                  and gate on ZERO protocol errors (bench_loadgen exits
#                  non-zero if any request fails). This is a correctness
#                  gate, not a latency gate: the qps/percentile numbers are
#                  printed for the log but never diffed against a baseline,
#                  so it cannot flake on a slow machine. Default 0 (off).
#                  Also settable via the PERF_GATE_LOADGEN env var.
#   p99-budget-ms  When > 0 (and loadgen-conns > 0), the loadgen run also
#                  gates on latency: it warms up each connection and fails
#                  if the measured client p99 exceeds this many
#                  milliseconds. OFF by default (0) because a wall-clock
#                  budget is only meaningful on a dedicated reference
#                  machine — opt in where the hardware is pinned. Also
#                  settable via the PERF_GATE_P99_BUDGET_MS env var.
#
# Wired into ctest behind -DGTER_PERF_GATE=ON with label `perf`:
#   cmake -B build -S . -DGTER_PERF_GATE=ON && cmake --build build -j
#   ctest --test-dir build -L perf --output-on-failure
#
# The ExecContext refactor (DESIGN.md §4e) threaded cancellation polls
# through every hot loop gated here. The bench binaries attach no
# CancelToken, so each poll is a single null-pointer test — the same
# zero-cost path production runs without a deadline. The checked-in
# baseline was regenerated AFTER the poll sites landed; this gate passing
# against it is the standing proof that the polls stay free.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: tools/perf_gate.sh <build-dir> [baseline.json] [regress-ratio] [simd] [loadgen-conns] [p99-budget-ms]}"
baseline="${2:-${repo_root}/BENCH_baseline.json}"
ratio="${3:-0.5}"
simd="${4:-auto}"
loadgen_conns="${5:-${PERF_GATE_LOADGEN:-0}}"
p99_budget_ms="${6:-${PERF_GATE_P99_BUDGET_MS:-0}}"

bench="${build_dir}/bench/bench_micro"
cli="${build_dir}/tools/gter_cli"
for binary in "${bench}" "${cli}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "perf_gate: missing binary ${binary} (build with -DGTER_BUILD_BENCHMARKS=ON)" >&2
    exit 2
  fi
done
if [[ ! -f "${baseline}" ]]; then
  echo "perf_gate: missing baseline ${baseline}" >&2
  exit 2
fi

candidate="$(mktemp --suffix=.json)"
trap 'rm -f "${candidate}"' EXIT

# Same min-time the baseline was recorded with, so per-call means compare
# like for like.
echo "perf_gate: running ${bench}" >&2
if ! "${bench}" --metrics_out="${candidate}" --benchmark_min_time=0.05 \
    --simd="${simd}" > /dev/null; then
  echo "perf_gate: bench_micro failed" >&2
  exit 2
fi

"${cli}" report "${baseline}" "${candidate}" --regress_ratio="${ratio}"
gate_status=$?

if [[ "${loadgen_conns}" -gt 0 ]]; then
  loadgen="${build_dir}/bench/bench_loadgen"
  if [[ ! -x "${loadgen}" ]]; then
    echo "perf_gate: missing binary ${loadgen}" >&2
    exit 2
  fi
  loadgen_args=(--connections="${loadgen_conns}" --requests=200)
  if [[ "${p99_budget_ms}" != "0" ]]; then
    # Latency-budget mode: warm each connection up so allocator / page-cache
    # cold starts don't land in the gated percentiles.
    loadgen_args+=(--warmup_requests=50 --p99_budget_ms="${p99_budget_ms}")
  fi
  echo "perf_gate: running ${loadgen} ${loadgen_args[*]}" >&2
  if ! "${loadgen}" "${loadgen_args[@]}"; then
    echo "perf_gate: bench_loadgen failed (protocol errors or latency budget)" >&2
    exit 1
  fi
fi

exit "${gate_status}"
