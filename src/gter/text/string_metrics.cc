#include "gter/text/string_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace gter {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 >= 1 ? std::max(a.size(), b.size()) / 2 - 1 : 0;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

size_t SortedIntersectionSize(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<uint32_t> SortedIntersection(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  size_t inter = SortedIntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double DiceCoefficient(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double TrigramJaccard(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto grams = [](std::string_view s) {
    std::unordered_map<std::string, int> bag;
    if (s.size() < 3) {
      bag[std::string(s)]++;
      return bag;
    }
    for (size_t i = 0; i + 3 <= s.size(); ++i) {
      bag[std::string(s.substr(i, 3))]++;
    }
    return bag;
  };
  auto ga = grams(a);
  auto gb = grams(b);
  size_t inter = 0, uni = 0;
  for (const auto& [gram, count] : ga) {
    auto it = gb.find(gram);
    int other = it == gb.end() ? 0 : it->second;
    inter += std::min(count, other);
    uni += std::max(count, other);
  }
  for (const auto& [gram, count] : gb) {
    if (ga.find(gram) == ga.end()) uni += count;
  }
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto directed = [](const std::vector<std::string>& from,
                     const std::vector<std::string>& to) {
    double total = 0.0;
    for (const std::string& token : from) {
      double best = 0.0;
      for (const std::string& other : to) {
        best = std::max(best, JaroWinklerSimilarity(token, other));
      }
      total += best;
    }
    return total / static_cast<double>(from.size());
  };
  return (directed(a, b) + directed(b, a)) / 2.0;
}

double SoftTfIdfSimilarity(const std::vector<std::string>& a,
                           const std::vector<double>& weights_a,
                           const std::vector<std::string>& b,
                           const std::vector<double>& weights_b,
                           double theta) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // CLOSE(θ; a, b): tokens of `a` with some token of `b` above θ; each
  // contributes w_a(t) · w_b(best) · sim(best).
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double best_sim = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      double sim = JaroWinklerSimilarity(a[i], b[j]);
      if (sim > best_sim) {
        best_sim = sim;
        best_j = j;
      }
    }
    if (best_sim >= theta) {
      dot += weights_a[i] * weights_b[best_j] * best_sim;
    }
  }
  double norm_a = 0.0, norm_b = 0.0;
  for (double w : weights_a) norm_a += w * w;
  for (double w : weights_b) norm_b += w * w;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace gter
