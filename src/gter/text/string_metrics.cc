#include "gter/text/string_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "gter/common/cpu.h"

namespace gter {
namespace {

/// One step of Hyyrö's block formulation of Myers' algorithm: advances the
/// vertical delta words (Pv = +1 rows, Mv = -1 rows) of one 64-row block by
/// one text column. `hin` ∈ {-1, 0, +1} is the horizontal delta entering at
/// the block's bottom row; the return is the horizontal delta leaving at the
/// row marked by `hout_bit` (the block's top row — or, in the final block,
/// bit (m-1) mod 64, the pattern's true last row).
inline int AdvanceBlock(uint64_t* pv, uint64_t* mv, uint64_t eq, int hin,
                        uint64_t hout_bit) {
  const uint64_t hin_neg = (hin < 0) ? 1u : 0u;
  const uint64_t xv = eq | *mv;
  eq |= hin_neg;
  const uint64_t xh = (((eq & *pv) + *pv) ^ *pv) | eq;
  uint64_t ph = *mv | ~(xh | *pv);
  uint64_t mh = *pv & xh;
  int hout = 0;
  if (ph & hout_bit) hout = 1;
  else if (mh & hout_bit) hout = -1;
  ph = (ph << 1) | static_cast<uint64_t>(hin > 0 ? 1 : 0);
  mh = (mh << 1) | hin_neg;
  *pv = mh | ~(xv | ph);
  *mv = ph & xv;
  return hout;
}

/// Single-word Myers (pattern length ≤ 64): the common case for record
/// fields, one AdvanceBlock-shaped update per text byte with everything in
/// registers.
size_t MyersSingleWord(std::string_view pattern, std::string_view text) {
  uint64_t peq[256] = {};
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  size_t score = pattern.size();
  const uint64_t last = uint64_t{1} << (pattern.size() - 1);
  for (char c : text) {
    const uint64_t eq = peq[static_cast<unsigned char>(c)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) ++score;
    else if (mh & last) --score;
    // The DP's first row is D[0][j] = j: a permanent +1 enters at the
    // bottom, hence the forced low bit of Ph.
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

/// Blocked Myers for patterns longer than 64 bytes.
size_t MyersBlocked(std::string_view pattern, std::string_view text) {
  const size_t m = pattern.size();
  const size_t num_blocks = (m + 63) / 64;
  std::vector<uint64_t> peq(256 * num_blocks, 0);
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i]) * num_blocks + i / 64] |=
        uint64_t{1} << (i % 64);
  }
  std::vector<uint64_t> pv(num_blocks, ~uint64_t{0});
  std::vector<uint64_t> mv(num_blocks, 0);
  const uint64_t top_bit = uint64_t{1} << 63;
  const uint64_t last_bit = uint64_t{1} << ((m - 1) % 64);
  size_t score = m;
  for (char c : text) {
    const uint64_t* eq = peq.data() +
                         static_cast<size_t>(static_cast<unsigned char>(c)) *
                             num_blocks;
    int h = 1;  // first DP row: D[0][j] - D[0][j-1] = +1
    for (size_t blk = 0; blk + 1 < num_blocks; ++blk) {
      h = AdvanceBlock(&pv[blk], &mv[blk], eq[blk], h, top_bit);
    }
    h = AdvanceBlock(&pv[num_blocks - 1], &mv[num_blocks - 1],
                     eq[num_blocks - 1], h, last_bit);
    score = static_cast<size_t>(static_cast<int64_t>(score) + h);
  }
  return score;
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (ActiveSimdLevel() == SimdLevel::kScalar) {
    return LevenshteinDistanceDp(a, b);
  }
  return LevenshteinDistanceMyers(a, b);
}

size_t LevenshteinDistanceDp(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t LevenshteinDistanceMyers(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b becomes the pattern
  if (b.empty()) return a.size();
  if (b.size() <= 64) return MyersSingleWord(b, a);
  return MyersBlocked(b, a);
}

void LevenshteinDistanceBatch(std::string_view a,
                              const std::vector<std::string>& b,
                              std::vector<size_t>* out) {
  out->resize(b.size());
  const SimdLevel level = ActiveSimdLevel();
#if GTER_HAVE_AVX512
  // The lane-parallel kernel fixes `a` as the pattern regardless of which
  // string is shorter; edit distance is symmetric and Myers is exact, so
  // the integer result matches the per-call role-swapping entry point.
  if (level >= SimdLevel::kAvx512 && !a.empty() && a.size() <= 64) {
    internal::LevenshteinBatchAvx512(a, b, out->data());
    return;
  }
#endif
  for (size_t j = 0; j < b.size(); ++j) {
    (*out)[j] = level == SimdLevel::kScalar ? LevenshteinDistanceDp(a, b[j])
                                            : LevenshteinDistanceMyers(a, b[j]);
  }
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

namespace {

/// Reusable match-flag buffers for the Jaro core. A fresh pair of
/// `vector<bool>` per call dominates the cost of comparing short tokens;
/// batch callers reuse one of these across an entire candidate list.
struct JaroScratch {
  std::vector<unsigned char> a_matched;
  std::vector<unsigned char> b_matched;
};

double JaroSimilarityWithScratch(std::string_view a, std::string_view b,
                                 JaroScratch* scratch) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 >= 1 ? std::max(a.size(), b.size()) / 2 - 1 : 0;
  scratch->a_matched.assign(a.size(), 0);
  scratch->b_matched.assign(b.size(), 0);
  std::vector<unsigned char>& a_matched = scratch->a_matched;
  std::vector<unsigned char>& b_matched = scratch->b_matched;
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = 1;
        b_matched[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerWithScratch(std::string_view a, std::string_view b,
                              double prefix_scale, JaroScratch* scratch) {
  double jaro = JaroSimilarityWithScratch(a, b, scratch);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

}  // namespace

double JaroSimilarity(std::string_view a, std::string_view b) {
  JaroScratch scratch;
  return JaroSimilarityWithScratch(a, b, &scratch);
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  JaroScratch scratch;
  return JaroWinklerWithScratch(a, b, prefix_scale, &scratch);
}

void JaroWinklerSimilarityBatch(std::string_view a,
                                const std::vector<std::string>& b,
                                std::vector<double>* out,
                                double prefix_scale) {
  out->resize(b.size());
#if GTER_HAVE_AVX512
  if (ActiveSimdLevel() >= SimdLevel::kAvx512 && a.size() <= 64) {
    // Per-candidate dispatch: the masked kernel covers candidates that fit
    // one zmm (≤ 64 bytes — virtually all record tokens); longer ones fall
    // back to the scalar window walk with the shared scratch.
    JaroScratch scratch;
    for (size_t j = 0; j < b.size(); ++j) {
      (*out)[j] = b[j].size() <= 64
                      ? internal::JaroWinklerAvx512(a, b[j], prefix_scale)
                      : JaroWinklerWithScratch(a, b[j], prefix_scale, &scratch);
    }
    return;
  }
#endif
  JaroScratch scratch;
  for (size_t j = 0; j < b.size(); ++j) {
    (*out)[j] = JaroWinklerWithScratch(a, b[j], prefix_scale, &scratch);
  }
}

size_t SortedIntersectionSize(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<uint32_t> SortedIntersection(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  size_t inter = SortedIntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double DiceCoefficient(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double TrigramJaccard(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto grams = [](std::string_view s) {
    std::unordered_map<std::string, int> bag;
    if (s.size() < 3) {
      bag[std::string(s)]++;
      return bag;
    }
    for (size_t i = 0; i + 3 <= s.size(); ++i) {
      bag[std::string(s.substr(i, 3))]++;
    }
    return bag;
  };
  auto ga = grams(a);
  auto gb = grams(b);
  size_t inter = 0, uni = 0;
  for (const auto& [gram, count] : ga) {
    auto it = gb.find(gram);
    int other = it == gb.end() ? 0 : it->second;
    inter += std::min(count, other);
    uni += std::max(count, other);
  }
  for (const auto& [gram, count] : gb) {
    if (ga.find(gram) == ga.end()) uni += count;
  }
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sims;
  auto directed = [&sims](const std::vector<std::string>& from,
                          const std::vector<std::string>& to) {
    double total = 0.0;
    for (const std::string& token : from) {
      JaroWinklerSimilarityBatch(token, to, &sims);
      double best = 0.0;
      for (double sim : sims) best = std::max(best, sim);
      total += best;
    }
    return total / static_cast<double>(from.size());
  };
  return (directed(a, b) + directed(b, a)) / 2.0;
}

double SoftTfIdfSimilarity(const std::vector<std::string>& a,
                           const std::vector<double>& weights_a,
                           const std::vector<std::string>& b,
                           const std::vector<double>& weights_b,
                           double theta) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // CLOSE(θ; a, b): tokens of `a` with some token of `b` above θ; each
  // contributes w_a(t) · w_b(best) · sim(best).
  double dot = 0.0;
  std::vector<double> sims;
  for (size_t i = 0; i < a.size(); ++i) {
    JaroWinklerSimilarityBatch(a[i], b, &sims);
    double best_sim = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      if (sims[j] > best_sim) {
        best_sim = sims[j];
        best_j = j;
      }
    }
    if (best_sim >= theta) {
      dot += weights_a[i] * weights_b[best_j] * best_sim;
    }
  }
  double norm_a = 0.0, norm_b = 0.0;
  for (double w : weights_a) norm_a += w * w;
  for (double w : weights_b) norm_b += w * w;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace gter
