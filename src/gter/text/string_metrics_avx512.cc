// AVX-512 string-metric kernels: an 8-lane batched single-word Myers
// Levenshtein and a mask-parallel Jaro–Winkler. Both are exact — Myers is
// an integer DP (lane-wise it computes the same bits the scalar kernel
// does), and the Jaro kernel picks the same first-unmatched-equal-char
// match the scalar window walk picks (lowest j via tzcnt over a compare
// mask), then evaluates the identical double formula — so both are
// bit-identical to their scalar twins, which the simd differential tests
// assert with ASSERT_EQ.

#include "gter/text/string_metrics.h"

#if GTER_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace gter {
namespace internal {
namespace {

/// 3-input boolean A | ~(B | C) as a vpternlogq immediate: the Myers
/// vertical-delta updates ph = mv | ~(xh | pv) and pv' = mh | ~(xv | ph').
constexpr int kOrNotOr = 0xF1;

/// Jaro core on bitset match state. Both strings ≤ 64 bytes; `b` lives in
/// one byte-masked zmm and each a[i] resolves its whole match window with
/// one byte-compare mask + tzcnt.
double JaroMasked(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t bn = b.size();
  const __mmask64 b_valid =
      bn == 64 ? ~__mmask64{0} : ((__mmask64{1} << bn) - 1);
  const __m512i bvec = _mm512_maskz_loadu_epi8(b_valid, b.data());
  const size_t max_len = std::max(a.size(), bn);
  const size_t window = max_len / 2 >= 1 ? max_len / 2 - 1 : 0;
  uint64_t a_matched = 0;
  uint64_t b_matched = 0;
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(bn, i + window + 1);
    if (lo >= hi) continue;
    const size_t span = hi - lo;
    // [lo, hi) never reaches past bn, so the window mask alone confines the
    // compare to valid bytes (zeroed lanes of bvec can't alias NUL bytes).
    const uint64_t wmask =
        (span == 64 ? ~uint64_t{0} : ((uint64_t{1} << span) - 1)) << lo;
    const uint64_t eq = _mm512_cmpeq_epi8_mask(_mm512_set1_epi8(a[i]), bvec);
    const uint64_t cand = eq & ~b_matched & wmask;
    if (cand != 0) {
      // Lowest set bit = lowest j in the window = the match the scalar
      // ascending-j scan commits to.
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(cand));
      b_matched |= uint64_t{1} << j;
      a_matched |= uint64_t{1} << i;
      ++matches;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (((a_matched >> i) & 1) == 0) continue;
    while (((b_matched >> j) & 1) == 0) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

}  // namespace

void LevenshteinBatchAvx512(std::string_view pattern,
                            const std::vector<std::string>& texts,
                            size_t* out) {
  const size_t m = pattern.size();
  alignas(64) uint64_t peq[256] = {};
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
  const __m512i last =
      _mm512_set1_epi64(static_cast<long long>(uint64_t{1} << (m - 1)));
  const __m512i one = _mm512_set1_epi64(1);

  std::vector<unsigned char> columns;  // column-major: byte of lane l at
                                       // column c lives at columns[c*8+l]
  alignas(64) uint64_t lens[8];
  alignas(64) uint64_t scores[8];

  for (size_t g = 0; g < texts.size(); g += 8) {
    const size_t lanes = std::min<size_t>(8, texts.size() - g);
    size_t max_len = 0;
    for (size_t l = 0; l < 8; ++l) {
      lens[l] = l < lanes ? texts[g + l].size() : 0;
      max_len = std::max<size_t>(max_len, lens[l]);
    }
    columns.assign(max_len * 8, 0);
    for (size_t l = 0; l < lanes; ++l) {
      const std::string& t = texts[g + l];
      for (size_t c = 0; c < t.size(); ++c) {
        columns[c * 8 + l] = static_cast<unsigned char>(t[c]);
      }
    }
    const __m512i lens_v =
        _mm512_load_si512(reinterpret_cast<const void*>(lens));
    __m512i pv = _mm512_set1_epi64(-1);
    __m512i mv = _mm512_setzero_si512();
    __m512i score = _mm512_set1_epi64(static_cast<long long>(m));
    // hout events are recorded as bits (one per column mod 64) and folded
    // into the scores with VPOPCNTQ once per 64 columns — cheaper than a
    // masked add + masked sub every column.
    __m512i plus_acc = _mm512_setzero_si512();
    __m512i minus_acc = _mm512_setzero_si512();
    for (size_t col = 0; col < max_len; ++col) {
      // A lane is active while this column is inside its text. Past the
      // end its state keeps evolving on padding bytes, but with hout
      // masked off below the garbage never reaches the score.
      const __mmask8 active = _mm512_cmpgt_epu64_mask(
          lens_v, _mm512_set1_epi64(static_cast<long long>(col)));
      const __m512i idx = _mm512_cvtepu8_epi64(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(columns.data() + col * 8)));
      const __m512i eq = _mm512_i64gather_epi64(idx, peq, 8);
      // Lane-wise Myers step: identical bit algebra to MyersSingleWord;
      // the block-carry add works per 64-bit lane, and GCC lowers the
      // 3-input or/not chains to vpternlogq (kOrNotOr).
      const __m512i xv = _mm512_or_epi64(eq, mv);
      const __m512i xh = _mm512_or_epi64(
          _mm512_xor_epi64(
              _mm512_add_epi64(_mm512_and_epi64(eq, pv), pv), pv),
          eq);
      __m512i ph = _mm512_ternarylogic_epi64(mv, xh, pv, kOrNotOr);
      __m512i mh = _mm512_and_epi64(pv, xh);
      const __mmask8 plus_m = _mm512_test_epi64_mask(ph, last) & active;
      const __mmask8 minus_m =
          _mm512_test_epi64_mask(mh, last) & active & ~plus_m;
      const __m512i col_bit = _mm512_set1_epi64(
          static_cast<long long>(uint64_t{1} << (col & 63)));
      plus_acc = _mm512_mask_or_epi64(plus_acc, plus_m, plus_acc, col_bit);
      minus_acc =
          _mm512_mask_or_epi64(minus_acc, minus_m, minus_acc, col_bit);
      if ((col & 63) == 63) {
        score = _mm512_add_epi64(score, _mm512_popcnt_epi64(plus_acc));
        score = _mm512_sub_epi64(score, _mm512_popcnt_epi64(minus_acc));
        plus_acc = _mm512_setzero_si512();
        minus_acc = _mm512_setzero_si512();
      }
      ph = _mm512_or_epi64(_mm512_slli_epi64(ph, 1), one);
      mh = _mm512_slli_epi64(mh, 1);
      pv = _mm512_ternarylogic_epi64(mh, xv, ph, kOrNotOr);
      mv = _mm512_and_epi64(ph, xv);
    }
    score = _mm512_add_epi64(score, _mm512_popcnt_epi64(plus_acc));
    score = _mm512_sub_epi64(score, _mm512_popcnt_epi64(minus_acc));
    _mm512_store_si512(reinterpret_cast<void*>(scores), score);
    for (size_t l = 0; l < lanes; ++l) {
      out[g + l] = static_cast<size_t>(scores[l]);
    }
  }
}

double JaroWinklerAvx512(std::string_view a, std::string_view b,
                         double prefix_scale) {
  const double jaro = JaroMasked(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX512
