#ifndef GTER_TEXT_NORMALIZER_H_
#define GTER_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace gter {

/// Options controlling textual normalization applied before tokenization.
struct NormalizerOptions {
  bool lowercase = true;
  /// Replace every non-alphanumeric byte with a space (so punctuation acts
  /// as a token separator). Digits are kept: model codes like "pslx350h"
  /// and phone numbers are the discriminative terms the paper relies on.
  bool strip_punctuation = true;
  /// Squeeze runs of whitespace into a single space and trim the ends.
  bool collapse_whitespace = true;
};

/// Applies the configured transformations to `text` and returns the result.
/// ASCII-only by design: the benchmark datasets are ASCII and the synthetic
/// generators emit ASCII.
std::string Normalize(std::string_view text, const NormalizerOptions& options);

/// Normalizes with default options.
std::string Normalize(std::string_view text);

}  // namespace gter

#endif  // GTER_TEXT_NORMALIZER_H_
