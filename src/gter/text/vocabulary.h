#ifndef GTER_TEXT_VOCABULARY_H_
#define GTER_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gter {

/// Dense integer id of an interned term. Term ids are contiguous in
/// [0, Vocabulary::size()).
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional string ↔ dense-id interner. Every record in a Dataset
/// stores TermIds rather than strings, which makes the bipartite graph and
/// ITER updates integer-indexed.
class Vocabulary {
 public:
  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidTermId when absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the string for a valid id.
  const std::string& TermOf(TermId id) const;

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace gter

#endif  // GTER_TEXT_VOCABULARY_H_
