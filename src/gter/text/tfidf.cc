#include "gter/text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "gter/common/status.h"

namespace gter {

void TfIdfModel::Build(const std::vector<std::vector<TermId>>& docs,
                       size_t vocab_size) {
  num_docs_ = docs.size();
  df_.assign(vocab_size, 0);
  for (const auto& doc : docs) {
    std::vector<TermId> unique(doc);
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (TermId t : unique) {
      GTER_CHECK(t < vocab_size);
      ++df_[t];
    }
  }
  vectors_.clear();
  vectors_.reserve(docs.size());
  for (const auto& doc : docs) {
    std::map<TermId, uint32_t> tf;
    for (TermId t : doc) ++tf[t];
    TfIdfVector vec;
    vec.terms.reserve(tf.size());
    vec.weights.reserve(tf.size());
    double norm_sq = 0.0;
    for (const auto& [t, count] : tf) {
      double w = static_cast<double>(count) * Idf(t);
      if (w <= 0.0) continue;
      vec.terms.push_back(t);
      vec.weights.push_back(w);
      norm_sq += w * w;
    }
    if (norm_sq > 0.0) {
      double inv = 1.0 / std::sqrt(norm_sq);
      for (auto& w : vec.weights) w *= inv;
    }
    vectors_.push_back(std::move(vec));
  }
}

double TfIdfModel::Idf(TermId t) const {
  GTER_CHECK(t < df_.size());
  if (df_[t] == 0) return 0.0;
  return std::log(static_cast<double>(num_docs_ + 1) /
                  static_cast<double>(df_[t]));
}

double TfIdfModel::Cosine(size_t doc_a, size_t doc_b) const {
  GTER_CHECK(doc_a < vectors_.size() && doc_b < vectors_.size());
  return SparseDot(vectors_[doc_a], vectors_[doc_b]);
}

double SparseDot(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.terms.size() && j < b.terms.size()) {
    if (a.terms[i] < b.terms[j]) {
      ++i;
    } else if (a.terms[i] > b.terms[j]) {
      ++j;
    } else {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return dot;
}

}  // namespace gter
