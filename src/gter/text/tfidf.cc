#include "gter/text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {

TfIdfModel::DocTf TfIdfModel::Compress(const std::vector<TermId>& doc) {
  std::vector<TermId> sorted(doc);
  std::sort(sorted.begin(), sorted.end());
  DocTf tf;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    tf.terms.push_back(sorted[i]);
    tf.counts.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }
  return tf;
}

void TfIdfModel::EnsureVocab(size_t vocab_size) {
  if (vocab_size > df_.size()) {
    df_.resize(vocab_size, 0);
    postings_.resize(vocab_size);
  }
}

void TfIdfModel::RebuildVector(size_t doc) {
  const DocTf& tf = docs_[doc];
  TfIdfVector vec;
  vec.terms.reserve(tf.terms.size());
  vec.weights.reserve(tf.terms.size());
  double norm_sq = 0.0;
  for (size_t i = 0; i < tf.terms.size(); ++i) {
    double w = static_cast<double>(tf.counts[i]) * Idf(tf.terms[i]);
    if (w <= 0.0) continue;
    vec.terms.push_back(tf.terms[i]);
    vec.weights.push_back(w);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& w : vec.weights) w *= inv;
  }
  vectors_[doc] = std::move(vec);
  vector_epoch_[doc] = num_docs_;
}

void TfIdfModel::RefreshSharers(const DocTf& tf, size_t self) {
  // A sharer can appear in several postings; a monotone high-water mark
  // over the (unsorted) postings would not dedup, so mark per refresh.
  std::vector<uint32_t> sharers;
  for (TermId t : tf.terms) {
    for (uint32_t d : postings_[t]) {
      if (d != self) sharers.push_back(d);
    }
  }
  std::sort(sharers.begin(), sharers.end());
  sharers.erase(std::unique(sharers.begin(), sharers.end()), sharers.end());
  for (uint32_t d : sharers) RebuildVector(d);
}

void TfIdfModel::Build(const std::vector<std::vector<TermId>>& docs,
                       size_t vocab_size) {
  num_docs_ = docs.size();
  df_.assign(vocab_size, 0);
  postings_.assign(vocab_size, {});
  docs_.clear();
  docs_.reserve(docs.size());
  alive_.assign(docs.size(), 1);
  vectors_.assign(docs.size(), {});
  vector_epoch_.assign(docs.size(), 0);
  for (size_t d = 0; d < docs.size(); ++d) {
    DocTf tf = Compress(docs[d]);
    for (TermId t : tf.terms) {
      GTER_CHECK(t < vocab_size);
      ++df_[t];
      postings_[t].push_back(static_cast<uint32_t>(d));
    }
    docs_.push_back(std::move(tf));
  }
  for (size_t d = 0; d < docs.size(); ++d) RebuildVector(d);
}

size_t TfIdfModel::AddDocument(const std::vector<TermId>& doc) {
  const size_t index = vectors_.size();
  DocTf tf = Compress(doc);
  if (!tf.terms.empty()) EnsureVocab(tf.terms.back() + 1);
  for (TermId t : tf.terms) {
    ++df_[t];
    postings_[t].push_back(static_cast<uint32_t>(index));
  }
  ++num_docs_;
  docs_.push_back(std::move(tf));
  vectors_.emplace_back();
  alive_.push_back(1);
  vector_epoch_.push_back(0);
  RebuildVector(index);
  RefreshSharers(docs_[index], index);
  return index;
}

void TfIdfModel::RemoveDocument(size_t doc) {
  GTER_CHECK(doc < vectors_.size() && alive_[doc]);
  DocTf tf = std::move(docs_[doc]);
  for (TermId t : tf.terms) {
    GTER_CHECK(df_[t] > 0);
    --df_[t];
    auto& posting = postings_[t];
    auto it = std::find(posting.begin(), posting.end(),
                        static_cast<uint32_t>(doc));
    GTER_CHECK(it != posting.end());
    *it = posting.back();
    posting.pop_back();
  }
  --num_docs_;
  docs_[doc] = {};
  vectors_[doc] = {};
  alive_[doc] = 0;
  RefreshSharers(tf, doc);
}

void TfIdfModel::RefreshVectors() {
  for (size_t d = 0; d < vectors_.size(); ++d) {
    if (alive_[d]) RebuildVector(d);
  }
}

size_t TfIdfModel::stale_docs() const {
  size_t stale = 0;
  for (size_t d = 0; d < vectors_.size(); ++d) {
    if (alive_[d] && vector_epoch_[d] != num_docs_) ++stale;
  }
  return stale;
}

double TfIdfModel::Idf(TermId t) const {
  GTER_CHECK(t < df_.size());
  if (df_[t] == 0) return 0.0;
  return std::log(static_cast<double>(num_docs_ + 1) /
                  static_cast<double>(df_[t]));
}

double TfIdfModel::Cosine(size_t doc_a, size_t doc_b) const {
  GTER_CHECK(doc_a < vectors_.size() && doc_b < vectors_.size());
  return SparseDot(vectors_[doc_a], vectors_[doc_b]);
}

double SparseDot(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.terms.size() && j < b.terms.size()) {
    if (a.terms[i] < b.terms[j]) {
      ++i;
    } else if (a.terms[i] > b.terms[j]) {
      ++j;
    } else {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return dot;
}

}  // namespace gter
