#ifndef GTER_TEXT_TFIDF_H_
#define GTER_TEXT_TFIDF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/text/vocabulary.h"

namespace gter {

/// Sparse TF-IDF vector: parallel arrays of term id and weight, sorted by
/// term id, L2-normalized.
struct TfIdfVector {
  std::vector<TermId> terms;
  std::vector<double> weights;
};

/// TF-IDF weighting model over a corpus of token lists (duplicates allowed —
/// term frequency is counted). IDF uses the smoothed form
/// `log((n + 1) / df(t))` that the TW-IDF baseline (Eq. 4) also uses.
///
/// The model is incrementally updatable (DESIGN.md §4g): `AddDocument` /
/// `RemoveDocument` keep the document frequencies, the document count and
/// the term → documents postings EXACT in O(|doc| + Σ affected postings),
/// and eagerly re-derive the vectors whose first-order inputs changed — the
/// touched document itself plus every document sharing a term with it
/// (their df, hence idf, moved). The second-order effect — the corpus size
/// `n` inside every idf — is left to drift on untouched documents and
/// re-synced by `RefreshVectors()`; `stale_docs()` counts how many
/// documents still carry an old-epoch idf, the escape-hatch signal.
class TfIdfModel {
 public:
  /// Builds document frequencies and per-document normalized vectors.
  /// `vocab_size` must be at least 1 + max term id appearing in `docs`.
  void Build(const std::vector<std::vector<TermId>>& docs, size_t vocab_size);

  /// Appends a document and returns its index. df/num_docs/postings update
  /// exactly; the new document's vector and every sharer's vector are
  /// recomputed under the current idf. Terms beyond the built vocab size
  /// grow the model (incremental vocabularies intern as records arrive).
  size_t AddDocument(const std::vector<TermId>& doc);

  /// Removes document `doc` (indices of other documents are stable — the
  /// slot becomes an empty tombstone excluded from df/num_docs/postings).
  /// Sharers' vectors are recomputed under the current idf.
  void RemoveDocument(size_t doc);

  /// Recomputes every live vector under the current df/num_docs — after
  /// this the model is bitwise a fresh Build over the live corpus.
  void RefreshVectors();

  /// Live documents (tombstones excluded).
  size_t num_docs() const { return num_docs_; }

  /// Total slots ever allocated (AddDocument indices are < this).
  size_t num_slots() const { return vectors_.size(); }

  /// True when `doc` has not been removed.
  bool alive(size_t doc) const { return alive_[doc]; }

  /// Documents whose cached vector predates the current corpus-size epoch
  /// (their idf scale is stale by the n-drift; df-induced changes are
  /// always applied eagerly). 0 right after Build/RefreshVectors.
  size_t stale_docs() const;

  /// Document frequency of a term (0 for unseen ids < vocab size).
  uint32_t DocFrequency(TermId t) const { return df_[t]; }

  /// Smoothed inverse document frequency `log((n + 1) / df)`; 0 when df==0.
  double Idf(TermId t) const;

  /// The L2-normalized TF-IDF vector of document `doc` (empty for
  /// tombstones).
  const TfIdfVector& VectorOf(size_t doc) const { return vectors_[doc]; }

  /// Cosine similarity between two documents of the corpus, in [0, 1].
  double Cosine(size_t doc_a, size_t doc_b) const;

 private:
  /// Term frequencies of one document, compressed (sorted unique terms +
  /// counts) — the raw material vector refreshes re-derive weights from.
  struct DocTf {
    std::vector<TermId> terms;
    std::vector<uint32_t> counts;
  };

  static DocTf Compress(const std::vector<TermId>& doc);
  void EnsureVocab(size_t vocab_size);
  /// Re-derives vectors_[doc] from docs_[doc] under the current idf.
  void RebuildVector(size_t doc);
  /// Recomputes every live document sharing a term with `tf`, except
  /// `self`.
  void RefreshSharers(const DocTf& tf, size_t self);

  size_t num_docs_ = 0;
  std::vector<uint32_t> df_;
  std::vector<TfIdfVector> vectors_;
  std::vector<DocTf> docs_;
  /// term → live documents containing it (unsorted; order is insertion
  /// order with swap-erase on removal).
  std::vector<std::vector<uint32_t>> postings_;
  std::vector<uint8_t> alive_;
  /// Per-doc: num_docs_ at the time the vector was last derived. A vector
  /// is stale when this differs from the current corpus size (n-drift).
  std::vector<uint64_t> vector_epoch_;
};

/// Dot product of two sparse vectors sorted by term id.
double SparseDot(const TfIdfVector& a, const TfIdfVector& b);

}  // namespace gter

#endif  // GTER_TEXT_TFIDF_H_
