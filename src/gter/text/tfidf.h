#ifndef GTER_TEXT_TFIDF_H_
#define GTER_TEXT_TFIDF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/text/vocabulary.h"

namespace gter {

/// Sparse TF-IDF vector: parallel arrays of term id and weight, sorted by
/// term id, L2-normalized.
struct TfIdfVector {
  std::vector<TermId> terms;
  std::vector<double> weights;
};

/// TF-IDF weighting model over a corpus of token lists (duplicates allowed —
/// term frequency is counted). IDF uses the smoothed form
/// `log((n + 1) / df(t))` that the TW-IDF baseline (Eq. 4) also uses.
class TfIdfModel {
 public:
  /// Builds document frequencies and per-document normalized vectors.
  /// `vocab_size` must be at least 1 + max term id appearing in `docs`.
  void Build(const std::vector<std::vector<TermId>>& docs, size_t vocab_size);

  /// Number of documents the model was built over.
  size_t num_docs() const { return num_docs_; }

  /// Document frequency of a term (0 for unseen ids < vocab size).
  uint32_t DocFrequency(TermId t) const { return df_[t]; }

  /// Smoothed inverse document frequency `log((n + 1) / df)`; 0 when df==0.
  double Idf(TermId t) const;

  /// The L2-normalized TF-IDF vector of document `doc`.
  const TfIdfVector& VectorOf(size_t doc) const { return vectors_[doc]; }

  /// Cosine similarity between two documents of the corpus, in [0, 1].
  double Cosine(size_t doc_a, size_t doc_b) const;

 private:
  size_t num_docs_ = 0;
  std::vector<uint32_t> df_;
  std::vector<TfIdfVector> vectors_;
};

/// Dot product of two sparse vectors sorted by term id.
double SparseDot(const TfIdfVector& a, const TfIdfVector& b);

}  // namespace gter

#endif  // GTER_TEXT_TFIDF_H_
