#ifndef GTER_TEXT_TOKENIZER_H_
#define GTER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "gter/text/normalizer.h"

namespace gter {

/// Options for whitespace tokenization applied after normalization.
struct TokenizerOptions {
  NormalizerOptions normalizer;
  /// Tokens shorter than this are dropped (single characters are almost
  /// always noise in the benchmark domains).
  size_t min_token_length = 1;
};

/// Splits `text` into normalized tokens.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options);

/// Tokenizes with default options.
std::vector<std::string> Tokenize(std::string_view text);

/// Character n-grams of `token` (used by approximate string metrics and by
/// the typo-robust feature extractors). Returns the token itself when it is
/// shorter than `n`.
std::vector<std::string> CharNgrams(std::string_view token, size_t n);

}  // namespace gter

#endif  // GTER_TEXT_TOKENIZER_H_
