#ifndef GTER_TEXT_STRING_METRICS_H_
#define GTER_TEXT_STRING_METRICS_H_

#include <cstddef>
#include <string>
#include <string>
#include <string_view>
#include <vector>

namespace gter {

/// Classic string metrics used by the distance-based baselines (§II-A of the
/// paper) and as features for the learning-based analogues.
///
/// All similarity functions return values in [0, 1]; distances return raw
/// edit counts.

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
/// Dispatches on the active SIMD level: `--simd=scalar` pins the classic
/// row DP (`LevenshteinDistanceDp`), anything above runs Myers' bit-parallel
/// algorithm (`LevenshteinDistanceMyers`). The two return identical
/// distances by construction — Myers computes the same DP, 64 cells per
/// word — which the "simd"-labelled property tests enforce over randomized
/// byte strings.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Classic row DP: O(|a|·|b|) time, O(min(|a|,|b|)) space. The scalar
/// reference implementation.
size_t LevenshteinDistanceDp(std::string_view a, std::string_view b);

/// Myers/Hyyrö bit-parallel edit distance: O(|a|·⌈|b|/64⌉) time. Matches
/// bytes (so it agrees with the DP on any input, UTF-8 included — both
/// count byte edits).
size_t LevenshteinDistanceMyers(std::string_view a, std::string_view b);

/// Batched Levenshtein: out[j] = LevenshteinDistance(a, b[j]), resized to
/// b.size(). Same per-pair dispatch as the single-shot entry point, plus an
/// AVX-512 tier that runs 8 candidates per __m512i through a lane-parallel
/// single-word Myers kernel when |a| ≤ 64 (the common case for record
/// fields). Edit distance is symmetric and every tier computes the exact
/// DP, so all tiers return identical integer distances.
void LevenshteinDistanceBatch(std::string_view a,
                              const std::vector<std::string>& b,
                              std::vector<size_t>* out);

/// 1 - distance / max(|a|, |b|); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity with prefix scale (default 0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Batched Jaro–Winkler: out[j] = JaroWinklerSimilarity(a, b[j]). One
/// internal match-flag scratch is reused across the whole batch, replacing
/// the two `vector<bool>` allocations the per-call entry point pays per
/// comparison. Results are bit-identical to the per-call function; this is
/// what the token-set metrics (Monge–Elkan, SoftTFIDF) and pair scoring
/// call in their best-match inner loops. `out` is resized to b.size().
void JaroWinklerSimilarityBatch(std::string_view a,
                                const std::vector<std::string>& b,
                                std::vector<double>* out,
                                double prefix_scale = 0.1);

/// Token-set Jaccard similarity |A∩B| / |A∪B|; 1.0 for two empty sets.
/// Token vectors MUST be sorted and deduplicated (Dataset stores them so).
double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b);

/// Overlap coefficient |A∩B| / min(|A|, |B|); tokens sorted & deduplicated.
double OverlapCoefficient(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b);

/// Dice coefficient 2|A∩B| / (|A|+|B|); tokens sorted & deduplicated.
double DiceCoefficient(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b);

/// Size of the intersection of two sorted, deduplicated id vectors.
size_t SortedIntersectionSize(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);

/// Intersection of two sorted, deduplicated id vectors.
std::vector<uint32_t> SortedIntersection(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b);

/// Jaccard over character 3-gram multisets of raw strings — a typo-robust
/// metric used in ML feature vectors.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Monge–Elkan hybrid similarity [Monge & Elkan 1996, the paper's ref 1]:
/// mean over tokens of `a` of the best Jaro–Winkler match in `b`,
/// symmetrized by averaging both directions. Tolerant of token reordering
/// and per-token typos. Returns 1 for two empty token lists.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// SoftTFIDF [Cohen, Ravikumar & Fienberg 2003, the paper's ref 15] —
/// the strongest name-matching metric of their comparison: a TF-IDF cosine
/// where tokens also match approximately (Jaro–Winkler above `theta`),
/// weighted by their similarity.
///
/// `weights_a`/`weights_b` are the normalized per-token TF-IDF weights
/// parallel to the token lists.
double SoftTfIdfSimilarity(const std::vector<std::string>& a,
                           const std::vector<double>& weights_a,
                           const std::vector<std::string>& b,
                           const std::vector<double>& weights_b,
                           double theta = 0.9);

namespace internal {
#if GTER_HAVE_AVX512
/// 8-lane batched single-word Myers (string_metrics_avx512.cc): texts
/// stream through one __m512i of per-lane DP states, eq words gathered from
/// a shared peq table, hout bits popcount-flushed into per-lane scores
/// (VPOPCNTQ). Requires 1 ≤ |pattern| ≤ 64; texts of any length (a lane
/// goes inactive past its text's end). Writes texts.size() exact distances
/// to `out`.
void LevenshteinBatchAvx512(std::string_view pattern,
                            const std::vector<std::string>& texts,
                            size_t* out);

/// Mask-parallel Jaro–Winkler (string_metrics_avx512.cc): `b` lives in one
/// byte-masked zmm, each a[i] scans its match window with a 64-bit compare
/// mask, and the first unmatched equal char falls out of a tzcnt — the same
/// (i, j) pairing as the scalar window walk, so the result is bit-identical
/// to JaroWinklerSimilarity. Requires |a| ≤ 64 and |b| ≤ 64.
double JaroWinklerAvx512(std::string_view a, std::string_view b,
                         double prefix_scale);
#endif
}  // namespace internal

}  // namespace gter

#endif  // GTER_TEXT_STRING_METRICS_H_
