#include "gter/text/tokenizer.h"

#include <sstream>

namespace gter {

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::string normalized = Normalize(text, options.normalizer);
  std::vector<std::string> tokens;
  std::istringstream stream(normalized);
  std::string token;
  while (stream >> token) {
    if (token.size() >= options.min_token_length) {
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

std::vector<std::string> Tokenize(std::string_view text) {
  return Tokenize(text, TokenizerOptions{});
}

std::vector<std::string> CharNgrams(std::string_view token, size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  if (token.size() <= n) {
    grams.emplace_back(token);
    return grams;
  }
  grams.reserve(token.size() - n + 1);
  for (size_t i = 0; i + n <= token.size(); ++i) {
    grams.emplace_back(token.substr(i, n));
  }
  return grams;
}

}  // namespace gter
