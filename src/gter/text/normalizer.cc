#include "gter/text/normalizer.h"

#include <cctype>

namespace gter {

std::string Normalize(std::string_view text, const NormalizerOptions& options) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (options.lowercase) c = static_cast<unsigned char>(std::tolower(c));
    if (options.strip_punctuation && !std::isalnum(c)) c = ' ';
    out.push_back(static_cast<char>(c));
  }
  if (options.collapse_whitespace) {
    std::string squeezed;
    squeezed.reserve(out.size());
    bool in_space = true;  // trims leading whitespace
    for (char c : out) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) squeezed.push_back(' ');
        in_space = true;
      } else {
        squeezed.push_back(c);
        in_space = false;
      }
    }
    while (!squeezed.empty() && squeezed.back() == ' ') squeezed.pop_back();
    out = std::move(squeezed);
  }
  return out;
}

std::string Normalize(std::string_view text) {
  return Normalize(text, NormalizerOptions{});
}

}  // namespace gter
