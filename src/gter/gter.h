#ifndef GTER_GTER_H_
#define GTER_GTER_H_

/// \file
/// Umbrella header for the gter library — a from-scratch C++20
/// implementation of "A Graph-Theoretic Fusion Framework for Unsupervised
/// Entity Resolution" (ICDE 2018): the ITER + CliqueRank fusion pipeline,
/// every baseline the paper evaluates against, the evaluation protocol,
/// and synthetic benchmark generators.
///
/// Quickstart:
///
///   gter::GeneratedDataset data =
///       gter::GenerateBenchmark(gter::BenchmarkKind::kRestaurant);
///   gter::RemoveFrequentTerms(&data.dataset);
///   gter::FusionPipeline pipeline(data.dataset, gter::FusionConfig{});
///   gter::FusionResult result = pipeline.Run().value();
///   // result.matches[p] — decision for candidate pair p
///   // result.pair_probability[p] — matching probability in [0, 1]
///
/// Stage entry points take a gter::ExecContext (worker pool, metrics and
/// trace sinks, SIMD level, cancellation token); the default context runs
/// sequentially with ambient observability and no cancellation.

#include "gter/common/common_flags.h"
#include "gter/common/cpu.h"
#include "gter/common/exec_context.h"
#include "gter/common/flags.h"
#include "gter/common/json.h"
#include "gter/common/logging.h"
#include "gter/common/metrics.h"
#include "gter/common/prom.h"
#include "gter/common/random.h"
#include "gter/common/run_report.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/common/timer.h"
#include "gter/common/trace.h"

#include "gter/text/normalizer.h"
#include "gter/text/string_metrics.h"
#include "gter/text/tfidf.h"
#include "gter/text/tokenizer.h"
#include "gter/text/vocabulary.h"

#include "gter/matrix/csr_matrix.h"
#include "gter/matrix/dense_matrix.h"
#include "gter/matrix/gemm.h"
#include "gter/matrix/masked_multiply.h"

#include "gter/er/blocking.h"
#include "gter/er/csv.h"
#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"
#include "gter/er/pair_space.h"
#include "gter/er/preprocess.h"
#include "gter/er/record.h"

#include "gter/graph/bipartite_graph.h"
#include "gter/graph/dynamic_bipartite.h"
#include "gter/graph/connected_components.h"
#include "gter/graph/pagerank.h"
#include "gter/graph/record_graph.h"
#include "gter/graph/term_graph.h"
#include "gter/graph/union_find.h"

#include "gter/datagen/datagen.h"
#include "gter/datagen/noise.h"
#include "gter/datagen/paper_gen.h"
#include "gter/datagen/product_gen.h"
#include "gter/datagen/restaurant_gen.h"
#include "gter/datagen/vocab_bank.h"

#include "gter/eval/cluster_metrics.h"
#include "gter/eval/confusion.h"
#include "gter/eval/pr_curve.h"
#include "gter/eval/spearman.h"
#include "gter/eval/term_score.h"
#include "gter/eval/threshold_sweep.h"

#include "gter/baselines/edit_distance_resolver.h"
#include "gter/baselines/hybrid.h"
#include "gter/baselines/jaccard_resolver.h"
#include "gter/baselines/simrank.h"
#include "gter/baselines/tfidf_resolver.h"
#include "gter/baselines/twidf_pagerank.h"
#include "gter/baselines/ml/bootstrap_gmm.h"
#include "gter/baselines/ml/features.h"
#include "gter/baselines/ml/fellegi_sunter.h"
#include "gter/baselines/ml/gmm.h"
#include "gter/baselines/ml/linear_svm.h"
#include "gter/baselines/crowd/acd.h"
#include "gter/baselines/crowd/crowder.h"
#include "gter/baselines/crowd/gcer.h"
#include "gter/baselines/crowd/oracle.h"
#include "gter/baselines/crowd/power_plus.h"
#include "gter/baselines/crowd/transm.h"

#include "gter/core/cliquerank.h"
#include "gter/core/clusterer.h"
#include "gter/core/correlation_clustering.h"
#include "gter/core/fusion.h"
#include "gter/core/iter.h"
#include "gter/core/iter_matrix.h"
#include "gter/core/model_io.h"
#include "gter/core/progressive.h"
#include "gter/core/resolver.h"
#include "gter/core/resolver_state.h"
#include "gter/core/rss.h"

#include "gter/server/client.h"
#include "gter/server/protocol.h"
#include "gter/server/server.h"
#include "gter/server/service.h"

#endif  // GTER_GTER_H_
