#include "gter/datagen/product_gen.h"

#include <algorithm>
#include <unordered_set>

#include "gter/common/status.h"
#include "gter/datagen/vocab_bank.h"

namespace gter {
namespace {

struct ProductEntity {
  std::string brand;
  std::string series;  // semi-discriminative product-line word
  std::string model;   // unique across entities
  std::string category;
  std::vector<std::string> adjectives;
  /// Description phrasing both shops share for this product ("stainless
  /// steel finish", "energy star"). Real cross-shop listings overlap on a
  /// sizable part of their wording; without this, synthetic matches would
  /// share only the name tokens and the learned similarity would have far
  /// less margin than on real Abt-Buy text.
  std::vector<std::string> description_core;
};

/// Shared pools for entity construction. The `series` word ("bravia",
/// "viera") is the mid-frequency discriminative signal real product names
/// carry beyond the unique model code: when a listing omits the model —
/// which Abt-Buy listings frequently do — brand+series+category is what a
/// matcher can still learn from. One series covers ~4 entities.
struct ProductFactory {
  std::vector<std::string> series_pool;
  /// Description vocabulary: the 40 stock words plus a generated pool
  /// sized to the dataset. Real listing descriptions draw on thousands of
  /// distinct mid-frequency words; with a tiny vocabulary every word's
  /// pair count P_t explodes and Eq. 6 crushes its weight to nothing, so
  /// shared descriptions would carry no matching evidence at all.
  std::vector<std::string> common_pool;

  ProductFactory(size_t num_entities, Rng* rng) {
    std::unordered_set<std::string> used;
    size_t want = num_entities / 2 + 2;
    series_pool.reserve(want);
    while (series_pool.size() < want) {
      std::string w = VocabBank::MakeSurname(rng);
      if (used.insert(w).second) series_pool.push_back(w);
    }
    common_pool = VocabBank::ProductCommonWords();
    size_t want_common = common_pool.size() + num_entities / 2;
    while (common_pool.size() < want_common) {
      std::string w = VocabBank::MakeSurname(rng);
      if (used.insert(w).second) common_pool.push_back(w);
    }
  }

  ProductEntity Make(Rng* rng, std::unordered_set<std::string>* used_models) {
    ProductEntity e;
    const auto& brands = VocabBank::Brands();
    e.brand = brands[rng->NextBounded(brands.size())];
    e.series = series_pool[rng->NextBounded(series_pool.size())];
    do {
      e.model = VocabBank::MakeModelCode(rng);
    } while (!used_models->insert(e.model).second);
    const auto& categories = VocabBank::ProductCategories();
    e.category = categories[rng->NextBounded(categories.size())];
    const auto& adjectives = VocabBank::ProductAdjectives();
    size_t count = 1 + rng->NextBounded(2);
    for (size_t i = 0; i < count; ++i) {
      e.adjectives.push_back(adjectives[rng->NextBounded(adjectives.size())]);
    }
    size_t core = 5 + rng->NextBounded(4);
    for (size_t i = 0; i < core; ++i) {
      e.description_core.push_back(
          common_pool[rng->NextBounded(common_pool.size())]);
    }
    return e;
  }
};

/// Renders one record for a source. The two sources use independent random
/// description words so matching records overlap mainly on brand + model +
/// category — the discriminative core — and the model code itself is
/// missing from a listing with `model_drop_prob` (as in real Abt-Buy).
void EmitRecord(const ProductEntity& e, uint32_t source,
                const std::vector<std::string>& common_pool,
                double model_drop_prob, const NoiseOptions& noise, Rng* rng,
                Dataset* dataset) {
  std::vector<std::string> tokens;
  tokens.push_back(e.brand);
  tokens.push_back(e.series);
  if (!rng->Bernoulli(model_drop_prob)) {
    std::string model = e.model;
    if (rng->Bernoulli(0.02)) model = InjectTypo(model, rng);
    tokens.push_back(model);
  }
  tokens.push_back(e.category);
  for (const auto& adj : e.adjectives) {
    if (rng->Bernoulli(0.7)) tokens.push_back(adj);
  }
  // Shared phrasing: each core description word survives in a given
  // listing with probability 0.65, so matched listings overlap on ~3–5 of
  // them while unrelated listings only collide by chance.
  for (const auto& word : e.description_core) {
    if (rng->Bernoulli(0.65)) tokens.push_back(word);
  }
  // Long, shop-specific marketing copy: the Abt side writes paragraphs,
  // the Buy side a sentence or two. These unshared words are what pushes
  // the Jaccard similarity of true matches down into the noise range on
  // the real Abt-Buy data (the paper's Jaccard row is only 0.332 there).
  size_t extra = (source == 0 ? 12 : 4) + rng->NextBounded(source == 0 ? 8 : 4);
  for (size_t i = 0; i < extra; ++i) {
    tokens.push_back(common_pool[rng->NextBounded(common_pool.size())]);
  }
  std::vector<std::string> noisy = ApplyNoise(tokens, noise, rng);
  std::string name = e.brand + " " + e.series + " " + e.model + " " + e.category;
  dataset->AddRecord(source, JoinTokens(noisy), {name});
}

}  // namespace

GeneratedDataset GenerateProduct(const ProductGenConfig& config) {
  GTER_CHECK(config.num_source0 >= 2 && config.num_source1 >= 2);
  Rng rng(config.seed);
  Dataset dataset("Product", /*num_sources=*/2);
  std::vector<EntityId> entity_of;
  std::unordered_set<std::string> used_models;

  // Decompose the match count into entities with (1 abt, 1 buy) records —
  // X of them — and entities with (1 abt, 2 buy) — Y of them — so that
  // X + 2Y = num_matches while fitting in both sources (the real Abt-Buy
  // has more matches than Abt records because some products appear twice
  // on the Buy side).
  size_t x = config.num_matches;
  size_t y = 0;
  while (x + y + 5 > config.num_source0 && x >= 2) {
    x -= 2;
    y += 1;
  }
  GTER_CHECK(x + 2 * y == config.num_matches);
  GTER_CHECK(x + 2 * y <= config.num_source1);
  const size_t abt_matched = x + y;
  const size_t buy_matched = x + 2 * y;
  const size_t abt_singles = config.num_source0 - abt_matched;
  const size_t buy_singles = config.num_source1 - buy_matched;

  EntityId next_entity = 0;
  struct Pending {
    ProductEntity entity;
    EntityId id;
    size_t buy_copies;  // 0 for a buy-side singleton's abt? see below
    bool has_abt;
  };
  const size_t num_entities = x + y + abt_singles + buy_singles;
  ProductFactory factory(num_entities, &rng);
  std::vector<Pending> plan;
  for (size_t i = 0; i < x; ++i) {
    plan.push_back({factory.Make(&rng, &used_models), next_entity++, 1, true});
  }
  for (size_t i = 0; i < y; ++i) {
    plan.push_back({factory.Make(&rng, &used_models), next_entity++, 2, true});
  }
  for (size_t i = 0; i < abt_singles; ++i) {
    plan.push_back({factory.Make(&rng, &used_models), next_entity++, 0, true});
  }
  for (size_t i = 0; i < buy_singles; ++i) {
    plan.push_back({factory.Make(&rng, &used_models), next_entity++, 1, false});
  }
  rng.Shuffle(&plan);

  for (const Pending& p : plan) {
    if (p.has_abt) {
      EmitRecord(p.entity, /*source=*/0, factory.common_pool,
                 config.model_drop_prob, config.noise, &rng, &dataset);
      entity_of.push_back(p.id);
    }
    for (size_t c = 0; c < p.buy_copies; ++c) {
      EmitRecord(p.entity, /*source=*/1, factory.common_pool,
                 config.model_drop_prob, config.noise, &rng, &dataset);
      entity_of.push_back(p.id);
    }
  }
  return {std::move(dataset), GroundTruth(std::move(entity_of))};
}

}  // namespace gter
