#include "gter/datagen/paper_gen.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"
#include "gter/datagen/vocab_bank.h"

namespace gter {
namespace {

struct PaperEntity {
  std::vector<std::string> author_surnames;  // 1–3
  std::vector<char> author_initials;         // parallel
  std::vector<std::string> title;            // 5–8 words
  std::string venue;
  std::string year;
};

PaperEntity MakeEntity(Rng* rng) {
  PaperEntity e;
  size_t num_authors = 1 + rng->NextBounded(3);
  for (size_t i = 0; i < num_authors; ++i) {
    e.author_surnames.push_back(VocabBank::MakeSurname(rng));
    e.author_initials.push_back(
        static_cast<char>('a' + rng->NextBounded(26)));
  }
  const auto& topics = VocabBank::TitleTopicWords();
  const auto& fillers = VocabBank::TitleFillerWords();
  // Long titles (9–14 words) give candidate pairs diverse overlap counts.
  // That diversity matters: identical overlap compositions produce exactly
  // tied edge weights, and CliqueRank's boosted walk saturates every tied
  // row-maximum edge — real citation text never ties this way.
  size_t title_len = 9 + rng->NextBounded(6);
  for (size_t i = 0; i < title_len; ++i) {
    if (i % 2 == 0) {
      e.title.push_back(topics[rng->NextBounded(topics.size())]);
    } else {
      e.title.push_back(fillers[rng->NextBounded(fillers.size())]);
    }
  }
  const auto& venues = VocabBank::VenueWords();
  e.venue = venues[rng->NextBounded(venues.size())];
  e.year = std::to_string(1985 + rng->NextBounded(16));
  return e;
}

/// Renders one citation string of the entity with the usual bibliography
/// variation: author format, title noise, venue context, optional year.
void EmitRecord(const PaperEntity& e, const NoiseOptions& noise, Rng* rng,
                Dataset* dataset) {
  std::vector<std::string> tokens;
  // Author list; the surname is the stable anchor, the rendering varies.
  size_t author_format = rng->NextBounded(3);
  for (size_t i = 0; i < e.author_surnames.size(); ++i) {
    std::string surname = e.author_surnames[i];
    if (rng->Bernoulli(noise.typo_prob)) surname = InjectTypo(surname, rng);
    std::string initial(1, e.author_initials[i]);
    switch (author_format) {
      case 0:
        tokens.push_back(initial);
        tokens.push_back(surname);
        break;
      case 1:
        tokens.push_back(surname);
        tokens.push_back(initial);
        break;
      default:
        tokens.push_back(surname);  // surname only
        break;
    }
  }
  // Title, possibly truncated ("..." style citations) and noisy.
  std::vector<std::string> title = e.title;
  if (rng->Bernoulli(0.15) && title.size() > 4) {
    title.resize(4 + rng->NextBounded(title.size() - 4));
  }
  title = ApplyNoise(title, noise, rng);
  tokens.insert(tokens.end(), title.begin(), title.end());
  // Venue with optional boilerplate context.
  static const std::vector<std::string> kContext = {
      "proceedings", "international", "conference", "workshop", "journal"};
  if (rng->Bernoulli(0.5)) {
    size_t count = 1 + rng->NextBounded(2);
    for (size_t i = 0; i < count; ++i) {
      tokens.push_back(kContext[rng->NextBounded(kContext.size())]);
    }
  }
  tokens.push_back(e.venue);
  if (rng->Bernoulli(0.8)) tokens.push_back(e.year);

  std::string author_field = JoinTokens(
      std::vector<std::string>(e.author_surnames.begin(),
                               e.author_surnames.end()));
  dataset->AddRecord(0, JoinTokens(tokens),
                     {author_field, JoinTokens(e.title), e.venue, e.year});
}

/// Cluster sizes: the largest is `largest`, big-cluster sizes decay as a
/// power law down to 3, and the remaining mass is 1–2 record clusters.
std::vector<size_t> PlanClusterSizes(const PaperGenConfig& config, Rng* rng) {
  std::vector<size_t> sizes;
  size_t total = 0;
  for (size_t i = 0; i < config.num_big_clusters; ++i) {
    double raw = static_cast<double>(config.largest_cluster) *
                 std::pow(static_cast<double>(i + 1), -config.size_exponent);
    size_t size = std::max<size_t>(3, static_cast<size_t>(std::llround(raw)));
    if (total + size > config.num_records) break;
    sizes.push_back(size);
    total += size;
  }
  // Fill the remainder with small clusters, mostly of size 2: Cora-style
  // bibliography benchmarks have almost no singleton citations — a highly
  // cited paper is cited (and mis-rendered) repeatedly. This matters
  // algorithmically: a record whose row maximum is a true match edge
  // suppresses all its weak edges under the α-powered transitions, so few
  // singletons ⇒ few saturated false positives.
  while (total < config.num_records) {
    size_t remaining = config.num_records - total;
    size_t size = (remaining >= 2 && rng->Bernoulli(0.9)) ? 2 : 1;
    sizes.push_back(size);
    total += size;
  }
  GTER_CHECK(total == config.num_records);
  return sizes;
}

}  // namespace

GeneratedDataset GeneratePaper(const PaperGenConfig& config) {
  GTER_CHECK(config.num_records >= config.largest_cluster);
  Rng rng(config.seed);
  Dataset dataset("Paper", /*num_sources=*/1);

  std::vector<size_t> sizes = PlanClusterSizes(config, &rng);
  // Emit records in shuffled order so cluster membership is not contiguous
  // in record ids.
  std::vector<EntityId> emission;  // one slot per record, holding entity id
  for (EntityId e = 0; e < sizes.size(); ++e) {
    for (size_t k = 0; k < sizes[e]; ++k) emission.push_back(e);
  }
  rng.Shuffle(&emission);

  std::vector<PaperEntity> entities;
  entities.reserve(sizes.size());
  for (size_t e = 0; e < sizes.size(); ++e) entities.push_back(MakeEntity(&rng));

  std::vector<EntityId> entity_of;
  entity_of.reserve(emission.size());
  for (EntityId e : emission) {
    EmitRecord(entities[e], config.noise, &rng, &dataset);
    entity_of.push_back(e);
  }
  return {std::move(dataset), GroundTruth(std::move(entity_of))};
}

}  // namespace gter
