#ifndef GTER_DATAGEN_NOISE_H_
#define GTER_DATAGEN_NOISE_H_

#include <string>
#include <vector>

#include "gter/common/random.h"

namespace gter {

/// Noise model shared by the synthetic generators: the corruption types the
/// real benchmark datasets exhibit (typos, abbreviations, dropped tokens,
/// case/punctuation differences handled upstream by the normalizer).
struct NoiseOptions {
  /// Probability of injecting one random edit (substitute/insert/delete/
  /// transpose) into a word.
  double typo_prob = 0.08;
  /// Probability of replacing a word by its 3–4 letter prefix
  /// (abbreviation, e.g. "proceedings" → "proc").
  double abbreviate_prob = 0.05;
  /// Probability of dropping a token entirely.
  double drop_prob = 0.05;
};

/// Applies one random character edit to `word` (uniform over substitution,
/// insertion, deletion, adjacent transposition). Single-character words are
/// only ever substituted.
std::string InjectTypo(const std::string& word, Rng* rng);

/// Truncates `word` to a 3–4 character prefix when longer; otherwise
/// returns it unchanged.
std::string Abbreviate(const std::string& word, Rng* rng);

/// Applies the noise model to every token independently; dropped tokens
/// are removed. Never returns an empty vector — the first token survives
/// when everything else was dropped.
std::vector<std::string> ApplyNoise(const std::vector<std::string>& tokens,
                                    const NoiseOptions& options, Rng* rng);

/// Joins tokens with single spaces.
std::string JoinTokens(const std::vector<std::string>& tokens);

}  // namespace gter

#endif  // GTER_DATAGEN_NOISE_H_
