#ifndef GTER_DATAGEN_VOCAB_BANK_H_
#define GTER_DATAGEN_VOCAB_BANK_H_

#include <string>
#include <vector>

#include "gter/common/random.h"

namespace gter {

/// Word banks for the synthetic benchmark generators. Each accessor returns
/// a stable list; the Make* helpers synthesize pseudo-words (names, model
/// codes) deterministically from the caller's Rng so arbitrarily large
/// vocabularies are available without shipping data files.
class VocabBank {
 public:
  // -- Restaurant domain -------------------------------------------------
  static const std::vector<std::string>& RestaurantNameWords();
  static const std::vector<std::string>& Cuisines();
  static const std::vector<std::string>& StreetNames();
  static const std::vector<std::string>& StreetSuffixes();  // full forms
  static const std::vector<std::string>& Cities();

  // -- Product domain ----------------------------------------------------
  static const std::vector<std::string>& Brands();
  static const std::vector<std::string>& ProductCategories();
  static const std::vector<std::string>& ProductAdjectives();
  static const std::vector<std::string>& ProductCommonWords();

  // -- Paper (bibliography) domain ----------------------------------------
  static const std::vector<std::string>& TitleTopicWords();
  static const std::vector<std::string>& TitleFillerWords();
  static const std::vector<std::string>& VenueWords();

  /// Canonical abbreviation of a full street suffix ("street" → "st").
  static std::string AbbreviateStreetSuffix(const std::string& suffix);

  /// Synthesizes a pronounceable surname from syllables ("kovalen",
  /// "martez", ...). Deterministic in the Rng state.
  static std::string MakeSurname(Rng* rng);

  /// Synthesizes a product model code like "pslx350h" or "tu1500rd":
  /// 2–4 lowercase letters, 2–4 digits, 0–2 trailing letters.
  static std::string MakeModelCode(Rng* rng);

  /// Synthesizes a 10-digit phone number rendered as one token.
  static std::string MakePhone(Rng* rng);
};

}  // namespace gter

#endif  // GTER_DATAGEN_VOCAB_BANK_H_
