#ifndef GTER_DATAGEN_RESTAURANT_GEN_H_
#define GTER_DATAGEN_RESTAURANT_GEN_H_

#include <cstdint>

#include "gter/datagen/datagen.h"
#include "gter/datagen/noise.h"

namespace gter {

/// Restaurant-like benchmark: a single-source dataset of restaurant records
/// (name + address + city + phone + cuisine) where a minority of entities
/// appear twice with surface variations — mirroring the Fodors/Zagat
/// Restaurant dataset (858 records, 106 duplicate pairs). The 10-digit
/// phone token is the discriminative anchor, as in the paper's motivation.
struct RestaurantGenConfig {
  size_t num_records = 858;
  size_t num_duplicate_pairs = 106;
  uint64_t seed = 2018;
  /// Probability that a new restaurant is a franchise sibling of an
  /// earlier one — same name and cuisine, different address and phone.
  /// These are the benchmark's hard non-matches: high textual similarity,
  /// different entity.
  double franchise_prob = 0.2;
  NoiseOptions noise{/*typo_prob=*/0.15, /*abbreviate_prob=*/0.12,
                     /*drop_prob=*/0.18};
};

GeneratedDataset GenerateRestaurant(const RestaurantGenConfig& config = {});

}  // namespace gter

#endif  // GTER_DATAGEN_RESTAURANT_GEN_H_
