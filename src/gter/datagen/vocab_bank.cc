#include "gter/datagen/vocab_bank.h"

namespace gter {

const std::vector<std::string>& VocabBank::RestaurantNameWords() {
  static const std::vector<std::string> kWords = {
      "golden",  "dragon",   "palace",   "garden",  "house",    "grill",
      "corner",  "blue",     "ocean",    "star",    "royal",    "little",
      "lucky",   "red",      "lantern",  "bistro",  "cafe",     "kitchen",
      "tavern",  "villa",    "casa",     "chez",    "bella",    "luna",
      "sunset",  "harbor",   "spice",    "pepper",  "olive",    "maple",
      "cedar",   "willow",   "brass",    "copper",  "silver",   "ivory",
      "jade",    "bamboo",   "lotus",    "tokyo",   "kyoto",    "napoli",
      "roma",    "verona",   "paris",    "lyon",    "havana",   "bombay",
      "saigon",  "seoul",    "athens",   "vienna",  "prague",   "lisbon",
      "empire",  "union",    "liberty",  "pioneer", "heritage", "village",
      "mission", "plaza",    "terrace",  "summit",  "canyon",   "lakeside",
      "midtown", "uptown",   "downtown", "old",     "grand",    "royale",
      "prime",   "classic",  "original", "famous",  "mama",     "papa",
      "uncle",   "brothers", "sisters",  "twins",   "crown",    "anchor",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::Cuisines() {
  static const std::vector<std::string> kWords = {
      "american", "italian",   "french",        "chinese",  "japanese",
      "thai",     "mexican",   "indian",        "greek",    "spanish",
      "korean",   "vietnamese", "mediterranean", "cajun",    "seafood",
      "steakhouse", "barbecue", "vegetarian",    "fusion",   "continental",
      "delicatessen", "diner",  "pizzeria",      "sushi",    "noodles",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::StreetNames() {
  static const std::vector<std::string> kWords = {
      "main",       "oak",      "pine",      "maple",    "cedar",
      "elm",        "washington", "lincoln",  "jefferson", "madison",
      "franklin",   "broadway", "sunset",    "wilshire", "melrose",
      "ventura",    "colorado", "pacific",   "atlantic", "ocean",
      "park",       "lake",     "river",     "hill",     "valley",
      "spring",     "church",   "market",    "canal",    "union",
      "highland",   "fairfax",  "labrea",    "pico",     "olympic",
      "santa",      "monica",   "beverly",   "robertson", "doheny",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::StreetSuffixes() {
  static const std::vector<std::string> kWords = {
      "street", "avenue", "boulevard", "drive", "road", "lane", "place",
      "court",  "way",    "circle",
  };
  return kWords;
}

std::string VocabBank::AbbreviateStreetSuffix(const std::string& suffix) {
  if (suffix == "street") return "st";
  if (suffix == "avenue") return "ave";
  if (suffix == "boulevard") return "blvd";
  if (suffix == "drive") return "dr";
  if (suffix == "road") return "rd";
  if (suffix == "lane") return "ln";
  if (suffix == "place") return "pl";
  if (suffix == "court") return "ct";
  if (suffix == "way") return "wy";
  if (suffix == "circle") return "cir";
  return suffix;
}

const std::vector<std::string>& VocabBank::Cities() {
  static const std::vector<std::string> kWords = {
      "losangeles", "hollywood", "pasadena",  "burbank",   "glendale",
      "santamonica", "venice",   "culvercity", "westwood", "brentwood",
      "sherman",    "studiocity", "encino",    "tarzana",  "newyork",
      "brooklyn",   "queens",    "manhattan",  "atlanta",  "marietta",
      "decatur",    "buckhead",  "sanfrancisco", "oakland", "berkeley",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::Brands() {
  static const std::vector<std::string> kWords = {
      "sony",      "samsung",  "panasonic", "toshiba",  "philips",
      "sharp",     "sanyo",    "jvc",       "pioneer",  "kenwood",
      "yamaha",    "onkyo",    "denon",     "bose",     "klipsch",
      "logitech",  "canon",    "nikon",     "olympus",  "kodak",
      "garmin",    "tomtom",   "motorola",  "nokia",    "siemens",
      "whirlpool", "frigidaire", "maytag",   "hoover",   "dyson",
      "braun",     "krups",    "cuisinart", "delonghi", "hamilton",
      "haier",     "lg",       "vizio",     "polk",     "sennheiser",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::ProductCategories() {
  static const std::vector<std::string> kWords = {
      "television", "camcorder", "receiver",  "speaker",   "headphones",
      "refrigerator", "microwave", "dishwasher", "washer",  "dryer",
      "vacuum",     "blender",   "toaster",   "grinder",   "espresso",
      "telephone",  "keyboard",  "monitor",   "printer",   "scanner",
      "radio",      "turntable", "subwoofer", "amplifier", "projector",
      "navigation", "camera",    "lens",      "tripod",    "flash",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::ProductAdjectives() {
  static const std::vector<std::string> kWords = {
      "black",    "white",   "silver",  "stainless", "compact",
      "portable", "digital", "wireless", "bluetooth", "rechargeable",
      "automatic", "programmable", "professional", "premium", "deluxe",
      "slim",     "widescreen", "highdefinition", "energy", "quiet",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::ProductCommonWords() {
  static const std::vector<std::string> kWords = {
      "inch",     "series",   "system",   "home",     "theater",
      "channel",  "watt",     "remote",   "control",  "player",
      "recorder", "display",  "screen",   "panel",    "cycle",
      "capacity", "stainless", "steel",   "finish",   "color",
      "pack",     "kit",      "bundle",   "edition",  "model",
      "video",    "audio",    "stereo",   "surround", "sound",
      "power",    "battery",  "charger",  "adapter",  "cable",
      "warranty", "includes", "features", "technology", "performance",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::TitleTopicWords() {
  static const std::vector<std::string> kWords = {
      "learning",   "reasoning",  "inference",   "classification",
      "clustering", "retrieval",  "recognition", "optimization",
      "estimation", "prediction", "generalization", "induction",
      "bayesian",   "markov",     "neural",      "genetic",
      "reinforcement", "supervised", "probabilistic", "stochastic",
      "decision",   "boosting",   "bagging",     "pruning",
      "sampling",   "regression", "kernels",     "margins",
      "gradient",   "entropy",    "likelihood",  "posterior",
      "hidden",     "latent",     "temporal",    "spatial",
      "relational", "structural", "hierarchical", "adaptive",
      "incremental", "online",    "parallel",    "distributed",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::TitleFillerWords() {
  static const std::vector<std::string> kWords = {
      "networks", "models",    "methods",   "algorithms", "systems",
      "approach", "framework", "analysis",  "theory",     "applications",
      "trees",    "machines",  "agents",    "programs",   "features",
      "functions", "bounds",   "complexity", "experiments", "evaluation",
  };
  return kWords;
}

const std::vector<std::string>& VocabBank::VenueWords() {
  static const std::vector<std::string> kWords = {
      "icml",  "nips",  "aaai",  "ijcai", "uai",    "colt",
      "kdd",   "sigir", "acl",   "emnlp", "icdm",   "ecml",
      "jmlr",  "mlj",   "aij",   "jair",  "pami",   "tkde",
  };
  return kWords;
}

std::string VocabBank::MakeSurname(Rng* rng) {
  static const std::vector<std::string> kOnsets = {
      "ka", "ko", "mi", "ma", "ta", "to", "ri", "ro", "sa", "se",
      "la", "le", "na", "no", "ha", "he", "va", "ve", "du", "de",
      "ba", "be", "ga", "go", "pa", "pe", "cha", "shi", "zhu", "wei"};
  static const std::vector<std::string> kMiddles = {
      "val", "ren", "mor", "lan", "ber", "ker", "min", "tar", "son", "ler",
      "mar", "nov", "rek", "lin", "dor", "ham", "wit", "gel", "ros", "man"};
  static const std::vector<std::string> kCodas = {
      "ov",  "ez",  "en",  "er",  "ski", "sen", "ton", "ley", "ing", "ara",
      "ita", "ano", "elli", "off", "ak",  "ic",  "ah",  "u",   "o",   "a"};
  std::string name = kOnsets[rng->NextBounded(kOnsets.size())];
  name += kMiddles[rng->NextBounded(kMiddles.size())];
  // An optional second middle syllable enlarges the space to ~260k names,
  // keeping large generated pools collision-free.
  if (rng->Bernoulli(0.5)) name += kMiddles[rng->NextBounded(kMiddles.size())];
  if (rng->Bernoulli(0.7)) name += kCodas[rng->NextBounded(kCodas.size())];
  return name;
}

std::string VocabBank::MakeModelCode(Rng* rng) {
  static const char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  std::string code;
  size_t letters = 2 + rng->NextBounded(3);
  for (size_t i = 0; i < letters; ++i) {
    code.push_back(kLetters[rng->NextBounded(26)]);
  }
  size_t digits = 2 + rng->NextBounded(3);
  for (size_t i = 0; i < digits; ++i) {
    code.push_back(static_cast<char>('0' + rng->NextBounded(10)));
  }
  size_t tail = rng->NextBounded(3);
  for (size_t i = 0; i < tail; ++i) {
    code.push_back(kLetters[rng->NextBounded(26)]);
  }
  return code;
}

std::string VocabBank::MakePhone(Rng* rng) {
  std::string phone;
  phone.push_back(static_cast<char>('2' + rng->NextBounded(8)));
  for (size_t i = 0; i < 9; ++i) {
    phone.push_back(static_cast<char>('0' + rng->NextBounded(10)));
  }
  return phone;
}

}  // namespace gter
