#include "gter/datagen/noise.h"

namespace gter {

std::string InjectTypo(const std::string& word, Rng* rng) {
  if (word.empty()) return word;
  static const char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out = word;
  size_t kind = out.size() == 1 ? 0 : rng->NextBounded(4);
  size_t pos = rng->NextBounded(out.size());
  switch (kind) {
    case 0:  // substitution
      out[pos] = kLetters[rng->NextBounded(26)];
      break;
    case 1:  // insertion
      out.insert(out.begin() + pos, kLetters[rng->NextBounded(26)]);
      break;
    case 2:  // deletion
      out.erase(out.begin() + pos);
      break;
    default:  // adjacent transposition
      if (pos + 1 >= out.size()) pos = out.size() - 2;
      std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string Abbreviate(const std::string& word, Rng* rng) {
  size_t keep = 3 + rng->NextBounded(2);
  if (word.size() <= keep) return word;
  return word.substr(0, keep);
}

std::vector<std::string> ApplyNoise(const std::vector<std::string>& tokens,
                                    const NoiseOptions& options, Rng* rng) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) {
    if (rng->Bernoulli(options.drop_prob)) continue;
    std::string t = token;
    if (rng->Bernoulli(options.abbreviate_prob)) {
      t = Abbreviate(t, rng);
    } else if (rng->Bernoulli(options.typo_prob)) {
      t = InjectTypo(t, rng);
    }
    if (!t.empty()) out.push_back(std::move(t));
  }
  if (out.empty() && !tokens.empty()) out.push_back(tokens.front());
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& t : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += t;
  }
  return out;
}

}  // namespace gter
