#ifndef GTER_DATAGEN_PRODUCT_GEN_H_
#define GTER_DATAGEN_PRODUCT_GEN_H_

#include <cstdint>

#include "gter/datagen/datagen.h"
#include "gter/datagen/noise.h"

namespace gter {

/// Product-like benchmark: a two-source dataset mirroring Abt-Buy
/// (1081 + 1092 records, 1092 cross-source matches). Each product carries a
/// brand, a unique alphanumeric model code (the "pslx350h"-style
/// discriminative term from the paper's introduction), a category, and
/// noisy descriptive text that differs substantially between the two
/// sources — which is why plain Jaccard does poorly here while IDF-weighted
/// measures do better.
struct ProductGenConfig {
  size_t num_source0 = 1081;  // "abt"
  size_t num_source1 = 1092;  // "buy"
  size_t num_matches = 1092;  // cross-source matching pairs
  uint64_t seed = 2018;
  /// Real product listings are the noisiest of the three domains (the
  /// paper's round-1 Product F1 is only 0.543): descriptions diverge
  /// heavily across shops and the discriminative model code is frequently
  /// absent from one side's listing.
  double model_drop_prob = 0.25;
  NoiseOptions noise{/*typo_prob=*/0.10, /*abbreviate_prob=*/0.06,
                     /*drop_prob=*/0.10};
};

GeneratedDataset GenerateProduct(const ProductGenConfig& config = {});

}  // namespace gter

#endif  // GTER_DATAGEN_PRODUCT_GEN_H_
