#include "gter/datagen/datagen.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"
#include "gter/datagen/paper_gen.h"
#include "gter/datagen/product_gen.h"
#include "gter/datagen/restaurant_gen.h"

namespace gter {
namespace {

size_t Scaled(size_t value, double scale) {
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(value) * scale)));
}

}  // namespace

std::string BenchmarkName(BenchmarkKind kind) {
  switch (kind) {
    case BenchmarkKind::kRestaurant:
      return "Restaurant";
    case BenchmarkKind::kProduct:
      return "Product";
    case BenchmarkKind::kPaper:
      return "Paper";
  }
  return "Unknown";
}

GeneratedDataset GenerateBenchmark(BenchmarkKind kind, double scale,
                                   uint64_t seed) {
  GTER_CHECK(scale > 0.0);
  switch (kind) {
    case BenchmarkKind::kRestaurant: {
      RestaurantGenConfig config;
      config.num_records = Scaled(config.num_records, scale);
      config.num_duplicate_pairs = Scaled(config.num_duplicate_pairs, scale);
      config.num_duplicate_pairs =
          std::min(config.num_duplicate_pairs, config.num_records / 2);
      config.seed = seed;
      return GenerateRestaurant(config);
    }
    case BenchmarkKind::kProduct: {
      ProductGenConfig config;
      config.num_source0 = Scaled(config.num_source0, scale);
      config.num_source1 = Scaled(config.num_source1, scale);
      config.num_matches = Scaled(config.num_matches, scale);
      config.num_matches = std::min(config.num_matches, config.num_source1);
      config.seed = seed;
      return GenerateProduct(config);
    }
    case BenchmarkKind::kPaper: {
      PaperGenConfig config;
      config.num_records = Scaled(config.num_records, scale);
      config.largest_cluster =
          std::min(Scaled(config.largest_cluster, scale), config.num_records);
      config.num_big_clusters = Scaled(config.num_big_clusters, scale);
      config.seed = seed;
      return GeneratePaper(config);
    }
  }
  GTER_CHECK(false);
  return GeneratedDataset{Dataset("unreachable"),
                          GroundTruth(std::vector<EntityId>{})};
}

}  // namespace gter
