#ifndef GTER_DATAGEN_PAPER_GEN_H_
#define GTER_DATAGEN_PAPER_GEN_H_

#include <cstdint>

#include "gter/datagen/datagen.h"
#include "gter/datagen/noise.h"

namespace gter {

/// Paper-like benchmark: a single-source bibliography dataset mirroring
/// Cora (1865 citation strings; 96 clusters of ≥3 records; the largest
/// entity has 192 records). Citation variants abbreviate author names and
/// venues, truncate titles, and drop years — the big-clique structure this
/// dataset contributes is exactly what CliqueRank's boost targets.
struct PaperGenConfig {
  size_t num_records = 1865;
  /// Size of the largest citation cluster.
  size_t largest_cluster = 192;
  /// Number of clusters with at least 3 records.
  size_t num_big_clusters = 96;
  /// Power-law exponent shaping big-cluster sizes.
  double size_exponent = 1.15;
  uint64_t seed = 2018;
  NoiseOptions noise;
};

GeneratedDataset GeneratePaper(const PaperGenConfig& config = {});

}  // namespace gter

#endif  // GTER_DATAGEN_PAPER_GEN_H_
