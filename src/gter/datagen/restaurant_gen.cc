#include "gter/datagen/restaurant_gen.h"

#include <algorithm>
#include <unordered_set>

#include "gter/common/status.h"
#include "gter/datagen/vocab_bank.h"

namespace gter {
namespace {

/// Canonical attributes of one restaurant entity.
struct RestaurantEntity {
  std::vector<std::string> name;  // generic word + distinctive words
  std::string street_number;
  std::string street;
  std::string street_suffix;  // full form
  std::string city;
  std::string phone;
  std::string cuisine;
};

/// Samplers shared across entities. Real benchmark token frequencies are
/// bimodal: a handful of very frequent values (generic name words, city
/// names, cuisine labels — all removed by the frequent-term preprocessing)
/// and a long near-unique tail (distinctive name words, street names,
/// street numbers, phone numbers) where accidental overlaps between
/// distinct restaurants are rare. Mid-frequency tokens must stay rare:
/// each one that survives preprocessing ties its df sharers into a
/// uniform-weight clique that CliqueRank — by the paper's own design —
/// cannot distinguish from a true entity clique.
struct EntityFactory {
  /// Frequent categorical values: df ≈ n/|bank| ≥ 0.17·n, safely above
  /// the default 0.12·n removal cap at every scale.
  static constexpr size_t kNumGenerics = 4;
  static constexpr size_t kNumCities = 4;
  static constexpr size_t kNumCuisines = 4;
  static constexpr size_t kNumSuffixes = 4;

  /// Near-unique pools, deduplicated against each other so a street name
  /// never equals a restaurant name word. Streets are sampled from a pool
  /// of 40·n distinct names, so the expected number of cross-entity street
  /// collisions is ≈ n/80 — the "hard false positive" budget that keeps
  /// precision paper-like rather than perfect.
  std::vector<std::string> distinctive_names;  // globally unique
  std::vector<std::string> street_pool;        // distinct values
  size_t next_distinctive = 0;

  /// MakeSurname can produce ~264k distinct strings. The rejection loops
  /// below collect *distinct* values, so the wanted pool sizes must stay
  /// well under that bound or the loops never terminate (40·n alone
  /// exceeds the space past ~6.6k records — generation used to hang at
  /// scale ≳ 7.7). Capping keeps the draw count near-linear; past the
  /// cap the street-collision rate grows with n² / 120k instead of n/80,
  /// which only makes the hard-false-positive budget scale-proportional
  /// sooner.
  static constexpr size_t kMaxNamePool = 100000;
  static constexpr size_t kMaxStreetPool = 120000;

  EntityFactory(size_t num_records, Rng* rng) {
    std::unordered_set<std::string> used;
    size_t want_names = std::min(num_records * 3 + 16, kMaxNamePool);
    distinctive_names.reserve(want_names);
    while (distinctive_names.size() < want_names) {
      std::string w = VocabBank::MakeSurname(rng);
      if (used.insert(w).second) distinctive_names.push_back(w);
    }
    size_t want_streets = std::min(num_records * 40, kMaxStreetPool);
    street_pool.reserve(want_streets);
    while (street_pool.size() < want_streets) {
      std::string w = VocabBank::MakeSurname(rng);
      if (used.insert(w).second) street_pool.push_back(w);
    }
  }

  RestaurantEntity Make(Rng* rng) {
    RestaurantEntity e;
    // Name: one generic word ("grill") plus 1–2 globally-unique
    // distinctive words — the paper's "discriminative terms".
    e.name.push_back(
        VocabBank::RestaurantNameWords()[rng->NextBounded(kNumGenerics)]);
    size_t extra = 1 + rng->NextBounded(2);
    for (size_t i = 0; i < extra && next_distinctive < distinctive_names.size();
         ++i) {
      e.name.push_back(distinctive_names[next_distinctive++]);
    }
    e.street_number = std::to_string(1 + rng->NextBounded(99999));
    e.street = street_pool[rng->NextBounded(street_pool.size())];
    const auto& suffixes = VocabBank::StreetSuffixes();
    e.street_suffix = suffixes[rng->NextBounded(kNumSuffixes)];
    e.city = VocabBank::Cities()[rng->NextBounded(kNumCities)];
    e.phone = VocabBank::MakePhone(rng);
    e.cuisine = VocabBank::Cuisines()[rng->NextBounded(kNumCuisines)];
    return e;
  }
};

/// Renders one record of the entity. `variant` 0 is the canonical form;
/// variant 1 applies the noise model (the "other source's" rendering).
void EmitRecord(const RestaurantEntity& e, int variant, bool allow_short,
                const NoiseOptions& noise, Rng* rng, Dataset* dataset) {
  std::vector<std::string> name = e.name;
  std::string suffix = e.street_suffix;
  std::string cuisine = e.cuisine;
  std::string street = e.street;
  std::string number = e.street_number;
  std::string phone = e.phone;
  if (variant == 1) {
    name = ApplyNoise(name, noise, rng);
    // Address conventions differ across sources: abbreviate the suffix
    // half of the time, occasionally typo the street or disagree on the
    // street number and even the phone (digit typos in one guide).
    if (rng->Bernoulli(0.5)) suffix = VocabBank::AbbreviateStreetSuffix(suffix);
    if (rng->Bernoulli(noise.typo_prob)) street = InjectTypo(street, rng);
    if (rng->Bernoulli(0.12)) number = std::to_string(1 + rng->NextBounded(99999));
    if (rng->Bernoulli(0.08)) phone = InjectTypo(phone, rng);
    // Cuisine labels disagree frequently between guides (drawn from the
    // same frequent bank so the label stays above the removal cap).
    if (rng->Bernoulli(0.3)) {
      cuisine = VocabBank::Cuisines()[rng->NextBounded(
          EntityFactory::kNumCuisines)];
    }
  }
  std::string name_text = JoinTokens(name);
  std::string address = number + " " + street + " " + suffix;
  // Short listings: one guide sometimes prints only the name, city and
  // phone — the weakly-evidenced matches that pull the benchmark's
  // similarity distributions together. Franchise families always get full
  // directory entries (chains are well covered), which keeps their records
  // anchored to their true duplicates.
  if (allow_short && variant == 1 && rng->Bernoulli(0.25)) {
    std::vector<std::string> fields = {name_text, "", e.city, phone, ""};
    std::string text = name_text + " " + e.city + " " + phone;
    dataset->AddRecord(0, std::move(text), std::move(fields));
    return;
  }
  std::vector<std::string> fields = {name_text, address, e.city, phone,
                                     cuisine};
  std::string text =
      name_text + " " + address + " " + e.city + " " + phone + " " + cuisine;
  dataset->AddRecord(0, std::move(text), std::move(fields));
}

}  // namespace

GeneratedDataset GenerateRestaurant(const RestaurantGenConfig& config) {
  GTER_CHECK(config.num_records >= 2 * config.num_duplicate_pairs);
  Rng rng(config.seed);
  Dataset dataset("Restaurant", /*num_sources=*/1);
  std::vector<EntityId> entity_of;

  const size_t num_dups = config.num_duplicate_pairs;
  const size_t num_singles = config.num_records - 2 * num_dups;
  const size_t num_entities = num_dups + num_singles;

  // Interleave duplicated and singleton entities so record ids are not
  // correlated with match status.
  std::vector<bool> is_dup(num_entities, false);
  for (size_t i = 0; i < num_dups; ++i) is_dup[i] = true;
  rng.Shuffle(&is_dup);

  EntityFactory factory(config.num_records, &rng);

  // Phase 1: construct entities. Franchises: some restaurants share their
  // name (and kitchen) with a sibling at a different address — the classic
  // hard case of the real Restaurant benchmark where textual similarity
  // alone mismatches. Both the franchise and its one-time original are
  // *duplicated* entities: every involved record then has a true-match
  // anchor through phone/address, so the cross-franchise name edges are
  // dominated in the record graph — the structure CliqueRank exploits and
  // plain string similarity cannot. (A singleton franchise would instead
  // be an unresolvable mutual-best pair for any similarity-driven walk.)
  std::vector<RestaurantEntity> entities(num_entities);
  std::vector<bool> in_family(num_entities, false);
  std::vector<size_t> free_originals;  // dup entities not yet franchised
  for (size_t i = 0; i < num_entities; ++i) {
    entities[i] = factory.Make(&rng);
    if (is_dup[i] && !free_originals.empty() &&
        rng.Bernoulli(config.franchise_prob)) {
      size_t pick = rng.NextBounded(free_originals.size());
      size_t original = free_originals[pick];
      free_originals[pick] = free_originals.back();
      free_originals.pop_back();  // one franchise per original
      entities[i].name = entities[original].name;
      entities[i].cuisine = entities[original].cuisine;
      in_family[i] = true;
      in_family[original] = true;
    } else if (is_dup[i]) {
      free_originals.push_back(i);
    }
  }

  // Phase 2: emit records.
  EntityId next_entity = 0;
  for (size_t i = 0; i < num_entities; ++i) {
    bool allow_short = !in_family[i];
    EmitRecord(entities[i], /*variant=*/0, allow_short, config.noise, &rng,
               &dataset);
    entity_of.push_back(next_entity);
    if (is_dup[i]) {
      EmitRecord(entities[i], /*variant=*/1, allow_short, config.noise, &rng,
                 &dataset);
      entity_of.push_back(next_entity);
    }
    ++next_entity;
  }
  return {std::move(dataset), GroundTruth(std::move(entity_of))};
}

}  // namespace gter
