#ifndef GTER_DATAGEN_DATAGEN_H_
#define GTER_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>

#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"

namespace gter {

/// A synthetic benchmark dataset plus its ground truth.
struct GeneratedDataset {
  Dataset dataset;
  GroundTruth truth;
};

/// The three benchmark families of §VII-A. The originals (Riddle
/// Restaurant, Leipzig Abt-Buy, UMass Cora) are not redistributable here;
/// the generators reproduce their published statistics and the structural
/// properties the algorithms exploit (see DESIGN.md §3).
enum class BenchmarkKind { kRestaurant, kProduct, kPaper };

/// Human-readable name ("Restaurant", "Product", "Paper").
std::string BenchmarkName(BenchmarkKind kind);

/// Generates a benchmark at `scale` (1.0 = the paper's sizes: 858 records /
/// 1081+1092 records / 1865 records). Smaller scales shrink record and
/// match counts proportionally while preserving the cluster-size shape.
GeneratedDataset GenerateBenchmark(BenchmarkKind kind, double scale = 1.0,
                                   uint64_t seed = 2018);

}  // namespace gter

#endif  // GTER_DATAGEN_DATAGEN_H_
