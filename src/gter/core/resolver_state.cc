#include "gter/core/resolver_state.h"

#include <algorithm>
#include <utility>

#include "gter/common/metrics.h"
#include "gter/common/status.h"
#include "gter/graph/union_find.h"
#include "gter/text/string_metrics.h"

namespace gter {

ResolverState::ResolverState(Dataset* dataset, ResolverStateOptions options)
    : dataset_(dataset), options_(options), graph_(options.pt_mode) {
  GTER_CHECK(dataset_ != nullptr);
  GrowToVocabulary();
}

void ResolverState::GrowToVocabulary() {
  const size_t vocab = dataset_->vocabulary().size();
  if (vocab <= graph_.num_terms()) return;
  graph_.EnsureTerms(vocab);
  // New terms start at the positive constant like everyone else: the
  // logistic map has one positive attractor, so the value is free — and a
  // term only ever seen in one record has no pairs, so its first sweep
  // parks it at 0 anyway.
  x_.resize(vocab, options_.initial_weight);
  inverted_.resize(vocab);
}

void ResolverState::StructuralIngest(RecordId r) {
  GTER_CHECK(r == ingested_records_);  // strict id order
  const Record& rec = dataset_->record(r);
  GrowToVocabulary();
  graph_.AddRecordTerms(rec.terms);
  pairs_of_record_.emplace_back();
  best_.push_back(0.0);

  // Neighbor discovery through the inverted index: every already-resolved
  // record sharing ≥ 1 term. Postings are scanned before the upsert, so a
  // record never pairs with itself.
  std::vector<RecordId> neighbors;
  for (TermId t : rec.terms) {
    neighbors.insert(neighbors.end(), inverted_[t].begin(),
                     inverted_[t].end());
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());

  const bool two_source = dataset_->num_sources() == 2;
  for (RecordId b : neighbors) {
    if (two_source && dataset_->record(b).source == rec.source) continue;
    std::vector<TermId> shared =
        SortedIntersection(rec.terms, dataset_->record(b).terms);
    const PairId p = pairs_.Append(b, r);
    const PairId g = graph_.AddPair(shared);
    GTER_CHECK(p == g);
    s_.push_back(0.0);
    probability_.push_back(0.0);
    matches_.push_back(false);
    pairs_of_record_[b].push_back(p);
    pairs_of_record_[r].push_back(p);
  }

  // Posting upsert: r is the largest id, so postings stay sorted.
  for (TermId t : rec.terms) inverted_[t].push_back(r);

  // The record's terms are the invalidated frontier: each gained a record
  // (N_t — and P_t in kPaper mode — changed) and possibly new pairs.
  pending_dirty_.insert(pending_dirty_.end(), rec.terms.begin(),
                        rec.terms.end());
  ingested_records_ = r + 1;
  ++version_;
}

double ResolverState::PairProbabilityOf(PairId p) const {
  const RecordPair& rp = pairs_.pair(p);
  const double denom = std::max(best_[rp.a], best_[rp.b]);
  return denom > 0.0 ? s_[p] / denom : 0.0;
}

void ResolverState::RefreshDecisions(
    const std::vector<PairId>& touched_pairs) {
  // Dense fast path: when most scores moved (the full-resweep regime —
  // every batch build lands here), the sparse bookkeeping below would
  // sort two ids per touched pair just to rediscover "everything". One
  // sequential pass over the pair table is cheaper and exact.
  if (touched_pairs.size() >= pairs_.size() / 2) {
    std::fill(best_.begin(), best_.end(), 0.0);
    const size_t num_pairs = pairs_.size();
    for (PairId p = 0; p < num_pairs; ++p) {
      const RecordPair& rp = pairs_.pair(p);
      best_[rp.a] = std::max(best_[rp.a], s_[p]);
      best_[rp.b] = std::max(best_[rp.b], s_[p]);
    }
    matched_count_ = 0;
    for (PairId p = 0; p < num_pairs; ++p) {
      probability_[p] = PairProbabilityOf(p);
      matches_[p] = probability_[p] >= options_.eta;
      matched_count_ += matches_[p] ? 1 : 0;
    }
    RebuildClusters();
    return;
  }

  // Records whose reciprocal-best denominator may have moved: endpoints of
  // every pair whose score changed.
  std::vector<RecordId> cand;
  cand.reserve(touched_pairs.size() * 2);
  for (PairId p : touched_pairs) {
    cand.push_back(pairs_.pair(p).a);
    cand.push_back(pairs_.pair(p).b);
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  std::vector<RecordId> rescaled;
  for (RecordId r : cand) {
    double b = 0.0;
    for (PairId p : pairs_of_record_[r]) b = std::max(b, s_[p]);
    if (b != best_[r]) {
      best_[r] = b;
      rescaled.push_back(r);
    }
  }

  // Pairs to rescore: the touched scores plus every pair of a record whose
  // denominator changed.
  std::vector<PairId> rescore(touched_pairs);
  for (RecordId r : rescaled) {
    rescore.insert(rescore.end(), pairs_of_record_[r].begin(),
                   pairs_of_record_[r].end());
  }
  std::sort(rescore.begin(), rescore.end());
  rescore.erase(std::unique(rescore.begin(), rescore.end()), rescore.end());

  bool flips = false;
  for (PairId p : rescore) {
    probability_[p] = PairProbabilityOf(p);
    const bool match = probability_[p] >= options_.eta;
    if (match != matches_[p]) {
      flips = true;
      matched_count_ += match ? 1 : -1;
      matches_[p] = match;
    }
  }

  if (flips || cluster_of_.size() != ingested_records_) RebuildClusters();
}

void ResolverState::RebuildClusters() {
  UnionFind uf(ingested_records_);
  const size_t num_pairs = pairs_.size();
  for (PairId p = 0; p < num_pairs; ++p) {
    if (!matches_[p]) continue;
    const RecordPair& rp = pairs_.pair(p);
    uf.Union(rp.a, rp.b);
  }
  cluster_of_ = uf.ComponentLabels();
  cluster_members_.assign(uf.num_components(), {});
  for (RecordId r = 0; r < ingested_records_; ++r) {
    cluster_members_[cluster_of_[r]].push_back(r);
  }
}

Status ResolverState::ConvergeAndRefresh(const ExecContext& ctx) {
  std::vector<TermId> dirty;
  if (pending_full_) {
    dirty.resize(graph_.num_terms());
    for (size_t t = 0; t < dirty.size(); ++t) {
      dirty[t] = static_cast<TermId>(t);
    }
  } else {
    dirty = pending_dirty_;
  }

  ++dirty_reiter_runs_;
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  if (metrics != nullptr) metrics->AddCounter("ingest/dirty_reiter_runs");

  Result<IterDirtyResult> swept =
      RunIterDirty(graph_, dirty, options_.iter, &x_, &s_, ctx);
  if (!swept.ok()) {
    // Weights are mid-flight: scores of pairs adjacent to moved terms may
    // be stale. Escalate the resume to a full frontier — correct from any
    // intermediate state, and cancellation is the rare path.
    pending_full_ = true;
    return swept.status();
  }
  pending_dirty_.clear();
  pending_full_ = false;
  last_converge_sweeps_ = swept.value().sweeps;
  last_used_full_ = swept.value().used_full_resweep;
  if (swept.value().used_full_resweep) {
    ++full_resweeps_;
    if (metrics != nullptr) metrics->AddCounter("ingest/full_resweeps");
  }
  if (metrics != nullptr) {
    metrics->SetGauge("ingest/last_converge_sweeps",
                      static_cast<double>(swept.value().sweeps));
  }

  {
    ScopedTimer t2(metrics, nullptr, "resolver_state/refresh_decisions");
    RefreshDecisions(swept.value().touched_pairs);
  }
  if (metrics != nullptr) {
    metrics->SetGauge("ingest/last_touched_pairs",
                      static_cast<double>(swept.value().touched_pairs.size()));
  }
  ++version_;
  return Status::OK();
}

Status ResolverState::BuildBatch(const ExecContext& ctx,
                                 size_t limit_records) {
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer timer(metrics, recorder, "resolver_state/build");

  const size_t n = std::min(limit_records, dataset_->size());
  while (ingested_records_ < n) {
    if (ingested_records_ % 256 == 0) {
      GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    }
    StructuralIngest(static_cast<RecordId>(ingested_records_));
  }
  return ConvergeAndRefresh(ctx);
}

Result<IngestStats> ResolverState::Ingest(uint32_t source,
                                          std::string raw_text,
                                          const ExecContext& ctx) {
  // Poll before mutating anything: a k=0 cancel must leave the state (and
  // the dataset) untouched.
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  if (source >= dataset_->num_sources()) {
    return Status::InvalidArgument("source out of range");
  }
  GTER_CHECK(ingested_records_ == dataset_->size());  // no unresolved tail
  dataset_->AddRecord(source, std::move(raw_text));
  return IngestExisting(ctx);
}

Result<IngestStats> ResolverState::IngestExisting(const ExecContext& ctx) {
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  GTER_CHECK(ingested_records_ < dataset_->size());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer timer(metrics, recorder, "resolver_state/ingest");

  const RecordId id = static_cast<RecordId>(ingested_records_);
  IngestStats stats;
  stats.record = id;
  const size_t terms_before = graph_.num_terms();
  const size_t pairs_before = pairs_.size();
  StructuralIngest(id);
  stats.new_terms = graph_.num_terms() - terms_before;
  stats.new_pairs = pairs_.size() - pairs_before;
  ++records_ingested_;
  if (metrics != nullptr) metrics->AddCounter("ingest/records");

  GTER_RETURN_IF_ERROR(ConvergeAndRefresh(ctx));
  stats.sweeps = last_converge_sweeps_;
  stats.used_full_resweep = last_used_full_;
  stats.cluster = cluster_of_[id];
  stats.cluster_size = cluster_members_[stats.cluster].size();
  return stats;
}

Status ResolverState::Converge(const ExecContext& ctx) {
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  if (!has_pending_dirty()) return Status::OK();
  return ConvergeAndRefresh(ctx);
}

}  // namespace gter
