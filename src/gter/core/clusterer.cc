#include "gter/core/clusterer.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

#include "gter/common/metrics.h"
#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {
namespace {

constexpr uint32_t kUnset = static_cast<uint32_t>(-1);
/// Edge-scan batch between cancellation polls.
constexpr size_t kPollBatch = 8192;

void ValidateProblem(const ClusterProblem& problem) {
  GTER_CHECK(problem.pairs != nullptr);
  GTER_CHECK(problem.pair_probability != nullptr);
  GTER_CHECK(problem.pair_probability->size() == problem.pairs->size());
  GTER_CHECK(problem.source_of == nullptr || problem.source_of->empty() ||
             problem.source_of->size() == problem.num_records);
}

size_t CountClusters(const std::vector<uint32_t>& labels) {
  uint32_t next = 0;
  for (uint32_t l : labels) next = std::max(next, l + 1);
  return next;
}

Clustering FinishClustering(std::vector<uint32_t> labels,
                            MetricsRegistry* metrics) {
  Clustering out;
  out.cluster_of = std::move(labels);
  out.num_clusters = CountClusters(out.cluster_of);
  if (metrics != nullptr) {
    metrics->AddCounter("cluster/endgame_runs");
    metrics->SetGauge("cluster/clusters",
                      static_cast<double>(out.num_clusters));
  }
  return out;
}

/// Transitive closure of p ≥ η edges — exactly ResolveFromMatches.
class ConnectedComponentsClusterer : public Clusterer {
 public:
  std::string name() const override { return "connected_components"; }

  Result<Clustering> Cluster(const ClusterProblem& problem,
                             const ExecContext& ctx) const override {
    ValidateProblem(problem);
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    MetricsRegistry* metrics = ctx.metrics_or_ambient();
    ScopedTimer timer(metrics, ctx.trace_or_ambient(), "cluster/total");
    UnionFind uf(problem.num_records);
    const PairSpace& pairs = *problem.pairs;
    for (PairId p = 0; p < pairs.size(); ++p) {
      if (p % kPollBatch == 0) GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      if ((*problem.pair_probability)[p] >= problem.eta) {
        uf.Union(pairs.pair(p).a, pairs.pair(p).b);
      }
    }
    return FinishClustering(uf.ComponentLabels(), metrics);
  }
};

/// Correlation clustering routed through the interface. Delegates to
/// CorrelationCluster verbatim (the differential suite pins the output
/// bitwise against the direct call), with the together-threshold tracking
/// the problem's η.
class CorrelationClusterer : public Clusterer {
 public:
  explicit CorrelationClusterer(CorrelationClusteringOptions options)
      : options_(options) {}

  std::string name() const override { return "correlation"; }

  Result<Clustering> Cluster(const ClusterProblem& problem,
                             const ExecContext& ctx) const override {
    ValidateProblem(problem);
    CorrelationClusteringOptions options = options_;
    options.together_threshold = problem.eta;
    Result<CorrelationClusteringResult> run =
        CorrelationCluster(problem.num_records, *problem.pairs,
                           *problem.pair_probability, options, ctx);
    if (!run.ok()) return run.status();
    Clustering out;
    out.cluster_of = std::move(run).value().cluster_of;
    out.num_clusters = CountClusters(out.cluster_of);
    MetricsRegistry* metrics = ctx.metrics_or_ambient();
    if (metrics != nullptr) metrics->AddCounter("cluster/endgame_runs");
    return out;
  }

 private:
  CorrelationClusteringOptions options_;
};

// ---------------------------------------------------------------------------
// The clean-clean bipartite matching family (Papadakis et al.). All five
// variants share one skeleton: restrict the p ≥ η edges to cross-source
// ones, optionally reduce them to per-record best edges, then build a
// matching greedily by weight. Every record ends up with ≤ 1 partner, so
// the bipartite contract holds by construction.

enum class MatchingReduce {
  kAll,              // unique mapping: greedy over every eligible edge
  kRowBest,          // proposals from source-0 records only
  kColumnBest,       // proposals from source-1 records only
  kAnyBest,          // union of every record's best edge
  kMutualBest,       // reciprocity: both endpoints name each other best
  kStrictMutualBest  // reciprocity with no weight ties at either endpoint
};

class MatchingClusterer : public Clusterer {
 public:
  MatchingClusterer(std::string name, MatchingReduce reduce)
      : name_(std::move(name)), reduce_(reduce) {}

  std::string name() const override { return name_; }

  Result<Clustering> Cluster(const ClusterProblem& problem,
                             const ExecContext& ctx) const override {
    ValidateProblem(problem);
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    MetricsRegistry* metrics = ctx.metrics_or_ambient();
    ScopedTimer timer(metrics, ctx.trace_or_ambient(), "cluster/total");
    const PairSpace& pairs = *problem.pairs;
    const std::vector<double>& prob = *problem.pair_probability;
    const std::vector<uint32_t>* sources =
        (problem.source_of != nullptr && !problem.source_of->empty())
            ? problem.source_of
            : nullptr;

    // Eligible edges: above threshold, cross-source when sources are known.
    std::vector<PairId> eligible;
    for (PairId p = 0; p < pairs.size(); ++p) {
      if (p % kPollBatch == 0) GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      if (prob[p] < problem.eta) continue;
      const RecordPair& rp = pairs.pair(p);
      if (sources != nullptr && (*sources)[rp.a] == (*sources)[rp.b]) continue;
      eligible.push_back(p);
    }

    // Best eligible edge per record: highest weight, then smallest
    // neighbor id. `ambiguous` marks records whose maximum is tied.
    std::vector<PairId> best(problem.num_records, kInvalidPairId);
    std::vector<char> ambiguous(problem.num_records, 0);
    auto offer = [&](RecordId r, RecordId neighbor, PairId p) {
      if (best[r] == kInvalidPairId) {
        best[r] = p;
        return;
      }
      const double held = prob[best[r]];
      if (prob[p] > held) {
        best[r] = p;
        ambiguous[r] = 0;
      } else if (prob[p] == held) {
        ambiguous[r] = 1;
        const RecordPair& held_pair = pairs.pair(best[r]);
        RecordId held_neighbor = held_pair.a == r ? held_pair.b : held_pair.a;
        if (neighbor < held_neighbor) best[r] = p;
      }
    };
    size_t scanned = 0;
    for (PairId p : eligible) {
      if (++scanned % kPollBatch == 0) GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      const RecordPair& rp = pairs.pair(p);
      offer(rp.a, rp.b, p);
      offer(rp.b, rp.a, p);
    }

    // Reduce to the variant's candidate edge set.
    std::vector<PairId> candidates;
    auto side_best = [&](uint32_t side) {
      // Single-source problems have no row/column distinction: every
      // record proposes (row and column assignment coincide).
      for (RecordId r = 0; r < problem.num_records; ++r) {
        if (best[r] == kInvalidPairId) continue;
        if (sources != nullptr && (*sources)[r] != side) continue;
        candidates.push_back(best[r]);
      }
    };
    switch (reduce_) {
      case MatchingReduce::kAll:
        candidates = eligible;
        break;
      case MatchingReduce::kRowBest:
        side_best(0);
        break;
      case MatchingReduce::kColumnBest:
        side_best(sources != nullptr ? 1 : 0);
        break;
      case MatchingReduce::kAnyBest:
        for (RecordId r = 0; r < problem.num_records; ++r) {
          if (best[r] != kInvalidPairId) candidates.push_back(best[r]);
        }
        break;
      case MatchingReduce::kMutualBest:
      case MatchingReduce::kStrictMutualBest:
        for (PairId p : eligible) {
          const RecordPair& rp = pairs.pair(p);
          if (best[rp.a] != p || best[rp.b] != p) continue;
          if (reduce_ == MatchingReduce::kStrictMutualBest &&
              (ambiguous[rp.a] || ambiguous[rp.b])) {
            continue;
          }
          candidates.push_back(p);
        }
        break;
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());

    // Greedy matching by weight descending, pair id ascending — the
    // deterministic unique-mapping sweep.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&prob](PairId x, PairId y) {
                       if (prob[x] != prob[y]) return prob[x] > prob[y];
                       return x < y;
                     });
    std::vector<RecordId> partner(problem.num_records, kInvalidRecordId);
    scanned = 0;
    for (PairId p : candidates) {
      if (++scanned % kPollBatch == 0) GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      const RecordPair& rp = pairs.pair(p);
      if (partner[rp.a] != kInvalidRecordId ||
          partner[rp.b] != kInvalidRecordId) {
        continue;
      }
      partner[rp.a] = rp.b;
      partner[rp.b] = rp.a;
    }

    // Matched pairs become 2-record entities, everything else singletons.
    std::vector<uint32_t> labels(problem.num_records, kUnset);
    uint32_t next = 0;
    for (RecordId r = 0; r < problem.num_records; ++r) {
      if (labels[r] != kUnset) continue;
      labels[r] = next;
      if (partner[r] != kInvalidRecordId) labels[partner[r]] = next;
      ++next;
    }
    return FinishClustering(std::move(labels), metrics);
  }

 private:
  std::string name_;
  MatchingReduce reduce_;
};

// ---------------------------------------------------------------------------
// Graph-based hierarchical record clustering (Ebeid & Talburt):
// average-linkage agglomeration over the similarity graph. link(A, B) =
// Σ w(a, b) / (|A|·|B|) over candidate edges between the clusters (absent
// edges count 0); merge the best-linked pair while link ≥ merge_threshold.
//
// Cluster ids are never reused (a merge mints a fresh id), so the weight
// between two existing ids is immutable — a heap entry is stale exactly
// when one of its ids is dead, which makes lazy invalidation sound.

class HierarchicalClusterer : public Clusterer {
 public:
  explicit HierarchicalClusterer(double merge_threshold)
      : merge_threshold_(merge_threshold) {}

  std::string name() const override { return "hierarchical"; }

  Result<Clustering> Cluster(const ClusterProblem& problem,
                             const ExecContext& ctx) const override {
    ValidateProblem(problem);
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    MetricsRegistry* metrics = ctx.metrics_or_ambient();
    ScopedTimer timer(metrics, ctx.trace_or_ambient(), "cluster/total");
    const size_t n = problem.num_records;
    const PairSpace& pairs = *problem.pairs;
    const std::vector<double>& prob = *problem.pair_probability;

    // Candidate heap entry: average link between two live clusters. Ties
    // break on the clusters' representative records (smallest member), so
    // the merge order — and with it the dendrogram cut — is deterministic.
    struct Link {
      double link;
      RecordId rep_u, rep_v;  // rep_u < rep_v
      uint32_t u, v;          // cluster ids
    };
    struct LinkLess {
      bool operator()(const Link& x, const Link& y) const {
        if (x.link != y.link) return x.link < y.link;
        if (x.rep_u != y.rep_u) return x.rep_u > y.rep_u;
        return x.rep_v > y.rep_v;
      }
    };
    std::priority_queue<Link, std::vector<Link>, LinkLess> heap;

    std::vector<char> alive(n, 1);
    std::vector<uint32_t> size(n, 1);
    std::vector<RecordId> rep(n);
    // Total edge weight to each adjacent live cluster, by cluster id.
    std::vector<std::unordered_map<uint32_t, double>> weight(n);
    for (RecordId r = 0; r < n; ++r) rep[r] = r;

    size_t scanned = 0;
    for (PairId p = 0; p < pairs.size(); ++p) {
      if (++scanned % kPollBatch == 0) GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      const RecordPair& rp = pairs.pair(p);
      weight[rp.a][rp.b] = prob[p];
      weight[rp.b][rp.a] = prob[p];
      heap.push(Link{prob[p], rp.a, rp.b, rp.a, rp.b});
    }

    UnionFind uf(n);
    while (!heap.empty()) {
      GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      Link top = heap.top();
      heap.pop();
      if (!alive[top.u] || !alive[top.v]) continue;  // stale entry
      if (top.link < merge_threshold_) break;  // heap max: nothing merges
      // Merge u and v into a fresh cluster.
      const uint32_t merged = static_cast<uint32_t>(weight.size());
      alive[top.u] = 0;
      alive[top.v] = 0;
      alive.push_back(1);
      size.push_back(size[top.u] + size[top.v]);
      rep.push_back(std::min(rep[top.u], rep[top.v]));
      uf.Union(rep[top.u], rep[top.v]);
      std::unordered_map<uint32_t, double> combined;
      for (uint32_t old : {top.u, top.v}) {
        for (const auto& [neighbor, w] : weight[old]) {
          if (!alive[neighbor]) continue;
          combined[neighbor] += w;
        }
        weight[old] = {};
      }
      for (const auto& [neighbor, w] : combined) {
        weight[neighbor][merged] = w;
        const double link =
            w / (static_cast<double>(size[merged]) * size[neighbor]);
        const RecordId ra = rep[merged];
        const RecordId rb = rep[neighbor];
        heap.push(Link{link, std::min(ra, rb), std::max(ra, rb), merged,
                       neighbor});
      }
      weight.push_back(std::move(combined));
    }
    return FinishClustering(uf.ComponentLabels(), metrics);
  }

 private:
  double merge_threshold_;
};

struct KindEntry {
  ClustererKind kind;
  const char* name;
};

constexpr KindEntry kKinds[] = {
    {ClustererKind::kConnectedComponents, "connected_components"},
    {ClustererKind::kCorrelation, "correlation"},
    {ClustererKind::kUniqueMapping, "unique_mapping"},
    {ClustererKind::kRowAssignment, "row_assignment"},
    {ClustererKind::kColumnAssignment, "column_assignment"},
    {ClustererKind::kBestMatch, "best_match"},
    {ClustererKind::kReciprocalMatch, "reciprocal_match"},
    {ClustererKind::kExactMatch, "exact_match"},
    {ClustererKind::kHierarchical, "hierarchical"},
};

}  // namespace

const char* ClustererKindName(ClustererKind kind) {
  for (const KindEntry& entry : kKinds) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

Result<ClustererKind> ParseClustererKind(const std::string& name) {
  std::string valid;
  for (const KindEntry& entry : kKinds) {
    if (name == entry.name) return entry.kind;
    if (!valid.empty()) valid += ", ";
    valid += entry.name;
  }
  return Status::InvalidArgument("unknown clusterer '" + name +
                                 "' (valid: " + valid + ")");
}

const std::vector<ClustererKind>& AllClustererKinds() {
  static const std::vector<ClustererKind>* kinds = [] {
    auto* all = new std::vector<ClustererKind>();
    for (const KindEntry& entry : kKinds) all->push_back(entry.kind);
    return all;
  }();
  return *kinds;
}

std::unique_ptr<Clusterer> MakeClusterer(ClustererKind kind,
                                         const ClustererOptions& options) {
  switch (kind) {
    case ClustererKind::kConnectedComponents:
      return std::make_unique<ConnectedComponentsClusterer>();
    case ClustererKind::kCorrelation:
      return std::make_unique<CorrelationClusterer>(options.correlation);
    case ClustererKind::kUniqueMapping:
      return std::make_unique<MatchingClusterer>("unique_mapping",
                                                 MatchingReduce::kAll);
    case ClustererKind::kRowAssignment:
      return std::make_unique<MatchingClusterer>("row_assignment",
                                                 MatchingReduce::kRowBest);
    case ClustererKind::kColumnAssignment:
      return std::make_unique<MatchingClusterer>("column_assignment",
                                                 MatchingReduce::kColumnBest);
    case ClustererKind::kBestMatch:
      return std::make_unique<MatchingClusterer>("best_match",
                                                 MatchingReduce::kAnyBest);
    case ClustererKind::kReciprocalMatch:
      return std::make_unique<MatchingClusterer>("reciprocal_match",
                                                 MatchingReduce::kMutualBest);
    case ClustererKind::kExactMatch:
      return std::make_unique<MatchingClusterer>(
          "exact_match", MatchingReduce::kStrictMutualBest);
    case ClustererKind::kHierarchical:
      return std::make_unique<HierarchicalClusterer>(options.merge_threshold);
  }
  return nullptr;  // unreachable: the switch is exhaustive
}

}  // namespace gter
