#ifndef GTER_CORE_RESOLVER_STATE_H_
#define GTER_CORE_RESOLVER_STATE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/core/iter.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/graph/dynamic_bipartite.h"

namespace gter {

/// Options for the incremental resolver state (DESIGN.md §4g).
struct ResolverStateOptions {
  /// Match threshold on the reciprocal-best pair probability.
  double eta = 0.98;
  /// Eq. 6 denominator mode of the underlying graph.
  PtMode pt_mode = PtMode::kPaper;
  /// Dirty-region re-ITER knobs (frontier tolerance, full-resweep escape
  /// hatch).
  IterDirtyOptions iter;
  /// Weight every term starts from. The prob ≡ 1 logistic ITER map has a
  /// single positive attractor, so any positive constant converges to the
  /// same fixed point; a constant (rather than RunIter's random init) keeps
  /// the batch and streamed arms trivially comparable.
  double initial_weight = 0.5;
};

/// Per-ingest outcome, the add_record response payload.
struct IngestStats {
  RecordId record = kInvalidRecordId;
  /// Resolved cluster label of the new record (dense, stable by smallest
  /// member) and its size after the ingest.
  uint32_t cluster = 0;
  size_t cluster_size = 1;
  /// Vocabulary terms first seen in this record.
  size_t new_terms = 0;
  /// Candidate pairs the record added (records sharing ≥ 1 term,
  /// cross-source for two-source datasets).
  size_t new_pairs = 0;
  /// Dirty-region sweeps the converge took.
  size_t sweeps = 0;
  /// The full-resweep escape hatch fired during the converge.
  bool used_full_resweep = false;
};

/// Mutable, versioned resolver over a growing dataset — the incremental
/// engine the batch FusionPipeline stages were refactored into (DESIGN.md
/// §4g). Owns updatable views of every pipeline intermediate:
///
///  - the shared-term inverted index (posting upsert per ingest),
///  - the PairSpace and the term ↔ pair DynamicBipartiteGraph (append +
///    N_t/P_t maintenance),
///  - the ITER term weights / pair scores (dirty-region re-converge via
///    RunIterDirty),
///  - the reciprocal-best pair probabilities, match decisions and
///    connected-component clusters (targeted post-pass).
///
/// Ingesting one record costs O(its neighborhood): discover sharers
/// through the inverted index, append the new pairs, mark the record's
/// terms dirty (their N_t — and in kPaper mode P_t — changed), re-converge
/// from that frontier and refresh only the decisions the touched scores
/// can reach. `BuildBatch` is the same code path with every term dirty, so
/// a batch build and any ingest order converge to the same fixed point —
/// the property the incremental-vs-batch differential suite pins at 1e-10.
///
/// Probability model: ITER's pair score is unnormalized (it grows with the
/// shared-term count), so the match rule scales each score by the best
/// score either endpoint participates in: p(a,b) = s(a,b) / max(M_a, M_b).
/// A pair matches iff p ≥ eta — both records agree the other is (nearly)
/// their best candidate. This is the round-1 fusion semantics (prob ≡ 1
/// inside ITER), kept exactly refreshable per ingest.
///
/// Cancellation: every entry point polls before mutating anything, then
/// per sweep. A cancelled converge leaves the structures valid but the
/// weights mid-flight; the state remembers and the next Converge() (or
/// ingest) recovers by escalating to a full-frontier re-ITER — the same
/// escape hatch the dirty-fraction threshold uses.
///
/// Not internally synchronized: the owner serializes writes (the serving
/// layer ingests under its exclusive lock and reads under shared locks).
class ResolverState {
 public:
  /// Wraps `dataset` (not owned; must outlive the state). Records already
  /// in the dataset are NOT resolved until BuildBatch/IngestExisting runs.
  explicit ResolverState(Dataset* dataset, ResolverStateOptions options = {});

  /// Resolves the first min(limit_records, dataset size) records in one
  /// converge: structural ingest per record, then a single all-dirty
  /// re-ITER (the escape hatch fires immediately → full sweeps) and one
  /// decision pass. Pass a smaller `limit_records` to leave a tail of
  /// already-loaded records for IngestExisting — the replay harness.
  Status BuildBatch(const ExecContext& ctx = DefaultExecContext(),
                    size_t limit_records = std::numeric_limits<size_t>::max());

  /// Tokenizes and appends a record to the dataset, then resolves it
  /// incrementally. The serving-path entry point.
  Result<IngestStats> Ingest(uint32_t source, std::string raw_text,
                             const ExecContext& ctx = DefaultExecContext());

  /// Resolves the next already-loaded dataset record past the state's
  /// horizon (records are ingested strictly in id order).
  Result<IngestStats> IngestExisting(
      const ExecContext& ctx = DefaultExecContext());

  /// Drains any pending dirty region (a no-op when converged). After a
  /// cancelled BuildBatch/Ingest this is the resume point.
  Status Converge(const ExecContext& ctx = DefaultExecContext());

  const Dataset& dataset() const { return *dataset_; }
  const ResolverStateOptions& options() const { return options_; }
  /// Records resolved so far (≤ dataset().size()).
  size_t num_records() const { return ingested_records_; }
  const PairSpace& pairs() const { return pairs_; }
  const DynamicBipartiteGraph& graph() const { return graph_; }

  /// ITER term weights, indexed by TermId (vocabulary-sized).
  const std::vector<double>& term_weights() const { return x_; }
  /// ITER pair scores, indexed by PairId.
  const std::vector<double>& pair_scores() const { return s_; }
  /// Reciprocal-best match probabilities, indexed by PairId.
  const std::vector<double>& pair_probability() const { return probability_; }
  const std::vector<bool>& matches() const { return matches_; }
  size_t matched_count() const { return matched_count_; }
  /// Dense cluster labels (stable by smallest member), one per resolved
  /// record, and the member lists per label.
  const std::vector<uint32_t>& cluster_of() const { return cluster_of_; }
  size_t num_clusters() const { return cluster_members_.size(); }
  const std::vector<std::vector<RecordId>>& cluster_members() const {
    return cluster_members_;
  }
  /// Shared-term inverted index over resolved records (vocabulary-sized;
  /// postings ascend because ingest order is id order).
  const std::vector<std::vector<RecordId>>& inverted_index() const {
    return inverted_;
  }

  /// Monotonic state version: bumps on every structural mutation and every
  /// completed converge.
  uint64_t version() const { return version_; }
  /// True when a cancelled/partial converge left dirty terms pending.
  bool has_pending_dirty() const {
    return pending_full_ || !pending_dirty_.empty();
  }

  // Ingest health counters (surfaced by the stats endpoint).
  uint64_t records_ingested() const { return records_ingested_; }
  uint64_t dirty_reiter_runs() const { return dirty_reiter_runs_; }
  uint64_t full_resweeps() const { return full_resweeps_; }
  size_t last_converge_sweeps() const { return last_converge_sweeps_; }

 private:
  /// Appends record `r`'s structures: posting upsert, neighbor discovery,
  /// pair append, N_t bump, dirty marking. O(neighborhood); no convergence.
  void StructuralIngest(RecordId r);
  /// Re-ITER from the pending frontier, then refresh decisions reachable
  /// from the touched scores.
  Status ConvergeAndRefresh(const ExecContext& ctx);
  void RefreshDecisions(const std::vector<PairId>& touched_pairs);
  void RebuildClusters();
  double PairProbabilityOf(PairId p) const;
  /// Grows every vocabulary-indexed structure to the current vocab size.
  void GrowToVocabulary();

  Dataset* dataset_;
  ResolverStateOptions options_;
  DynamicBipartiteGraph graph_;
  PairSpace pairs_;
  std::vector<std::vector<RecordId>> inverted_;
  std::vector<std::vector<PairId>> pairs_of_record_;
  std::vector<double> x_;
  std::vector<double> s_;
  /// best_[r] = max s over r's pairs (0 when r has none) — the reciprocal-
  /// best denominator.
  std::vector<double> best_;
  std::vector<double> probability_;
  std::vector<bool> matches_;
  size_t matched_count_ = 0;
  std::vector<uint32_t> cluster_of_;
  std::vector<std::vector<RecordId>> cluster_members_;

  size_t ingested_records_ = 0;
  std::vector<TermId> pending_dirty_;
  bool pending_full_ = false;
  uint64_t version_ = 0;

  uint64_t records_ingested_ = 0;
  uint64_t dirty_reiter_runs_ = 0;
  uint64_t full_resweeps_ = 0;
  size_t last_converge_sweeps_ = 0;
  bool last_used_full_ = false;
};

}  // namespace gter

#endif  // GTER_CORE_RESOLVER_STATE_H_
