#ifndef GTER_CORE_MODEL_IO_H_
#define GTER_CORE_MODEL_IO_H_

#include <string>
#include <vector>

#include "gter/common/status.h"
#include "gter/core/fusion.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Persistence for fusion outputs, so a resolution run can be stored,
/// inspected, or applied later without recomputation.
///
/// Two artifacts:
///  * a term-weight file (`term,weight` CSV) — the learned discrimination
///    power, reusable as a domain lexicon;
///  * a match file (`record_a,record_b,probability` CSV) — the resolved
///    pairs at the configured η.

/// Writes every term with non-zero weight.
Status SaveTermWeights(const std::string& path, const Dataset& dataset,
                       const std::vector<double>& term_weights);

/// Loads weights back, aligned to `dataset`'s vocabulary (unknown terms in
/// the file are an error; absent terms get weight 0).
Result<std::vector<double>> LoadTermWeights(const std::string& path,
                                            const Dataset& dataset);

/// Writes matched pairs with their probability.
Status SaveMatches(const std::string& path, const PairSpace& pairs,
                   const FusionResult& result);

/// Loads match decisions back into a PairSpace-aligned boolean vector.
/// Pairs in the file that are not in `pairs` are an error (the file was
/// made for a different dataset).
Result<std::vector<bool>> LoadMatches(const std::string& path,
                                      const PairSpace& pairs);

}  // namespace gter

#endif  // GTER_CORE_MODEL_IO_H_
