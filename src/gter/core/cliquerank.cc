#include "gter/core/cliquerank.h"

#include <algorithm>
#include <cmath>

#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/common/timer.h"
#include "gter/matrix/dense_matrix.h"
#include "gter/matrix/gemm.h"
#include "gter/matrix/masked_multiply.h"

namespace gter {
namespace {

Result<std::vector<double>> RunDense(const CsrMatrix& trans,
                                     const CsrMatrix& pattern,
                                     const std::vector<double>& m1_values,
                                     const CliqueRankOptions& options,
                                     const PairSpace& pairs,
                                     MetricsRegistry* metrics,
                                     TraceRecorder* recorder,
                                     const ExecContext& ctx) {
  const size_t n = pattern.rows();
  DenseMatrix mt = trans.ToDense();
  DenseMatrix mn = pattern.ToDense();

  // M¹ = M_b scattered onto the pattern.
  DenseMatrix m(n, n, 0.0);
  ScatterToDense(pattern, m1_values.data(), m.data());
  DenseMatrix accum = m;

  if (metrics != nullptr) {
    // mt, mn, m, accum plus the per-step Hadamard product below.
    metrics->SetGauge("cliquerank/scratch_bytes",
                      static_cast<double>(5 * n * n * sizeof(double)));
  }
  DenseMatrix masked;
  for (size_t step = 2; step <= options.max_steps; ++step) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    masked = m.Hadamard(mn);
    {
      ScopedTimer gemm_timer(metrics, recorder, "cliquerank/gemm",
                             TraceArg{"step", static_cast<double>(step)});
      GTER_RETURN_IF_ERROR(Gemm(mt, masked, &m, ctx));
    }
    accum.Add(m);
  }
  if (metrics != nullptr && options.max_steps >= 2) {
    metrics->AddCounter("cliquerank/steps", options.max_steps - 1);
  }

  std::vector<double> probability(pairs.size(), 0.0);
  ParallelFor(ctx.pool, 0, pairs.size(), /*grain=*/256,
              [&](size_t lo, size_t hi) {
    for (PairId p = lo; p < hi; ++p) {
      const RecordPair& rp = pairs.pair(p);
      double avg = (accum(rp.a, rp.b) + accum(rp.b, rp.a)) / 2.0;
      probability[p] = std::clamp(avg, 0.0, 1.0);
    }
  });
  return probability;
}

Result<std::vector<double>> RunMasked(const CsrMatrix& trans,
                                      const CsrMatrix& pattern,
                                      const std::vector<double>& m1_values,
                                      const CliqueRankOptions& options,
                                      const PairSpace& pairs,
                                      MetricsRegistry* metrics,
                                      TraceRecorder* recorder,
                                      const ExecContext& ctx) {
  const size_t n = pattern.rows();
  std::vector<double> cur = m1_values;
  std::vector<double> accum = cur;
  std::vector<double> next(cur.size(), 0.0);
  if (metrics != nullptr) {
    // cur/accum/next on the edge pattern plus the O(n) per-chunk row
    // accumulator inside the CSR kernel — the engine's whole footprint.
    metrics->SetGauge(
        "cliquerank/scratch_bytes",
        static_cast<double>((3 * pattern.nnz() + n) * sizeof(double)));
  }
  // The iterate lives on the CSR pattern for the whole run; each step is a
  // Gustavson gather confined to the pattern (no n×n scratch).
  for (size_t step = 2; step <= options.max_steps; ++step) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    {
      ScopedTimer product_timer(metrics, recorder, "cliquerank/masked_product",
                                TraceArg{"step", static_cast<double>(step)});
      // Fused mode folds `accum += M^k` into the kernel's row readout (the
      // positions are already in registers there); staged mode keeps the
      // separate sweep below so the two paths can be differenced.
      GTER_RETURN_IF_ERROR(ComputeMaskedProductCsr(
          trans, cur.data(), pattern, next.data(),
          options.fuse_passes ? accum.data() : nullptr, ctx));
    }
    cur.swap(next);
    if (!options.fuse_passes) {
      ParallelFor(ctx.pool, 0, cur.size(), /*grain=*/4096,
                  [&](size_t lo, size_t hi) {
        for (size_t e = lo; e < hi; ++e) accum[e] += cur[e];
      });
    }
  }
  if (metrics != nullptr && options.max_steps >= 2) {
    metrics->AddCounter("cliquerank/steps", options.max_steps - 1);
  }

  std::vector<double> probability(pairs.size(), 0.0);
  ParallelFor(ctx.pool, 0, pairs.size(), /*grain=*/256,
              [&](size_t lo, size_t hi) {
    for (PairId p = lo; p < hi; ++p) {
      const RecordPair& rp = pairs.pair(p);
      int64_t pos_ab = pattern.PositionOf(rp.a, rp.b);
      int64_t pos_ba = pattern.PositionOf(rp.b, rp.a);
      GTER_CHECK(pos_ab >= 0 && pos_ba >= 0);
      double avg = (accum[static_cast<size_t>(pos_ab)] +
                    accum[static_cast<size_t>(pos_ba)]) /
                   2.0;
      probability[p] = std::clamp(avg, 0.0, 1.0);
    }
  });
  return probability;
}

/// Fused setup pass: fills `trans` (already a structural copy of the
/// pattern, values ignored) with the Eq. 11/13 transition values and `m1`
/// with the Eq. 12 boosted one-step values in one sweep over the graph's
/// rows — replacing the staged TransitionMatrix() triplet build +
/// FromTriplets sort plus the CliqueRankBoostedValues re-sweep over the
/// value array. Bit-identity with the staged path: per row the row-max /
/// power / normalize arithmetic is op-for-op the same, rows are visited in
/// the same row-major neighbor-ascending order FromTriplets would emit, and
/// the boost RNG therefore consumes draws in exactly the CSR value order
/// CliqueRankBoostedValues consumes them.
void FusedTransitionAndBoost(const RecordGraph& graph,
                             const CliqueRankOptions& options,
                             CsrMatrix* trans, std::vector<double>* m1) {
  m1->resize(trans->nnz());
  Rng rng(options.seed);
  double expected_boost = 0.0;
  if (options.use_boost && options.boost_mode == BoostMode::kExpected) {
    // E[(1+b)^α] for b ~ U(0,1) = (2^{α+1} − 1) / (α + 1).
    expected_boost =
        (std::pow(2.0, options.alpha + 1.0) - 1.0) / (options.alpha + 1.0);
  }
  for (RecordId r = 0; r < graph.num_nodes(); ++r) {
    auto wts = graph.Weights(r);
    if (wts.empty()) continue;
    std::span<double> tv = trans->MutableRowValues(r);
    double* bv = m1->data() + trans->RowStart(r);
    double row_max = 0.0;
    for (double w : wts) row_max = std::max(row_max, w);
    if (row_max <= 0.0) {
      // Degenerate row: all similarities zero → uniform transitions.
      const double uniform = 1.0 / static_cast<double>(wts.size());
      for (size_t k = 0; k < wts.size(); ++k) tv[k] = uniform;
    } else {
      double denom = 0.0;
      for (size_t k = 0; k < wts.size(); ++k) {
        tv[k] = std::pow(wts[k] / row_max, options.alpha);
        denom += tv[k];
      }
      for (size_t k = 0; k < wts.size(); ++k) tv[k] /= denom;
    }
    for (size_t k = 0; k < wts.size(); ++k) {
      double t = tv[k];
      if (options.use_boost && t > 0.0) {
        double boost = expected_boost;
        if (options.boost_mode == BoostMode::kSampled) {
          boost = std::pow(1.0 + rng.OpenUniformDouble(), options.alpha);
        }
        t = boost * t / (1.0 - t + boost * t);
      }
      bv[k] = t;
    }
  }
}

}  // namespace

/// Boosted one-step values M_b on the structural pattern, derived from the
/// transition matrix: with t = M_t[i,j] and per-directed-edge bonus factor
/// B = (1+b)^α,
///   M_b[i,j] = B·t / (1 − t + B·t)
/// which is Eq. 12 after dividing numerator and denominator by the row's
/// unboosted normalizer.
std::vector<double> CliqueRankBoostedValues(const CsrMatrix& trans,
                                            const CliqueRankOptions& options) {
  std::vector<double> values(trans.values().begin(), trans.values().end());
  if (!options.use_boost) return values;
  Rng rng(options.seed);
  double expected_boost = 0.0;
  if (options.boost_mode == BoostMode::kExpected) {
    // E[(1+b)^α] for b ~ U(0,1) = (2^{α+1} − 1) / (α + 1).
    expected_boost =
        (std::pow(2.0, options.alpha + 1.0) - 1.0) / (options.alpha + 1.0);
  }
  for (double& t : values) {
    if (t <= 0.0) continue;
    double boost = expected_boost;
    if (options.boost_mode == BoostMode::kSampled) {
      double b = rng.OpenUniformDouble();
      boost = std::pow(1.0 + b, options.alpha);
    }
    t = boost * t / (1.0 - t + boost * t);
  }
  return values;
}

Result<CliqueRankResult> RunCliqueRank(const RecordGraph& graph,
                                       const PairSpace& pairs,
                                       const CliqueRankOptions& options,
                                       const ExecContext& ctx) {
  GTER_CHECK(options.max_steps >= 1);
  GTER_CHECK(graph.num_nodes() > 0);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "cliquerank/total");
  Stopwatch watch;
  CsrMatrix pattern = graph.AdjacencyMatrix();
  CsrMatrix trans;
  std::vector<double> m1;
  if (options.fuse_passes) {
    // Transition values and boosted M¹ in one sweep over the graph's rows,
    // written into a structural twin of the pattern (same CSR layout, so
    // nnz/positions line up by construction).
    trans = pattern;
    FusedTransitionAndBoost(graph, options, &trans, &m1);
  } else {
    trans = graph.TransitionMatrix(options.alpha);
    GTER_CHECK(trans.nnz() == pattern.nnz());  // identical structure
    m1 = CliqueRankBoostedValues(trans, options);
  }

  CliqueRankEngine engine = options.engine;
  if (engine == CliqueRankEngine::kAuto) {
    engine = graph.Density() >= options.dense_density_threshold
                 ? CliqueRankEngine::kDense
                 : CliqueRankEngine::kMaskedSparse;
  }
  if (metrics != nullptr) {
    metrics->AddCounter("cliquerank/runs");
    metrics->AddCounter(engine == CliqueRankEngine::kDense
                            ? "cliquerank/engine_dense"
                            : "cliquerank/engine_masked");
  }

  CliqueRankResult result;
  result.engine_used = engine;
  Result<std::vector<double>> probability =
      engine == CliqueRankEngine::kDense
          ? RunDense(trans, pattern, m1, options, pairs, metrics, recorder,
                     ctx)
          : RunMasked(trans, pattern, m1, options, pairs, metrics, recorder,
                      ctx);
  GTER_RETURN_IF_ERROR(probability.status());
  result.pair_probability = std::move(probability).value();
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace gter
