#ifndef GTER_CORE_CLIQUERANK_H_
#define GTER_CORE_CLIQUERANK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/pair_space.h"
#include "gter/graph/record_graph.h"
#include "gter/matrix/csr_matrix.h"

namespace gter {

/// Which matrix engine evaluates the recurrence M^k = M_t × (M^{k-1} ⊙ M_n).
enum class CliqueRankEngine {
  /// Pick by graph density: masked-sparse below `dense_density_threshold`,
  /// dense above.
  kAuto,
  /// Full n×n GEMM per step (the paper's Eigen formulation).
  kDense,
  /// Confined to the edge pattern of M_n (exact — see masked_multiply.h).
  kMaskedSparse,
};

/// How the per-walk random bonus b ∈ (0,1) of Eq. 12 is realized in the
/// matrix formulation.
enum class BoostMode {
  /// Sample one b per directed edge from the seeded generator (mirrors the
  /// per-walk sampling of RSS).
  kSampled,
  /// Use the closed-form expectation E[(1+b)^α] = (2^{α+1} − 1)/(α + 1).
  kExpected,
};

/// Options for the CliqueRank algorithm (§VI-C).
struct CliqueRankOptions {
  /// Exponent α of the non-linear transition probability (Eq. 11).
  double alpha = 20.0;
  /// Maximum steps S (matrix powers accumulated).
  size_t max_steps = 20;
  /// Disable to ablate the big-clique boost (then M¹ = M_t).
  bool use_boost = true;
  BoostMode boost_mode = BoostMode::kSampled;
  uint64_t seed = 7;
  CliqueRankEngine engine = CliqueRankEngine::kAuto;
  /// kAuto switches to the dense engine above this edge density.
  double dense_density_threshold = 0.25;
  /// Fuse the hot passes (default). Setup: transition row-normalize and the
  /// Eq. 12 boost run as one sweep over the graph's rows writing straight
  /// into a structural copy of the pattern, instead of the staged triplet
  /// build + FromTriplets sort + boost re-sweep. Masked engine: the per-step
  /// `accum += M^k` sweep folds into the masked-product row readout.
  /// Both fusions are bit-identical to the staged passes (RNG draw order
  /// and every arithmetic op are preserved — see FusedTransitionAndBoost
  /// and masked_multiply.h); the flag exists so the differential tests can
  /// pin fused against staged.
  bool fuse_passes = true;
};

/// Output of one CliqueRank run.
struct CliqueRankResult {
  /// Matching probability p(r_i, r_j) per PairId, clamped to [0, 1]
  /// (Eq. 15 averages both walk directions over steps 1..S).
  std::vector<double> pair_probability;
  CliqueRankEngine engine_used = CliqueRankEngine::kAuto;
  double seconds = 0.0;
};

/// Runs CliqueRank over the record graph built from ITER's similarities.
/// Matrix kernels run on `ctx.pool` at `ctx.simd_level()`; metrics (engine
/// chosen, per-step kernel time, scratch bytes) go to `ctx.metrics` with
/// ambient fallback. Cancellation is polled at entry and once per matrix
/// step in both engines.
Result<CliqueRankResult> RunCliqueRank(
    const RecordGraph& graph, const PairSpace& pairs,
    const CliqueRankOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

/// The boosted one-step values M_b of Eq. 12 on the structural pattern of
/// `trans` (shared by both engines; exposed for property tests and
/// ablations): with t = M_t[i,j] and per-directed-edge bonus B = (1+b)^α,
/// M_b[i,j] = B·t / (1 − t + B·t). Zero entries stay zero.
std::vector<double> CliqueRankBoostedValues(const CsrMatrix& trans,
                                            const CliqueRankOptions& options);

}  // namespace gter

#endif  // GTER_CORE_CLIQUERANK_H_
