#include "gter/core/iter_matrix.h"

#include <cmath>

#include "gter/common/random.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"

namespace gter {
namespace {

double Norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

Result<IterMatrixResult> RunIterMatrixForm(
    const BipartiteGraph& graph, const std::vector<double>& edge_probability,
    const IterMatrixOptions& options, const ExecContext& ctx) {
  GTER_CHECK(edge_probability.size() == graph.num_pairs());
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  const size_t num_terms = graph.num_terms();
  const size_t num_pairs = graph.num_pairs();

  IterMatrixResult result;
  result.pair_scores.assign(num_pairs, 0.0);
  result.term_weights.assign(num_terms, 0.0);
  if (num_pairs == 0) return result;

  // One application of M = Sᵀ D⁻¹ S C to y, via the intermediate x.
  // S is the term×pair incidence (structural); D is diag(P_t); C is
  // diag(p(r_i, r_j)).
  // Both halves of the application are gather-style over fixed adjacency
  // order, so the parallel sweeps stay bit-identical to the serial ones.
  std::vector<double> x(num_terms);
  auto apply = [&](const std::vector<double>& y, std::vector<double>* out) {
    ParallelFor(ctx.pool, 0, num_terms, options.grain,
                [&](size_t lo, size_t hi) {
      for (TermId t = lo; t < hi; ++t) {
        double acc = 0.0;
        for (PairId p : graph.PairsOfTerm(t)) {
          acc += edge_probability[p] * y[p];
        }
        x[t] = acc / graph.Pt(t);
      }
    });
    ParallelFor(ctx.pool, 0, num_pairs, options.grain,
                [&](size_t lo, size_t hi) {
      for (PairId p = lo; p < hi; ++p) {
        double acc = 0.0;
        for (TermId t : graph.TermsOfPair(p)) acc += x[t];
        (*out)[p] = acc;
      }
    });
  };

  // Random non-negative start: cannot be orthogonal to the (non-negative)
  // principal eigenvector of this non-negative matrix.
  Rng rng(options.seed);
  std::vector<double> y(num_pairs);
  for (double& v : y) v = rng.OpenUniformDouble();
  double norm = Norm2(y);
  for (double& v : y) v /= norm;

  std::vector<double> next(num_pairs, 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    apply(y, &next);
    double next_norm = Norm2(next);
    result.iterations = iter + 1;
    if (next_norm <= 0.0) {
      // M y = 0: y is in the null space (e.g. all probabilities zero).
      result.eigenvalue = 0.0;
      break;
    }
    double change = 0.0;
    for (size_t p = 0; p < num_pairs; ++p) {
      double v = next[p] / next_norm;
      change += (v - y[p]) * (v - y[p]);
      y[p] = v;
    }
    result.eigenvalue = next_norm;  // Rayleigh quotient for unit y: ‖My‖
    if (std::sqrt(change) < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Residual ‖My − λy‖.
  apply(y, &next);
  double residual_sq = 0.0;
  for (size_t p = 0; p < num_pairs; ++p) {
    double d = next[p] - result.eigenvalue * y[p];
    residual_sq += d * d;
  }
  result.residual = std::sqrt(residual_sq);

  result.pair_scores = y;
  ParallelFor(ctx.pool, 0, num_terms, options.grain,
              [&](size_t lo, size_t hi) {
    for (TermId t = lo; t < hi; ++t) {
      double acc = 0.0;
      for (PairId p : graph.PairsOfTerm(t)) {
        acc += edge_probability[p] * y[p];
      }
      result.term_weights[t] = acc / graph.Pt(t);
    }
  });
  return result;
}

}  // namespace gter
