#ifndef GTER_CORE_CLUSTERER_H_
#define GTER_CORE_CLUSTERER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/core/correlation_clustering.h"
#include "gter/er/pair_space.h"

namespace gter {

/// The clustering-endgame problem: the similarity graph the fusion loop
/// leaves behind. Every field is borrowed — the caller keeps the pair
/// space and probability vector alive for the duration of Cluster().
struct ClusterProblem {
  /// Records 0..num_records-1 partition into entities.
  size_t num_records = 0;
  /// Candidate pairs (the graph's edges).
  const PairSpace* pairs = nullptr;
  /// Edge weight per PairId — the fusion loop's matching probability
  /// p(r_i, r_j) in [0, 1]. Pairs absent from `pairs` have weight 0.
  const std::vector<double>* pair_probability = nullptr;
  /// Match threshold η: edges with p ≥ η are "same entity" votes. The
  /// correlation, connected-components, and matching endgames key off it;
  /// the hierarchical endgame uses its own merge threshold instead.
  double eta = 0.98;
  /// Source per record, or nullptr/empty for single-source data. When
  /// present, the clean-clean (matching) endgames ignore same-source edges
  /// and uphold the bipartite contract: no entity holds two records from
  /// one source.
  const std::vector<uint32_t>* source_of = nullptr;
};

/// An entity partition: one dense cluster label per record, labels ordered
/// by smallest member (record 0's cluster is always label 0).
struct Clustering {
  std::vector<uint32_t> cluster_of;
  size_t num_clusters = 0;
};

/// Strategy interface for the final entity-formation step (DESIGN.md §4f):
/// similarity graph in, entity partition out.
///
/// Contract every implementation upholds:
///  * Partition validity — every record gets exactly one label, labels are
///    dense in [0, num_clusters), no cluster is empty.
///  * Determinism — identical problems yield identical partitions, at any
///    thread count, before and after a cancelled attempt (ties break on
///    record/pair ids; stochastic endgames are seeded through options).
///  * Cancellation — `ctx.cancel` is polled at entry and at every
///    restart/merge/edge-batch boundary; a tripped token unwinds with
///    Cancelled/DeadlineExceeded and leaves no residue.
///  * Bipartite invariant — clean-clean endgames never place two records
///    of the same source in one entity (when `source_of` is given).
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// Registry name ("correlation", "unique_mapping", ...).
  virtual std::string name() const = 0;

  virtual Result<Clustering> Cluster(
      const ClusterProblem& problem,
      const ExecContext& ctx = DefaultExecContext()) const = 0;
};

/// The registered endgames.
///
/// kConnectedComponents — transitive closure of p ≥ η edges (the
///   pre-existing ResolveFromMatches behaviour; one false positive chains
///   whole clusters together).
/// kCorrelation — randomized-pivot correlation clustering with local-move
///   refinement (wraps CorrelationCluster bit-identically).
/// The clean-clean bipartite matching family (Papadakis et al.,
/// arxiv 2112.14030) — each record ends up with at most one partner, so
/// entities have at most two records:
///   kUniqueMapping   — greedy globally by weight: accept an edge when both
///                      endpoints are still free.
///   kRowAssignment   — every source-0 record proposes to its best
///                      candidate; contested source-1 records keep the
///                      heaviest proposal.
///   kColumnAssignment — the same from the source-1 side.
///   kBestMatch       — greedy over the union of every record's best edge.
///   kReciprocalMatch — only mutual-best edges match (reciprocity).
///   kExactMatch      — mutual-best with no ties allowed at either
///                      endpoint (the strictest, highest-precision variant).
/// kHierarchical — graph-based hierarchical record clustering (Ebeid &
///   Talburt, arxiv 2112.06331): average-linkage agglomeration over the
///   similarity graph until the best inter-cluster link drops below the
///   merge threshold.
enum class ClustererKind {
  kConnectedComponents,
  kCorrelation,
  kUniqueMapping,
  kRowAssignment,
  kColumnAssignment,
  kBestMatch,
  kReciprocalMatch,
  kExactMatch,
  kHierarchical,
};

/// Tuning knobs shared by MakeClusterer. Fields irrelevant to the chosen
/// kind are ignored.
struct ClustererOptions {
  /// Correlation endgame: restarts/refinement/seed. Its together-threshold
  /// always tracks the problem's η.
  CorrelationClusteringOptions correlation;
  /// Hierarchical endgame: clusters merge while the average inter-cluster
  /// edge weight (absent edges count 0) is ≥ this.
  double merge_threshold = 0.5;
};

/// Stable registry name of a kind ("connected_components", ...).
const char* ClustererKindName(ClustererKind kind);

/// Parses a registry name; unknown names are InvalidArgument listing the
/// valid values (the message gterd sends over the wire).
Result<ClustererKind> ParseClustererKind(const std::string& name);

/// Every registered kind, in a stable order — the iteration surface for
/// the property suite and the eval harness.
const std::vector<ClustererKind>& AllClustererKinds();

/// Builds the endgame for `kind`.
std::unique_ptr<Clusterer> MakeClusterer(ClustererKind kind,
                                         const ClustererOptions& options = {});

}  // namespace gter

#endif  // GTER_CORE_CLUSTERER_H_
