#ifndef GTER_CORE_ITER_MATRIX_H_
#define GTER_CORE_ITER_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/graph/bipartite_graph.h"

namespace gter {

/// The matrix formulation of ITER from §V-D (Theorem 1): the update rules
///
///   y = Sᵀ x        (pair scores from term weights)
///   x = D⁻¹ S C y   (term weights from probability-weighted pair scores)
///
/// compose into y ← (Sᵀ D⁻¹ S C) y, whose normalized iterates converge to
/// the principal eigenvector of M = Sᵀ D⁻¹ S C. This module computes that
/// stationary solution directly by power iteration — it exists to validate
/// the convergence theorem against Algorithm 1's sweep implementation and
/// to expose the spectral view (eigenvalue, residual) for analysis.
struct IterMatrixOptions {
  size_t max_iterations = 500;
  /// Stop when the L2 change of the unit-normalized iterate drops below
  /// this.
  double tolerance = 1e-12;
  uint64_t seed = 42;
  /// Minimum terms/pairs per parallel chunk.
  size_t grain = 256;
};

struct IterMatrixResult {
  /// Stationary pair-score vector y* (unit L2 norm), indexed by PairId.
  std::vector<double> pair_scores;
  /// x* = D⁻¹ S C y*, indexed by TermId.
  std::vector<double> term_weights;
  /// Rayleigh-quotient estimate of the principal eigenvalue of M.
  double eigenvalue = 0.0;
  /// ‖M y* − λ y*‖₂ — how close the returned vector is to an eigenvector.
  double residual = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Runs the power iteration on M = Sᵀ D⁻¹ S C built from `graph` and the
/// per-pair edge probabilities C (the CliqueRank output, or all-ones).
/// The M·y applications are parallelized over `ctx.pool` (bit-identical
/// for any thread count); cancellation is polled at entry and once per
/// power iteration.
Result<IterMatrixResult> RunIterMatrixForm(
    const BipartiteGraph& graph, const std::vector<double>& edge_probability,
    const IterMatrixOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_ITER_MATRIX_H_
