#ifndef GTER_CORE_FUSION_H_
#define GTER_CORE_FUSION_H_

#include <functional>
#include <memory>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/common/metrics.h"
#include "gter/core/cliquerank.h"
#include "gter/core/clusterer.h"
#include "gter/core/iter.h"
#include "gter/core/rss.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"

namespace gter {

/// Configuration of the full ITER ⇄ CliqueRank fusion framework (§IV).
struct FusionConfig {
  IterOptions iter;
  CliqueRankOptions cliquerank;
  /// Outer reinforcement rounds; the paper runs 5 (§VII-C).
  size_t rounds = 5;
  /// Matching-probability threshold η; the paper sets 0.98 universally.
  double eta = 0.98;
  /// Replace CliqueRank by Monte-Carlo RSS (for the Table III speedup
  /// comparison); much slower on dense graphs.
  bool use_rss = false;
  RssOptions rss;
  PtMode pt_mode = PtMode::kPaper;
  /// Clustering endgame applied to the final probabilities (DESIGN.md §4f).
  /// The default reproduces the historical behaviour: transitive closure
  /// of the p ≥ η decisions.
  ClustererKind clusterer = ClustererKind::kConnectedComponents;
  ClustererOptions clusterer_options;
  /// Wall-clock budget for the match-emission endgame, in milliseconds
  /// (DESIGN.md §4g). 0 = unlimited: the progressive scheduler visits every
  /// pair (emitting exactly the batch match set) and the configured
  /// clusterer runs as usual. When the budget trips mid-scan, the result
  /// carries the scheduler's anytime snapshot — the highest-benefit prefix
  /// of matches and its transitive closure — with `budget_exhausted` set,
  /// and the configured endgame is skipped (it would need all decisions).
  double progressive_budget_ms = 0.0;
};

/// Timing and quality snapshot after each reinforcement round.
struct FusionRoundStats {
  size_t round = 0;  // 1-based
  double iter_seconds = 0.0;
  double probability_seconds = 0.0;  // CliqueRank or RSS
  double cumulative_seconds = 0.0;
  size_t iter_iterations = 0;
};

/// Output of a full fusion run.
struct FusionResult {
  /// Learned term discrimination power, by TermId.
  std::vector<double> term_weights;
  /// Learned pair similarity s(r_i, r_j), by PairId.
  std::vector<double> pair_scores;
  /// Matching probability p(r_i, r_j), by PairId.
  std::vector<double> pair_probability;
  /// p ≥ η decisions, by PairId.
  std::vector<bool> matches;
  /// Entity partition from the configured clustering endgame: dense
  /// cluster label per record.
  std::vector<uint32_t> cluster_of;
  size_t num_clusters = 0;
  /// The progressive scheduler's budget tripped before every pair was
  /// visited; `matches`/`cluster_of` are the anytime prefix snapshot.
  bool budget_exhausted = false;
  /// Pairs the scheduler visited (== pair count when not truncated).
  size_t pairs_considered = 0;
  std::vector<FusionRoundStats> round_stats;
  double total_seconds = 0.0;
  /// Σ|Δx| trace of the *first* ITER run (Figure 5).
  std::vector<double> first_iter_trace;
};

/// Declares the pipeline's well-known counters and gauges at zero so a
/// `--metrics_out` JSON dump has a stable schema — consumers see
/// `rss/walks_run` etc. even on runs where that stage never executed.
void DeclarePipelineMetrics(MetricsRegistry* registry);

/// The unsupervised fusion pipeline. Construction builds the candidate pair
/// space and the term–pair bipartite graph; Run() then alternates ITER and
/// CliqueRank for the configured number of rounds:
///
///   p ≡ 1 → ITER → s → record graph → CliqueRank → p → ITER → ...
///
/// The per-round observer (if set) fires after each CliqueRank with the
/// state so far — the Table V instrumentation hook.
class FusionPipeline {
 public:
  /// `dataset` must outlive the pipeline and should already be
  /// preprocessed (RemoveFrequentTerms).
  FusionPipeline(const Dataset& dataset, FusionConfig config);

  /// Observer invoked after round r (1-based) with the in-progress result.
  using RoundObserver =
      std::function<void(size_t round, const FusionResult& snapshot)>;
  void set_round_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  /// Runs the configured number of reinforcement rounds. Every stage
  /// executes on `ctx` (worker pool, metrics/trace sinks, SIMD level,
  /// cancellation); results are bit-identical for any thread count.
  ///
  /// Cancellation is polled at every round boundary and inside every
  /// stage, so a tripped token unwinds within one stage-internal step.
  /// On `Cancelled`/`DeadlineExceeded`, `partial()` holds everything the
  /// run completed (round_stats for finished rounds, the last finished
  /// stage's vectors, total_seconds) — the anytime-resolution contract.
  Result<FusionResult> Run(const ExecContext& ctx = DefaultExecContext());

  /// State accumulated by the last Run(): meaningful after a cancelled
  /// run; moved-from (empty) after a successful one, whose value Run()
  /// returned.
  const FusionResult& partial() const { return partial_; }

  const PairSpace& pairs() const { return pairs_; }
  const BipartiteGraph& bipartite() const { return bipartite_; }
  const Dataset& dataset() const { return dataset_; }

 private:
  const Dataset& dataset_;
  FusionConfig config_;
  PairSpace pairs_;
  BipartiteGraph bipartite_;
  RoundObserver observer_;
  FusionResult partial_;
};

}  // namespace gter

#endif  // GTER_CORE_FUSION_H_
