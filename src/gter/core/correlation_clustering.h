#ifndef GTER_CORE_CORRELATION_CLUSTERING_H_
#define GTER_CORE_CORRELATION_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Correlation clustering over the matching probabilities — the clustering
/// machinery ACD [12] uses, offered here as a principled alternative to
/// plain transitive closure.
///
/// Transitive closure propagates every accepted edge unconditionally: one
/// false positive merges two whole clusters. Correlation clustering instead
/// assigns each record to the cluster that most of its probability mass
/// agrees with, so an isolated wrong edge is outvoted by the many
/// within-cluster edges around it.
///
/// Implementation: randomized pivoting (KwikCluster, Ailon et al.) with
/// probability-weighted assignment, followed by local-move refinement that
/// greedily relocates records while the correlation objective improves.
struct CorrelationClusteringOptions {
  /// A pair "agrees" with being together when p ≥ this; below, the pair
  /// votes to be apart. Matches the fusion η by default.
  double together_threshold = 0.98;
  /// Pivot passes with different random orders; the best objective wins.
  size_t restarts = 3;
  /// Local-move refinement sweeps after pivoting.
  size_t refine_sweeps = 2;
  uint64_t seed = 29;
};

struct CorrelationClusteringResult {
  /// Dense cluster label per record.
  std::vector<uint32_t> cluster_of;
  /// The correlation objective: Σ_within (2·[p≥θ]−1) − Σ_cross (2·[p≥θ]−1)
  /// over candidate pairs (higher is better).
  double objective = 0.0;
};

/// Clusters `num_records` records given per-candidate-pair probabilities.
/// Pairs absent from `pairs` are treated as "apart" votes of weight 0 —
/// they never pull records together but do not penalize separation.
/// Metrics go to `ctx.metrics` with ambient fallback; cancellation is
/// polled at entry and once per restart.
Result<CorrelationClusteringResult> CorrelationCluster(
    size_t num_records, const PairSpace& pairs,
    const std::vector<double>& pair_probability,
    const CorrelationClusteringOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_CORRELATION_CLUSTERING_H_
