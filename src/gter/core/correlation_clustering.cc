#include "gter/core/correlation_clustering.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/status.h"

namespace gter {
namespace {

/// Per-record adjacency over candidate pairs with ±1 votes.
struct VoteGraph {
  std::vector<std::vector<std::pair<uint32_t, int>>> adj;  // (neighbor, vote)

  VoteGraph(size_t num_records, const PairSpace& pairs,
            const std::vector<double>& probability, double threshold)
      : adj(num_records) {
    for (PairId p = 0; p < pairs.size(); ++p) {
      const RecordPair& rp = pairs.pair(p);
      int vote = probability[p] >= threshold ? 1 : -1;
      adj[rp.a].emplace_back(rp.b, vote);
      adj[rp.b].emplace_back(rp.a, vote);
    }
  }
};

double Objective(const VoteGraph& graph,
                 const std::vector<uint32_t>& cluster_of) {
  double total = 0.0;
  for (uint32_t r = 0; r < graph.adj.size(); ++r) {
    for (const auto& [nb, vote] : graph.adj[r]) {
      if (nb < r) continue;  // count each pair once
      bool together = cluster_of[r] == cluster_of[nb];
      total += together ? vote : -vote;
    }
  }
  return total;
}

std::vector<uint32_t> PivotPass(const VoteGraph& graph, Rng* rng) {
  const size_t n = graph.adj.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);
  std::vector<uint32_t> cluster_of(n, kUnassigned);
  uint32_t next_cluster = 0;
  for (uint32_t pivot : order) {
    if (cluster_of[pivot] != kUnassigned) continue;
    uint32_t c = next_cluster++;
    cluster_of[pivot] = c;
    for (const auto& [nb, vote] : graph.adj[pivot]) {
      if (vote > 0 && cluster_of[nb] == kUnassigned) cluster_of[nb] = c;
    }
  }
  return cluster_of;
}

/// Greedy local moves: relocate each record to the adjacent cluster where
/// its votes agree most (or to a singleton when every cluster is net
/// negative). Returns true when any move was made.
bool RefineSweep(const VoteGraph& graph, std::vector<uint32_t>* cluster_of,
                 uint32_t* next_cluster) {
  bool moved = false;
  std::unordered_map<uint32_t, int> score;
  for (uint32_t r = 0; r < graph.adj.size(); ++r) {
    score.clear();
    for (const auto& [nb, vote] : graph.adj[r]) {
      score[(*cluster_of)[nb]] += vote;
    }
    uint32_t current = (*cluster_of)[r];
    // Own-cluster score must not count the record itself (it has no self
    // edge, so the map is already correct).
    int best_score = 0;  // singleton baseline
    uint32_t best_cluster = static_cast<uint32_t>(-1);
    for (const auto& [c, s] : score) {
      if (s > best_score) {
        best_score = s;
        best_cluster = c;
      }
    }
    int current_score = 0;
    auto it = score.find(current);
    if (it != score.end()) current_score = it->second;
    if (best_score > current_score) {
      (*cluster_of)[r] = best_cluster == static_cast<uint32_t>(-1)
                             ? (*next_cluster)++
                             : best_cluster;
      moved = true;
    } else if (best_score <= 0 && current_score < 0) {
      // Everything is net negative: isolate.
      (*cluster_of)[r] = (*next_cluster)++;
      moved = true;
    }
  }
  return moved;
}

std::vector<uint32_t> Densify(const std::vector<uint32_t>& labels) {
  std::unordered_map<uint32_t, uint32_t> remap;
  std::vector<uint32_t> out(labels.size());
  uint32_t next = 0;
  for (size_t r = 0; r < labels.size(); ++r) {
    auto [it, inserted] = remap.emplace(labels[r], next);
    if (inserted) ++next;
    out[r] = it->second;
  }
  return out;
}

}  // namespace

Result<CorrelationClusteringResult> CorrelationCluster(
    size_t num_records, const PairSpace& pairs,
    const std::vector<double>& pair_probability,
    const CorrelationClusteringOptions& options, const ExecContext& ctx) {
  GTER_CHECK(pair_probability.size() == pairs.size());
  GTER_CHECK(options.restarts >= 1);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  ScopedTimer total_timer(metrics, ctx.trace_or_ambient(), "cluster/total");
  VoteGraph graph(num_records, pairs, pair_probability,
                  options.together_threshold);

  CorrelationClusteringResult best;
  best.objective = -1e300;
  Rng master(options.seed);
  for (size_t restart = 0; restart < options.restarts; ++restart) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    GTER_TRACE_SPAN("cluster/restart", "cluster",
                    TraceArg{"restart", static_cast<double>(restart)});
    Rng rng = master.Fork(restart);
    std::vector<uint32_t> labels = PivotPass(graph, &rng);
    uint32_t next_cluster = 0;
    for (uint32_t l : labels) next_cluster = std::max(next_cluster, l + 1);
    for (size_t sweep = 0; sweep < options.refine_sweeps; ++sweep) {
      if (!RefineSweep(graph, &labels, &next_cluster)) break;
    }
    double objective = Objective(graph, labels);
    if (objective > best.objective) {
      best.objective = objective;
      best.cluster_of = std::move(labels);
    }
  }
  best.cluster_of = Densify(best.cluster_of);
  if (metrics != nullptr) {
    metrics->AddCounter("cluster/restarts", options.restarts);
    uint32_t num_clusters = 0;
    for (uint32_t l : best.cluster_of) {
      num_clusters = std::max(num_clusters, l + 1);
    }
    metrics->SetGauge("cluster/clusters", static_cast<double>(num_clusters));
  }
  return best;
}

}  // namespace gter
