#ifndef GTER_CORE_ITER_H_
#define GTER_CORE_ITER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/graph/bipartite_graph.h"
#include "gter/graph/dynamic_bipartite.h"

namespace gter {

/// Per-sweep term-weight normalization of Algorithm 1, line 7.
enum class IterNormalization {
  /// The paper's default x ← 1/(1 + 1/x) = x/(1+x), mapping into (0, 1).
  kLogistic,
  /// L2 normalization Σ x² = 1 (mentioned as an alternative in §V-C).
  kL2,
};

/// Options for the ITER algorithm (Algorithm 1).
struct IterOptions {
  /// Stop when Σ_t |Δx_t| falls below this.
  double tolerance = 1e-7;
  size_t max_iterations = 100;
  IterNormalization normalization = IterNormalization::kLogistic;
  /// Seed for the random initialization of x_t in (0, 1).
  uint64_t seed = 42;
  /// Record Σ|Δx| per sweep (the Figure 5 trace).
  bool track_convergence = false;
  /// Minimum terms/pairs per parallel chunk.
  size_t grain = 256;
  /// Fuse the per-term passes of each sweep (default): the weight update
  /// (lines 5–6), the normalization (line 7) and the convergence-delta
  /// reduction run as one pass over the term vector — chunked at the same
  /// fixed reduction width as the staged ChunkedSum and combined serially
  /// in chunk order, so the delta (and hence the convergence decision and
  /// every weight) is bit-identical to the staged three-pass sweep at any
  /// thread count. L2 normalization needs the global norm and therefore
  /// keeps two passes (update+norm², then scale+delta). The flag exists so
  /// the differential tests can pin fused against staged.
  bool fuse_sweeps = true;
};

/// Output of one ITER run.
struct IterResult {
  /// Learned term weight x_t (discrimination power), indexed by TermId.
  std::vector<double> term_weights;
  /// Learned pair similarity s(r_i, r_j), indexed by PairId.
  std::vector<double> pair_scores;
  size_t iterations = 0;
  bool converged = false;
  /// Σ_t |Δx_t| after each sweep, when track_convergence is set.
  std::vector<double> update_trace;
};

/// Runs ITER over the bipartite graph. `edge_probability[p]` is the
/// matching probability p(r_i, r_j) used as the pair→term edge weight of
/// Eq. 6 — pass a vector of 1.0 for the first fusion round (§V-C), or the
/// CliqueRank output in later rounds.
///
/// Execution (worker pool, metrics/trace sinks, SIMD level, cancellation)
/// comes from `ctx`. The propagation sweeps are parallelized over
/// `ctx.pool`; each term/pair accumulates over its own adjacency in a
/// fixed order, so results are bit-identical for any thread count.
/// Cancellation is polled at entry and once per sweep; a tripped token
/// yields `Cancelled`/`DeadlineExceeded` instead of a result.
Result<IterResult> RunIter(const BipartiteGraph& graph,
                           const std::vector<double>& edge_probability,
                           const IterOptions& options = {},
                           const ExecContext& ctx = DefaultExecContext());

/// Options for the dirty-region ITER mode (DESIGN.md §4g).
struct IterDirtyOptions {
  /// A term re-enters the frontier while its sweep-over-sweep change
  /// exceeds this. Far tighter than IterOptions::tolerance (a global L1
  /// sum): the frontier rule is per-term, and the incremental-vs-batch
  /// differential contract (≤ 1e-10 drift after many ingests) needs each
  /// converge to park every weight within a hair of the fixed point.
  double frontier_tolerance = 1e-13;
  /// Noise-floor guard for the frontier rule. A term's update gathers
  /// Σ_{p∋t} s_p before splitting out the self-contribution, so its result
  /// carries rounding noise proportional to that gathered magnitude — for a
  /// hub term with 10k adjacent pairs the noise floor sits around 1e-12,
  /// *above* the absolute tolerance, and demanding sub-rounding stability
  /// would keep such terms jittering in the frontier forever (a worklist
  /// that never drains). A term therefore re-enters the frontier only when
  /// its change exceeds max(frontier_tolerance, noise_floor · ε · Σ s_p).
  /// The extra slack is the update's own conditioning limit, far inside the
  /// 1e-10 differential contract.
  double noise_floor = 256.0;
  /// Stall detector. The worklist's partial refreshes act as time delays
  /// between coupled terms, and delayed relaxation can sustain rotation
  /// modes of near-unit gain: rounding jitter from hub terms circulates
  /// through mid-degree neighbors as a ~1e-11 limit cycle that keeps a
  /// small frontier alive to the sweep cap. The signature is a sweep whose
  /// largest |Δx| sits below `stall_delta` (numerical dust — far under any
  /// real signal, far over the stationary state's exact zeros) while the
  /// frontier persists. After `stall_sweeps` consecutive dust sweeps the
  /// run escalates (sticky) to full synchronous sweeps, which have no
  /// delays, no such modes, and reach a bitwise-stationary fixed point. A
  /// genuinely converging run crosses the dust band in a sweep or two and
  /// never trips this.
  double stall_delta = 1e-9;
  size_t stall_sweeps = 3;
  /// Hub-coupled subsystem solve. A single ingest whose terms include a
  /// hub (a term on thousands of pairs — street suffixes, shared venue
  /// words) perturbs a small strongly-coupled set: the hubs plus the
  /// mid-degree terms they share pairs with. The worklist contracts that
  /// set only ~half a decade per sweep, and every sweep re-gathers the
  /// hubs' full adjacencies — tens of thousands of pair reads to move a
  /// few dozen terms by 1e-8. When the frontier still holds a hub after
  /// `subsystem_min_sweeps` sweeps and the sweep's largest move is under
  /// `subsystem_delta` (the slow tail — real signal, just converging
  /// slowly), the run freezes the frontier's one-hop term closure (at most
  /// `subsystem_max_terms`, else it falls back to the stall path), builds
  /// the closed-form reduced system total_t = base_t + Σ_u M[t,u]·x_u
  /// (M[t,u] = pairs shared by t and u — hub↔hub coupling collapses from
  /// thousands of pair reads to one multiply), and iterates it serially to
  /// bitwise stationarity. The result is written back and re-verified by a
  /// normal exact sweep, which recruits any neighbor the reduced system
  /// missed (at most `subsystem_max_rounds` solves per run, then the stall
  /// escalation backstops). The solve is plain serial arithmetic over
  /// sorted ids — bit-identical at any thread count.
  double subsystem_delta = 1e-7;
  size_t subsystem_min_sweeps = 6;
  /// Parking rule for post-solve verification sweeps. The reduced solve is
  /// bitwise stationary in *its own* summation order; the exact gather sums
  /// the same mass in a different order, so verification still sees hubs
  /// move by their rounding floor (~ε · Σ s_p ≈ 1e-11 at 10k pairs) — dust
  /// that sits right at the frontier rule's noise guard and can ping-pong
  /// closure subsets indefinitely. After at least one solve, a verification
  /// sweep whose largest move is below this parks the run: the distance to
  /// the exact fixed point is conditioning-limited rounding, well inside
  /// the 1e-10 differential contract.
  double subsystem_park_delta = 1e-10;
  size_t subsystem_hub_degree = 1024;
  size_t subsystem_max_terms = 1024;
  size_t subsystem_max_rounds = 3;
  /// Parking rule for the post-stall full mode. The full map contracts
  /// geometrically toward bitwise stationarity, but grinding out the last
  /// decades of dust costs a dozen extra sweeps for nothing: once a full
  /// sweep's largest move falls below this, the run parks and reports
  /// converged — the remaining distance to the fixed point is this times a
  /// contraction-ratio factor, far inside the 1e-10 differential contract.
  /// Applies only after a stall escalation; escape-hatch full runs (every
  /// batch build) still run to exact stationarity.
  double stall_park_delta = 1e-12;
  /// Hard sweep cap; the worklist normally drains long before this.
  size_t max_sweeps = 1000;
  /// Escape hatch: when the frontier covers more than this fraction of all
  /// terms, the run degrades to full sweeps (same arithmetic, no worklist
  /// bookkeeping) — at that size the global sweep is cheaper than tracking.
  /// Once tripped it stays full for the rest of the run.
  double full_resweep_threshold = 0.25;
  /// Minimum elements per parallel chunk.
  size_t grain = 256;
};

/// Output of one dirty-region run.
struct IterDirtyResult {
  size_t sweeps = 0;
  bool converged = false;
  /// The run degraded to full sweeps (frontier-size escape hatch or stall
  /// escalation).
  bool used_full_resweep = false;
  /// The stall detector fired: the worklist was cycling on numerical dust
  /// and the run finished in full synchronous mode.
  bool stall_escalated = false;
  /// Hub-coupled subsystem solves performed (see
  /// IterDirtyOptions::subsystem_delta).
  size_t subsystem_solves = 0;
  /// Terms whose weight changed, ascending.
  std::vector<TermId> touched_terms;
  /// Pairs whose score was refreshed, ascending.
  std::vector<PairId> touched_pairs;
};

/// Re-converges ITER over `graph` starting from the invalidated frontier
/// `dirty_terms`, updating `term_weights` / `pair_scores` in place and
/// touching only the region reachable from the frontier. Each sweep:
/// refresh s of pairs adjacent to the frontier, recompute x of terms
/// adjacent to those pairs (full gathers — never deltas, so no error
/// accumulates), and the next frontier is the terms that moved more than
/// `frontier_tolerance`. On exit every touched pair's score is refreshed
/// against the final weights, so s ≡ Σ_{t∈p} x_t holds exactly.
///
/// The fixed point is the prob ≡ 1 ITER map (the §V-C first-round
/// semantics, logistic normalization) — a concave monotone map with one
/// positive attractor, so a drained worklist lands on the same weights as a
/// batch run over the final graph regardless of ingest order. Each term
/// update solves its own one-dimensional fixed point exactly (splitting
/// out the term's self-contribution to its scores), which removes the
/// harmonic tail of the plain sweep for weakly supported terms without
/// changing the fixed-point equations. Passing a
/// frontier of *all* terms with weights initialized to any positive
/// constant therefore IS the batch build (the escape hatch fires
/// immediately). Gathers are phase-separated over sorted worklists and
/// chunked at a fixed width, so results are bit-identical at any thread
/// count. Cancellation is polled at entry and once per sweep; a tripped
/// token yields the error status with the vectors mid-converge but
/// structurally valid — re-run with a full frontier to recover.
Result<IterDirtyResult> RunIterDirty(
    const DynamicBipartiteGraph& graph, const std::vector<TermId>& dirty_terms,
    const IterDirtyOptions& options, std::vector<double>* term_weights,
    std::vector<double>* pair_scores,
    const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_ITER_H_
