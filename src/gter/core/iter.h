#ifndef GTER_CORE_ITER_H_
#define GTER_CORE_ITER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/graph/bipartite_graph.h"

namespace gter {

/// Per-sweep term-weight normalization of Algorithm 1, line 7.
enum class IterNormalization {
  /// The paper's default x ← 1/(1 + 1/x) = x/(1+x), mapping into (0, 1).
  kLogistic,
  /// L2 normalization Σ x² = 1 (mentioned as an alternative in §V-C).
  kL2,
};

/// Options for the ITER algorithm (Algorithm 1).
struct IterOptions {
  /// Stop when Σ_t |Δx_t| falls below this.
  double tolerance = 1e-7;
  size_t max_iterations = 100;
  IterNormalization normalization = IterNormalization::kLogistic;
  /// Seed for the random initialization of x_t in (0, 1).
  uint64_t seed = 42;
  /// Record Σ|Δx| per sweep (the Figure 5 trace).
  bool track_convergence = false;
  /// Minimum terms/pairs per parallel chunk.
  size_t grain = 256;
  /// Fuse the per-term passes of each sweep (default): the weight update
  /// (lines 5–6), the normalization (line 7) and the convergence-delta
  /// reduction run as one pass over the term vector — chunked at the same
  /// fixed reduction width as the staged ChunkedSum and combined serially
  /// in chunk order, so the delta (and hence the convergence decision and
  /// every weight) is bit-identical to the staged three-pass sweep at any
  /// thread count. L2 normalization needs the global norm and therefore
  /// keeps two passes (update+norm², then scale+delta). The flag exists so
  /// the differential tests can pin fused against staged.
  bool fuse_sweeps = true;
};

/// Output of one ITER run.
struct IterResult {
  /// Learned term weight x_t (discrimination power), indexed by TermId.
  std::vector<double> term_weights;
  /// Learned pair similarity s(r_i, r_j), indexed by PairId.
  std::vector<double> pair_scores;
  size_t iterations = 0;
  bool converged = false;
  /// Σ_t |Δx_t| after each sweep, when track_convergence is set.
  std::vector<double> update_trace;
};

/// Runs ITER over the bipartite graph. `edge_probability[p]` is the
/// matching probability p(r_i, r_j) used as the pair→term edge weight of
/// Eq. 6 — pass a vector of 1.0 for the first fusion round (§V-C), or the
/// CliqueRank output in later rounds.
///
/// Execution (worker pool, metrics/trace sinks, SIMD level, cancellation)
/// comes from `ctx`. The propagation sweeps are parallelized over
/// `ctx.pool`; each term/pair accumulates over its own adjacency in a
/// fixed order, so results are bit-identical for any thread count.
/// Cancellation is polled at entry and once per sweep; a tripped token
/// yields `Cancelled`/`DeadlineExceeded` instead of a result.
Result<IterResult> RunIter(const BipartiteGraph& graph,
                           const std::vector<double>& edge_probability,
                           const IterOptions& options = {},
                           const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_ITER_H_
