#include "gter/core/model_io.h"

#include "gter/common/parse_number.h"
#include "gter/er/csv.h"

namespace gter {

Status SaveTermWeights(const std::string& path, const Dataset& dataset,
                       const std::vector<double>& term_weights) {
  if (term_weights.size() != dataset.vocabulary().size()) {
    return Status::InvalidArgument("term weight vector size mismatch");
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"term", "weight"});
  for (TermId t = 0; t < term_weights.size(); ++t) {
    if (term_weights[t] == 0.0) continue;
    // %.17g, not std::to_string: 6 significant digits would make
    // save→load→resolve diverge from the in-memory run.
    rows.push_back({dataset.vocabulary().TermOf(t),
                    FormatDouble(term_weights[t])});
  }
  return WriteCsvFile(path, rows);
}

Result<std::vector<double>> LoadTermWeights(const std::string& path,
                                            const Dataset& dataset) {
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  std::vector<double> weights(dataset.vocabulary().size(), 0.0);
  const auto& data = rows.value();
  for (size_t i = 1; i < data.size(); ++i) {
    if (data[i].size() != 2) {
      return Status::InvalidArgument("malformed term weight row " +
                                     std::to_string(i));
    }
    TermId t = dataset.vocabulary().Lookup(data[i][0]);
    if (t == kInvalidTermId) {
      return Status::NotFound("term '" + data[i][0] +
                              "' not in the dataset vocabulary");
    }
    auto weight = ParseDouble(data[i][1]);
    if (!weight.ok()) {
      return Status::InvalidArgument("term weight row " + std::to_string(i) +
                                     ": " + weight.status().message());
    }
    weights[t] = weight.value();
  }
  return weights;
}

Status SaveMatches(const std::string& path, const PairSpace& pairs,
                   const FusionResult& result) {
  if (result.matches.size() != pairs.size() ||
      result.pair_probability.size() != pairs.size()) {
    return Status::InvalidArgument("fusion result size mismatch");
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record_a", "record_b", "probability"});
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (!result.matches[p]) continue;
    const RecordPair& rp = pairs.pair(p);
    rows.push_back({std::to_string(rp.a), std::to_string(rp.b),
                    FormatDouble(result.pair_probability[p])});
  }
  return WriteCsvFile(path, rows);
}

Result<std::vector<bool>> LoadMatches(const std::string& path,
                                      const PairSpace& pairs) {
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  std::vector<bool> matches(pairs.size(), false);
  const auto& data = rows.value();
  for (size_t i = 1; i < data.size(); ++i) {
    if (data[i].size() != 3) {
      return Status::InvalidArgument("malformed match row " +
                                     std::to_string(i));
    }
    auto a = ParseUint32(data[i][0]);
    auto b = ParseUint32(data[i][1]);
    if (!a.ok() || !b.ok()) {
      return Status::InvalidArgument(
          "match row " + std::to_string(i) + ": " +
          (a.ok() ? b.status().message() : a.status().message()));
    }
    PairId p = pairs.Find(a.value(), b.value());
    if (p == kInvalidPairId) {
      return Status::NotFound("pair (" + data[i][0] + "," + data[i][1] +
                              ") not in the candidate space");
    }
    matches[p] = true;
  }
  return matches;
}

}  // namespace gter
