#include "gter/core/resolver.h"

#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {

ResolutionResult ResolveFromMatches(const Dataset& dataset,
                                    const PairSpace& pairs,
                                    const std::vector<bool>& matches) {
  GTER_CHECK(matches.size() == pairs.size());
  ResolutionResult result;
  result.matches = matches;
  UnionFind uf(dataset.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (matches[p]) {
      const RecordPair& rp = pairs.pair(p);
      uf.Union(rp.a, rp.b);
    }
  }
  result.cluster_of = uf.ComponentLabels();
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> MatchedPairs(
    const PairSpace& pairs, const std::vector<bool>& matches) {
  GTER_CHECK(matches.size() == pairs.size());
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (matches[p]) {
      const RecordPair& rp = pairs.pair(p);
      out.emplace_back(rp.a, rp.b);
    }
  }
  return out;
}

}  // namespace gter
