#include "gter/core/rss.h"

#include <algorithm>
#include <cmath>

#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"

namespace gter {
namespace {

/// Per-node powered edge weights (w/rowmax)^α plus their sum, precomputed
/// once so each walk step is O(deg) without pow() calls.
struct PoweredRows {
  std::vector<std::vector<double>> powered;  // per node, parallel to Neighbors
  std::vector<double> row_sum;
};

PoweredRows PrecomputeRows(const RecordGraph& graph, double alpha,
                           ThreadPool* pool) {
  PoweredRows rows;
  rows.powered.resize(graph.num_nodes());
  rows.row_sum.resize(graph.num_nodes(), 0.0);
  ParallelFor(pool, 0, graph.num_nodes(), /*grain=*/64,
              [&](size_t lo, size_t hi) {
    for (RecordId r = lo; r < hi; ++r) {
      auto wts = graph.Weights(r);
      auto& out = rows.powered[r];
      out.resize(wts.size());
      double row_max = 0.0;
      for (double w : wts) row_max = std::max(row_max, w);
      if (row_max <= 0.0) {
        // Degenerate node: uniform transitions.
        std::fill(out.begin(), out.end(), 1.0);
        rows.row_sum[r] = static_cast<double>(out.size());
        continue;
      }
      double sum = 0.0;
      for (size_t k = 0; k < wts.size(); ++k) {
        out[k] = std::pow(wts[k] / row_max, alpha);
        sum += out[k];
      }
      rows.row_sum[r] = sum;
    }
  });
  return rows;
}

/// Per-chunk walk statistics, accumulated lock-free and merged into the
/// registry once per chunk. Collected only when a registry is in play.
struct WalkStats {
  uint64_t walks = 0;
  uint64_t early_stops = 0;
  uint64_t target_hits = 0;
  Histogram steps;
};

/// One rectified walk from `start` toward `target` (Algorithm 3).
/// Returns 1 on reaching the target within S steps, 0 otherwise.
/// `stats` (nullable) records the walk's step count and outcome.
int RandomWalk(const RecordGraph& graph, const PoweredRows& rows,
               RecordId start, RecordId target, const RssOptions& options,
               Rng* rng, WalkStats* stats) {
  int hit = 0;
  bool early = false;
  size_t steps_taken = options.max_steps;
  RecordId cur = start;
  for (size_t step = 0; step < options.max_steps; ++step) {
    auto neigh = graph.Neighbors(cur);
    if (neigh.empty()) {
      steps_taken = step;
      break;
    }
    const auto& powered = rows.powered[cur];
    double total = rows.row_sum[cur];
    // Lines 3–4: boost the edge toward the target, when present.
    int64_t target_idx = -1;
    double boosted = 0.0;
    if (options.use_boost) {
      auto it = std::lower_bound(neigh.begin(), neigh.end(), target);
      if (it != neigh.end() && *it == target) {
        target_idx = it - neigh.begin();
        double b = rng->OpenUniformDouble();
        boosted = std::pow(1.0 + b, options.alpha) * powered[target_idx];
        total = total - powered[target_idx] + boosted;
      }
    }
    // Line 5: sample the next node from the boosted distribution.
    double u = rng->UniformDouble() * total;
    RecordId next = neigh.back();
    double acc = 0.0;
    for (size_t k = 0; k < neigh.size(); ++k) {
      double w = (static_cast<int64_t>(k) == target_idx) ? boosted : powered[k];
      acc += w;
      if (u < acc) {
        next = neigh[k];
        break;
      }
    }
    if (next == target) {  // lines 6–7
      hit = 1;
      steps_taken = step + 1;
      break;
    }
    if (options.early_stop && !graph.HasEdge(next, target)) {
      // Lines 8–9: walked out of the target's clique.
      early = true;
      steps_taken = step + 1;
      break;
    }
    cur = next;
  }
  if (stats != nullptr) {
    ++stats->walks;
    stats->early_stops += early ? 1 : 0;
    stats->target_hits += hit;
    stats->steps.Observe(static_cast<double>(steps_taken));
  }
  return hit;
}

}  // namespace

Result<std::vector<double>> RunRss(const RecordGraph& graph,
                                   const PairSpace& pairs,
                                   const RssOptions& options,
                                   const ExecContext& ctx) {
  GTER_CHECK(options.num_walks >= 2);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  ScopedTimer total_timer(metrics, ctx.trace_or_ambient(), "rss/total");
  PoweredRows rows = PrecomputeRows(graph, options.alpha, ctx.pool);
  std::vector<double> probability(pairs.size(), 0.0);
  const Rng master(options.seed);
  // Odd walk counts give the extra walk to the forward direction; every
  // requested walk runs and the estimate is normalized by the true count.
  const size_t forward = (options.num_walks + 1) / 2;
  const size_t backward = options.num_walks - forward;
  // Each pair forks its own RNG stream off the (const, shared) master and
  // writes only probability[p], so chunks are independent and the result is
  // bit-identical for any thread count.
  ParallelFor(ctx.pool, 0, pairs.size(), options.grain,
              [&](size_t lo, size_t hi) {
    GTER_TRACE_SPAN("rss/chunk", "rss",
                    TraceArg{"pairs", static_cast<double>(hi - lo)});
    // Walk stats accumulate per chunk (no locks in the walk loop) and
    // merge once at chunk end; with no registry nothing is collected.
    WalkStats chunk_stats;
    WalkStats* stats = metrics != nullptr ? &chunk_stats : nullptr;
    for (PairId p = lo; p < hi; ++p) {
      // Each pair is num_walks × max_steps of walking, so poll here: with
      // no token this is one pointer test; a tripped token abandons the
      // rest of the chunk (reported after the join).
      if (ctx.cancelled()) break;
      const RecordPair& rp = pairs.pair(p);
      Rng rng = master.Fork(p);
      size_t successes = 0;
      for (size_t m = 0; m < forward; ++m) {
        successes += RandomWalk(graph, rows, rp.a, rp.b, options, &rng, stats);
      }
      for (size_t m = 0; m < backward; ++m) {
        successes += RandomWalk(graph, rows, rp.b, rp.a, options, &rng, stats);
      }
      probability[p] = static_cast<double>(successes) /
                       static_cast<double>(options.num_walks);
    }
    if (metrics != nullptr) {
      metrics->AddCounter("rss/walks_run", chunk_stats.walks);
      metrics->AddCounter("rss/early_stops", chunk_stats.early_stops);
      metrics->AddCounter("rss/target_hits", chunk_stats.target_hits);
      metrics->MergeHistogram("rss/steps_per_walk", chunk_stats.steps);
    }
  });
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  return probability;
}

}  // namespace gter
