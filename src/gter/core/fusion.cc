#include "gter/core/fusion.h"

#include "gter/common/status.h"
#include "gter/common/timer.h"
#include "gter/core/progressive.h"
#include "gter/graph/record_graph.h"

namespace gter {

void DeclarePipelineMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const char* name :
       {"dataset/records", "dataset/tokens", "pairspace/pairs",
        "iter/runs", "iter/sweeps", "iter/converged",
        "rss/walks_run", "rss/early_stops", "rss/target_hits",
        "cliquerank/runs", "cliquerank/engine_dense",
        "cliquerank/engine_masked", "cliquerank/steps",
        "fusion/rounds", "fusion/matches", "cluster/endgame_runs",
        "iter/dirty_runs", "iter/dirty_sweeps", "iter/full_resweeps",
        "iter/stall_escalations", "iter/subsystem_solves",
        "ingest/records", "ingest/dirty_reiter_runs", "ingest/full_resweeps",
        "progressive/runs", "progressive/considered", "progressive/emitted",
        "progressive/budget_exhausted"}) {
    registry->DeclareCounter(name);
  }
  registry->SetGauge("cliquerank/scratch_bytes", 0.0);
  registry->SetGauge("cluster/clusters", 0.0);
  registry->SetGauge("ingest/last_converge_sweeps", 0.0);
  registry->SetGauge("ingest/last_touched_pairs", 0.0);
}

FusionPipeline::FusionPipeline(const Dataset& dataset, FusionConfig config)
    : dataset_(dataset),
      config_(config),
      pairs_(PairSpace::Build(dataset)),
      bipartite_(BipartiteGraph::Build(dataset, pairs_, config.pt_mode)) {}

Result<FusionResult> FusionPipeline::Run(const ExecContext& ctx) {
  GTER_CHECK(config_.rounds >= 1);
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "fusion/total");
  Stopwatch total_watch;
  // The run accumulates into partial_, so a cancelled run leaves everything
  // completed so far readable through partial().
  partial_ = FusionResult();
  FusionResult& result = partial_;
  // A cancelled stage unwinds here; stamp the elapsed time onto the
  // partial result before propagating the status.
  auto fail = [&](Status status) {
    result.total_seconds = total_watch.ElapsedSeconds();
    return Result<FusionResult>(std::move(status));
  };
  // §V-C: p(r_i, r_j) is initialized to 1 before CliqueRank derives it.
  result.pair_probability.assign(pairs_.size(), 1.0);

  for (size_t round = 1; round <= config_.rounds; ++round) {
    if (Status s = ctx.CheckCancel(); !s.ok()) return fail(std::move(s));
    ScopedTimer round_timer(metrics, recorder, "fusion/round",
                            TraceArg{"round", static_cast<double>(round)});
    FusionRoundStats stats;
    stats.round = round;

    Stopwatch iter_watch;
    IterOptions iter_options = config_.iter;
    // Track convergence on the first round only (Figure 5 uses the initial
    // randomly-initialized run).
    iter_options.track_convergence =
        config_.iter.track_convergence && round == 1;
    Result<IterResult> iter_run =
        RunIter(bipartite_, result.pair_probability, iter_options, ctx);
    if (!iter_run.ok()) return fail(iter_run.status());
    IterResult iter = std::move(iter_run).value();
    stats.iter_seconds = iter_watch.ElapsedSeconds();
    stats.iter_iterations = iter.iterations;
    if (round == 1 && iter_options.track_convergence) {
      result.first_iter_trace = iter.update_trace;
    }
    result.term_weights = std::move(iter.term_weights);
    result.pair_scores = std::move(iter.pair_scores);

    Stopwatch prob_watch;
    RecordGraph graph =
        RecordGraph::Build(dataset_.size(), pairs_, result.pair_scores);
    if (config_.use_rss) {
      Result<std::vector<double>> rss =
          RunRss(graph, pairs_, config_.rss, ctx);
      if (!rss.ok()) return fail(rss.status());
      result.pair_probability = std::move(rss).value();
    } else {
      Result<CliqueRankResult> cr =
          RunCliqueRank(graph, pairs_, config_.cliquerank, ctx);
      if (!cr.ok()) return fail(cr.status());
      result.pair_probability = std::move(cr).value().pair_probability;
    }
    stats.probability_seconds = prob_watch.ElapsedSeconds();
    stats.cumulative_seconds = total_watch.ElapsedSeconds();
    result.round_stats.push_back(stats);
    if (metrics != nullptr) metrics->AddCounter("fusion/rounds");

    if (observer_) observer_(round, result);
  }

  // Match emission goes through the progressive scheduler (DESIGN.md §4g):
  // pairs are visited in descending ITER-score order, so a budget-truncated
  // run has spent its time on the most promising pairs. Unlimited budget →
  // exactly the batch p ≥ η match set.
  ProgressiveOptions prog_options;
  prog_options.eta = config_.eta;
  prog_options.budget_seconds = config_.progressive_budget_ms / 1000.0;
  ProgressiveResult prog;
  if (Status s = RunProgressive(dataset_.size(), pairs_, result.pair_scores,
                                result.pair_probability, prog_options, &prog,
                                ctx);
      !s.ok()) {
    return fail(std::move(s));
  }
  result.matches = std::move(prog.matches);
  result.budget_exhausted = prog.budget_exhausted;
  result.pairs_considered = prog.pairs_considered;
  if (metrics != nullptr) {
    metrics->AddCounter("fusion/matches", prog.matched_count);
  }
  if (result.budget_exhausted) {
    // The configured endgame needs every decision; under a tripped budget
    // the scheduler's own transitive closure is the anytime answer.
    result.cluster_of = std::move(prog.cluster_of);
    result.num_clusters = prog.num_clusters;
    result.total_seconds = total_watch.ElapsedSeconds();
    return std::move(partial_);
  }

  // The clustering endgame: turn pairwise probabilities into entities.
  // A cancellation inside the clusterer still leaves the matches readable
  // through partial() — the endgame only adds to the result.
  ClusterProblem problem;
  problem.num_records = dataset_.size();
  problem.pairs = &pairs_;
  problem.pair_probability = &result.pair_probability;
  problem.eta = config_.eta;
  std::vector<uint32_t> source_of;
  if (dataset_.num_sources() > 1) {
    source_of.reserve(dataset_.size());
    for (const Record& r : dataset_.records()) source_of.push_back(r.source);
    problem.source_of = &source_of;
  }
  Result<Clustering> clustered =
      MakeClusterer(config_.clusterer, config_.clusterer_options)
          ->Cluster(problem, ctx);
  if (!clustered.ok()) return fail(clustered.status());
  result.num_clusters = clustered.value().num_clusters;
  result.cluster_of = std::move(clustered).value().cluster_of;

  result.total_seconds = total_watch.ElapsedSeconds();
  return std::move(partial_);
}

}  // namespace gter
