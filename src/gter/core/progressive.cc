#include "gter/core/progressive.h"

#include <algorithm>
#include <numeric>

#include "gter/common/metrics.h"
#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {

Status RunProgressive(size_t num_records, const PairSpace& pairs,
                      const std::vector<double>& benefit,
                      const std::vector<double>& pair_probability,
                      const ProgressiveOptions& options,
                      ProgressiveResult* out, const ExecContext& ctx) {
  const size_t num_pairs = pairs.size();
  GTER_CHECK(benefit.size() == num_pairs);
  GTER_CHECK(pair_probability.size() == num_pairs);
  GTER_CHECK(out != nullptr);

  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "progressive/run");
  if (metrics != nullptr) metrics->AddCounter("progressive/runs");

  out->matches.assign(num_pairs, false);
  out->matched_count = 0;
  out->pairs_considered = 0;
  out->budget_exhausted = false;
  UnionFind uf(num_records);
  const auto finalize = [&] {
    out->cluster_of = uf.ComponentLabels();
    out->num_clusters = uf.num_components();
    if (metrics != nullptr) {
      metrics->AddCounter("progressive/considered", out->pairs_considered);
      metrics->AddCounter("progressive/emitted", out->matched_count);
    }
  };

  // Benefit order: descending key, PairId tiebreak — fully deterministic,
  // so any truncated prefix is too.
  std::vector<PairId> order(num_pairs);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    if (benefit[a] != benefit[b]) return benefit[a] > benefit[b];
    return a < b;
  });

  CancelToken budget;
  if (options.budget_seconds > 0.0) budget.SetTimeout(options.budget_seconds);

  const size_t stride = options.poll_stride == 0 ? 1 : options.poll_stride;
  for (size_t i = 0; i < num_pairs; ++i) {
    if (i % stride == 0) {
      if (Status cancel = ctx.CheckCancel(); !cancel.ok()) {
        finalize();
        return cancel;
      }
      if (budget.cancelled()) {
        out->budget_exhausted = true;
        if (metrics != nullptr) {
          metrics->AddCounter("progressive/budget_exhausted");
        }
        break;
      }
    }
    const PairId p = order[i];
    out->pairs_considered = i + 1;
    if (pair_probability[p] >= options.eta) {
      out->matches[p] = true;
      ++out->matched_count;
      const RecordPair& rp = pairs.pair(p);
      uf.Union(rp.a, rp.b);
    }
  }
  finalize();
  return Status::OK();
}

}  // namespace gter
