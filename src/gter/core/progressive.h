#ifndef GTER_CORE_PROGRESSIVE_H_
#define GTER_CORE_PROGRESSIVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Options for the budgeted progressive match scheduler (DESIGN.md §4g).
struct ProgressiveOptions {
  /// Match threshold applied to `pair_probability` (FusionConfig::eta).
  double eta = 0.98;
  /// Wall-clock emission budget in seconds; 0 means unlimited (the
  /// scheduler then visits every pair and emits exactly the batch match
  /// set). Implemented as a private CancelToken deadline, so the budget
  /// composes with — and is checked alongside — the caller's token.
  double budget_seconds = 0.0;
  /// Pairs between cancellation/budget polls.
  size_t poll_stride = 1024;
};

/// Anytime output of the scheduler. Valid after every return — including a
/// cancelled one — because the caller passes it as an output parameter:
/// `matches`/`cluster_of` always describe exactly the pairs considered so
/// far (unvisited pairs are non-matches, unmerged records are singletons).
struct ProgressiveResult {
  std::vector<bool> matches;
  size_t matched_count = 0;
  /// Pairs visited in benefit order before the budget/cancel/end stopped
  /// the scan.
  size_t pairs_considered = 0;
  /// The time budget tripped before the scan finished. Never set by
  /// caller-token cancellation (that returns the error status instead).
  bool budget_exhausted = false;
  /// Connected components of the emitted matches: dense labels stable by
  /// smallest member, one per record.
  std::vector<uint32_t> cluster_of;
  size_t num_clusters = 0;
};

/// Emits match decisions over `pairs` in descending-benefit order until the
/// order is exhausted or the time budget trips. `benefit[p]` is the
/// expected-benefit key — the fusion pipeline passes the ITER pair scores
/// (an upper-bound-style proxy in the SPER spirit: high-similarity pairs
/// are resolved first, so an interrupted run has spent its budget on the
/// pairs most likely to merge entities). Ties break toward the smaller
/// PairId, so the order — and therefore every budget-truncated prefix — is
/// deterministic. A pair matches iff `pair_probability[p] >= options.eta`,
/// exactly the batch rule; with an unlimited budget the emitted set is
/// bit-identical to the batch loop.
///
/// Cancellation contract: the caller's token is polled before the first
/// emission and every `poll_stride` pairs; a trip returns its status with
/// `*out` holding the partial snapshot. The budget trip is NOT an error:
/// the scan stops, `budget_exhausted` is set, and the call returns OK.
Status RunProgressive(size_t num_records, const PairSpace& pairs,
                      const std::vector<double>& benefit,
                      const std::vector<double>& pair_probability,
                      const ProgressiveOptions& options,
                      ProgressiveResult* out,
                      const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_PROGRESSIVE_H_
