#include "gter/core/iter.h"

#include <algorithm>
#include <cmath>

#include "gter/common/logging.h"
#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/simd_ops.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"

namespace gter {
namespace {

// Chunk width for the parallel reductions (convergence delta, L2 norm).
// Chunk boundaries are a function of this constant alone — never of the
// thread count — and partials are combined serially in chunk order, so the
// reduced value is bit-identical whether the pool has 0 or 64 workers.
constexpr size_t kReduceChunk = 4096;

/// Σ_i f(x[i]) over [0, n) via fixed-width chunks; `f` must be pure.
template <typename PerElement>
double ChunkedSum(ThreadPool* pool, size_t n, PerElement f) {
  const size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  if (num_chunks <= 1) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += f(i);
    return acc;
  }
  std::vector<double> partial(num_chunks, 0.0);
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double acc = 0.0;
      for (size_t i = begin; i < end; ++i) acc += f(i);
      partial[chunk] = acc;
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

/// The fused per-term passes of one sweep (IterOptions::fuse_sweeps): the
/// lines 5–6 weight update, the line 7 normalization and the convergence
/// delta in one pass over the term vector (two for L2, which needs the
/// global norm between update and scale). Work is chunked at kReduceChunk —
/// the exact chunking of the staged ChunkedSum reductions — with partials
/// combined serially in chunk order, and every per-element operation is
/// op-for-op the staged arithmetic, so weights and delta are bit-identical
/// to the staged sweep at any thread count. `x_prev` is scratch for the L2
/// path (the logistic path keeps the pre-update value in a register
/// instead of copying the vector). Returns Σ_t |Δx_t|.
double FusedTermSweep(const BipartiteGraph& graph,
                      const std::vector<double>& edge_probability,
                      const std::vector<double>& s,
                      IndexedWeightedSumFn weighted_sum,
                      IterNormalization kind, ThreadPool* pool,
                      std::vector<double>* x_io,
                      std::vector<double>* x_prev) {
  std::vector<double>& x = *x_io;
  const size_t n = x.size();
  const size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  std::vector<double> partial(num_chunks, 0.0);
  const auto update = [&](size_t t) {
    auto adjacent = graph.PairsOfTerm(t);
    if (adjacent.empty()) return 0.0;
    return weighted_sum(edge_probability.data(), s.data(), adjacent.data(),
                        adjacent.size()) /
           graph.Pt(t);
  };

  if (kind == IterNormalization::kLogistic) {
    ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
      for (size_t chunk = lo; chunk < hi; ++chunk) {
        const size_t begin = chunk * kReduceChunk;
        const size_t end = std::min(begin + kReduceChunk, n);
        double delta = 0.0;
        for (size_t t = begin; t < end; ++t) {
          const double old = x[t];
          double v = update(t);
          v = v / (1.0 + v);  // the division-safe 1/(1 + 1/x)
          x[t] = v;
          delta += std::fabs(v - old);
        }
        partial[chunk] = delta;
      }
    });
    double change = 0.0;
    for (double p : partial) change += p;
    return change;
  }

  // L2: pass 1 updates, saves the old weights and reduces Σx²; pass 2
  // scales and reduces the delta.
  std::vector<double>& prev = *x_prev;
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double norm_sq = 0.0;
      for (size_t t = begin; t < end; ++t) {
        prev[t] = x[t];
        const double v = update(t);
        x[t] = v;
        norm_sq += v * v;
      }
      partial[chunk] = norm_sq;
    }
  });
  double norm_sq = 0.0;
  for (double p : partial) norm_sq += p;
  const bool scale = norm_sq > 0.0;  // staged Normalize skips a zero norm
  const double inv = scale ? 1.0 / std::sqrt(norm_sq) : 1.0;
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double delta = 0.0;
      for (size_t t = begin; t < end; ++t) {
        const double v = scale ? x[t] * inv : x[t];
        x[t] = v;
        delta += std::fabs(v - prev[t]);
      }
      partial[chunk] = delta;
    }
  });
  double change = 0.0;
  for (double p : partial) change += p;
  return change;
}

void Normalize(std::vector<double>* x, IterNormalization kind,
               ThreadPool* pool, size_t grain) {
  if (kind == IterNormalization::kLogistic) {
    // x/(1+x) is the division-safe form of the paper's 1/(1 + 1/x).
    // Elementwise, so the parallel version is trivially bit-identical.
    ParallelFor(pool, 0, x->size(), grain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        (*x)[i] = (*x)[i] / (1.0 + (*x)[i]);
      }
    });
    return;
  }
  const double* v = x->data();
  double norm_sq =
      ChunkedSum(pool, x->size(), [v](size_t i) { return v[i] * v[i]; });
  if (norm_sq <= 0.0) return;
  const double inv = 1.0 / std::sqrt(norm_sq);
  ParallelFor(pool, 0, x->size(), grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) (*x)[i] *= inv;
  });
}

}  // namespace

Result<IterResult> RunIter(const BipartiteGraph& graph,
                           const std::vector<double>& edge_probability,
                           const IterOptions& options,
                           const ExecContext& ctx) {
  GTER_CHECK(edge_probability.size() == graph.num_pairs());
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  const size_t num_terms = graph.num_terms();
  const size_t num_pairs = graph.num_pairs();

  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "iter/total");
  if (metrics != nullptr) metrics->AddCounter("iter/runs");

  IterResult result;
  result.term_weights.resize(num_terms);
  result.pair_scores.assign(num_pairs, 0.0);

  // Line 1: random initialization of x_t in (0, 1).
  Rng rng(options.seed);
  for (double& x : result.term_weights) x = rng.OpenUniformDouble();

  std::vector<double>& x = result.term_weights;
  std::vector<double>& s = result.pair_scores;
  std::vector<double> x_prev(num_terms);

  // Both sweeps are gather-style — every output element reads only from the
  // previous phase's vector and accumulates its own adjacency in storage
  // order — so the parallel chunks are independent and bit-identical to the
  // serial sweep. The accumulations run through the dispatched gather-reduce
  // primitives: resolved once here, on the calling thread, so a level change
  // mid-run can never mix kernels within one sweep.
  const IndexedSumFn indexed_sum = ResolveIndexedSum(ctx.simd_level());
  const IndexedWeightedSumFn weighted_sum =
      ResolveIndexedWeightedSum(ctx.simd_level());
  ThreadPool* pool = ctx.pool;
  const size_t grain = options.grain;
  for (size_t iteration = 0; iteration < options.max_iterations; ++iteration) {
    // One cancellation poll per sweep: the natural Algorithm 1 boundary —
    // frequent enough for prompt unwinding, far off the inner hot loops.
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    ScopedTimer sweep_timer(metrics, recorder, "iter/sweep",
                            TraceArg{"sweep", static_cast<double>(iteration)});

    // Lines 3–4: s(r_i, r_j) ← Σ_{t shared} x_t.
    ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
      for (PairId p = lo; p < hi; ++p) {
        auto terms = graph.TermsOfPair(p);
        s[p] = indexed_sum(x.data(), terms.data(), terms.size());
      }
    });

    double change;
    if (options.fuse_sweeps) {
      // Lines 5–7 and the convergence delta in one fused pass (two for L2)
      // — bit-identical to the staged arm below, see FusedTermSweep.
      change = FusedTermSweep(graph, edge_probability, s, weighted_sum,
                              options.normalization, pool, &x, &x_prev);
    } else {
      x_prev = x;

      // Lines 5–6: x_t ← Σ_p p(r_i, r_j)·s(p) / P_t.
      ParallelFor(pool, 0, num_terms, grain, [&](size_t lo, size_t hi) {
        for (TermId t = lo; t < hi; ++t) {
          auto adjacent = graph.PairsOfTerm(t);
          if (adjacent.empty()) {
            x[t] = 0.0;
            continue;
          }
          x[t] = weighted_sum(edge_probability.data(), s.data(),
                              adjacent.data(), adjacent.size()) /
                 graph.Pt(t);
        }
      });

      // Line 7: normalization keeps the additive rule bounded.
      Normalize(&x, options.normalization, pool, grain);

      const double* xp = x.data();
      const double* xq = x_prev.data();
      change = ChunkedSum(pool, num_terms, [xp, xq](size_t i) {
        return std::fabs(xp[i] - xq[i]);
      });
    }
    if (options.track_convergence) result.update_trace.push_back(change);
    if (metrics != nullptr) {
      metrics->AddCounter("iter/sweeps");
      metrics->Observe("iter/convergence_delta", change);
    }
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (metrics != nullptr && result.converged) {
    metrics->AddCounter("iter/converged");
  }

  // Final pair scores from the converged weights.
  ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
    for (PairId p = lo; p < hi; ++p) {
      auto terms = graph.TermsOfPair(p);
      s[p] = indexed_sum(x.data(), terms.data(), terms.size());
    }
  });
  return result;
}

namespace {

// Worklist scratch for RunIterDirty: a mark byte per element plus the
// sorted id list the parallel passes iterate. Collect() appends unseen ids;
// the caller sorts once per sweep, so every pass sees a deterministic
// order regardless of insertion pattern.
struct MarkedList {
  std::vector<uint8_t> mark;
  std::vector<uint32_t> ids;

  explicit MarkedList(size_t n) : mark(n, 0) {}
  void Collect(uint32_t id) {
    if (mark[id]) return;
    mark[id] = 1;
    ids.push_back(id);
  }
  void Clear() {
    for (uint32_t id : ids) mark[id] = 0;
    ids.clear();
  }
};

}  // namespace

Result<IterDirtyResult> RunIterDirty(const DynamicBipartiteGraph& graph,
                                     const std::vector<TermId>& dirty_terms,
                                     const IterDirtyOptions& options,
                                     std::vector<double>* term_weights,
                                     std::vector<double>* pair_scores,
                                     const ExecContext& ctx) {
  const size_t num_terms = graph.num_terms();
  const size_t num_pairs = graph.num_pairs();
  GTER_CHECK(term_weights->size() == num_terms);
  GTER_CHECK(pair_scores->size() == num_pairs);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());

  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "iter/dirty");
  if (metrics != nullptr) metrics->AddCounter("iter/dirty_runs");

  std::vector<double>& x = *term_weights;
  std::vector<double>& s = *pair_scores;
  const IndexedSumFn indexed_sum = ResolveIndexedSum(ctx.simd_level());
  ThreadPool* pool = ctx.pool;
  const size_t grain = options.grain;

  // Frontier: sorted unique dirty terms.
  std::vector<TermId> frontier(dirty_terms);
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  GTER_CHECK(frontier.empty() || frontier.back() < num_terms);

  IterDirtyResult result;
  std::vector<uint8_t> term_touched(num_terms, 0);
  std::vector<uint8_t> pair_touched(num_pairs, 0);
  MarkedList dirty_pairs(num_pairs);
  MarkedList affected(num_terms);
  std::vector<TermId> next_frontier;

  // s of the listed pairs from the current x (full gathers, so no delta
  // error ever accumulates). Writes are disjoint per index.
  const auto refresh_pairs = [&](const std::vector<PairId>& list) {
    ParallelFor(pool, 0, list.size(), grain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const PairId p = list[i];
        auto terms = graph.TermsOfPair(p);
        s[p] = indexed_sum(x.data(), terms.data(), terms.size());
      }
    });
    for (PairId p : list) pair_touched[p] = 1;
  };
  const auto refresh_all_pairs = [&] {
    ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
      for (PairId p = lo; p < hi; ++p) {
        auto terms = graph.TermsOfPair(p);
        s[p] = indexed_sum(x.data(), terms.data(), terms.size());
      }
    });
    std::fill(pair_touched.begin(), pair_touched.end(), 1);
  };

  // x of one term from the current s: the exact local solve of the prob ≡ 1
  // Eq. 6 update. The plain sweep x ← h((Σ_{p∋t} s_p)/P_t) feeds x_t back
  // into itself through every adjacent score (s_p contains x_t), and that
  // self-coupling makes weakly supported terms decay HARMONICALLY (x_{n+1}
  // = x_n/(1+x_n) ⇒ x_n ≈ 1/n) — a per-term 1e-13 frontier would never
  // drain. Splitting Σ s_p = deg·x_t + C (C = the other terms' mass, read
  // off the already-computed scores) and solving the term's own fixed
  // point deg·x² + (P_t + C − deg)·x − C = 0 exactly removes the slow
  // mode: an unsupported term (C = 0) parks at its limit in ONE update,
  // and the remaining cross-term coupling contracts geometrically. The
  // root is the same x the plain sweep converges to, so the global fixed
  // point — the thing the incremental-vs-batch differential pins — is
  // unchanged; only the approach is accelerated (nonlinear Jacobi with
  // exact one-dimensional solves).
  // `scale_out` receives the gathered magnitude Σ_{p∋t} s_p — the
  // conditioning of the update, used by the callers' frontier rule: changes
  // below noise_floor · ε · scale are this update's own rounding noise, not
  // signal (a hub term gathering 10k scores cannot be stable past ~1e-12,
  // and chasing it below that keeps the worklist alive forever).
  const auto update_term = [&](TermId t, double* scale_out) {
    auto adjacent = graph.PairsOfTerm(t);
    if (adjacent.empty()) {
      *scale_out = 0.0;
      return 0.0;
    }
    const double deg = static_cast<double>(adjacent.size());
    const double total =
        indexed_sum(s.data(), adjacent.data(), adjacent.size());
    *scale_out = total;
    const double c = total - deg * x[t];  // cross-term mass
    const double b = graph.Pt(t) + c - deg;
    if (c <= 0.0) return b < 0.0 ? -b / deg : 0.0;
    // Cancellation-free form of (−b + √(b² + 4·deg·c)) / (2·deg).
    return 2.0 * c / (b + std::sqrt(b * b + 4.0 * deg * c));
  };
  constexpr double kEps = 2.220446049250313e-16;  // DBL_EPSILON
  const double noise = options.noise_floor * kEps;

  // Recomputes x over the sorted term list; chunked at the fixed reduction
  // width with per-chunk frontier collection concatenated in chunk order,
  // so the next frontier is sorted and thread-count independent. Returns
  // the largest |Δx| of the sweep (serial chunk-order max), the signal the
  // stall detector watches.
  const auto sweep_terms = [&](const std::vector<TermId>& list) {
    next_frontier.clear();
    const size_t n = list.size();
    const size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
    std::vector<std::vector<TermId>> moved(num_chunks);
    std::vector<double> chunk_max(num_chunks, 0.0);
    ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
      for (size_t chunk = lo; chunk < hi; ++chunk) {
        const size_t begin = chunk * kReduceChunk;
        const size_t end = std::min(begin + kReduceChunk, n);
        for (size_t i = begin; i < end; ++i) {
          const TermId t = list[i];
          const double old = x[t];
          double scale = 0.0;
          const double v = update_term(t, &scale);
          x[t] = v;
          if (v != old) term_touched[t] = 1;
          const double delta = std::fabs(v - old);
          chunk_max[chunk] = std::max(chunk_max[chunk], delta);
          if (delta > std::max(options.frontier_tolerance, noise * scale)) {
            moved[chunk].push_back(t);
          }
        }
      }
    });
    for (const auto& chunk : moved) {
      next_frontier.insert(next_frontier.end(), chunk.begin(), chunk.end());
    }
    double max_delta = 0.0;
    for (double m : chunk_max) max_delta = std::max(max_delta, m);
    return max_delta;
  };

  // Direct solve of the hub-coupled subsystem (see IterDirtyOptions). The
  // frontier's one-hop term closure T is frozen, the exact pair structure
  // is compressed into co-occurrence counts M[i][j] = |pairs(T_i) ∩
  // pairs(T_j)| (diagonal = degree), and the reduced map
  //   total_i = base_i + Σ_j M[i][j]·x_j,   base_i = Σ s − M·x (frozen mass)
  // is iterated serially to bitwise stationarity with the same exact local
  // solve as update_term — hub↔hub coupling costs one multiply instead of
  // thousands of pair reads per sweep. The caller re-verifies the result
  // with a normal exact sweep over T. Returns false when the closure
  // exceeds subsystem_max_terms (solve abandoned, nothing written).
  const auto solve_subsystem = [&](std::vector<TermId>* movers) {
    // Movers' pairs have not been refreshed since they moved; everything
    // else is current. One refresh makes every score exact.
    // The collected pair lists stay in (deterministic) collection order:
    // the refresh is elementwise and the coefficient accumulation below
    // adds exact integers, so neither depends on traversal order — and a
    // hub closure holds tens of thousands of pairs, making the sort the
    // single most expensive step of the solve.
    dirty_pairs.Clear();
    for (TermId t : *movers) {
      for (PairId p : graph.PairsOfTerm(t)) dirty_pairs.Collect(p);
    }
    refresh_pairs(dirty_pairs.ids);

    // T = movers ∪ terms sharing a pair with a mover.
    affected.Clear();
    for (TermId t : *movers) affected.Collect(t);
    for (PairId p : dirty_pairs.ids) {
      for (TermId u : graph.TermsOfPair(p)) affected.Collect(u);
      if (affected.ids.size() > options.subsystem_max_terms) return false;
    }
    std::sort(affected.ids.begin(), affected.ids.end());
    const std::vector<TermId>& T = affected.ids;
    const size_t n = T.size();

    std::vector<int32_t> index_of(num_terms, -1);
    for (size_t i = 0; i < n; ++i) index_of[T[i]] = static_cast<int32_t>(i);

    // Coefficient pass over every pair of every T term (each pair once).
    for (TermId t : T) {
      for (PairId p : graph.PairsOfTerm(t)) dirty_pairs.Collect(p);
    }
    std::vector<double> m(n * n, 0.0);
    std::vector<int32_t> inner;
    for (PairId p : dirty_pairs.ids) {
      inner.clear();
      for (TermId u : graph.TermsOfPair(p)) {
        if (index_of[u] >= 0) inner.push_back(index_of[u]);
      }
      for (int32_t a : inner) {
        for (int32_t b : inner) m[a * n + b] += 1.0;
      }
    }

    std::vector<double> deg(n), pt(n), base(n), xs(n);
    for (size_t i = 0; i < n; ++i) {
      const TermId t = T[i];
      deg[i] = static_cast<double>(graph.PairsOfTerm(t).size());
      pt[i] = graph.Pt(t);
      xs[i] = x[t];
    }
    for (size_t i = 0; i < n; ++i) {
      auto adjacent = graph.PairsOfTerm(T[i]);
      const double total =
          indexed_sum(s.data(), adjacent.data(), adjacent.size());
      double coupled = 0.0;
      for (size_t j = 0; j < n; ++j) coupled += m[i * n + j] * xs[j];
      base[i] = total - coupled;
    }

    // Gauss–Seidel, not Jacobi: with thousands of shared pairs between two
    // hubs the synchronous map carries a near-(−1) antisymmetric mode that
    // period-2 cycles at rounding amplitude and never goes bitwise
    // stationary. In-place updates collapse that mode (the pair multiplier
    // becomes the gain product, positive), and the fixed point is the
    // same. The loop is serial over sorted ids either way.
    constexpr size_t kSolveCap = 4096;
    double prev_delta = 0.0;
    size_t used = 0;
    double floor_delta = 0.0;
    for (size_t it = 0; it < kSolveCap; ++it) {
      used = it + 1;
      double delta_max = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double v = 0.0;
        if (deg[i] != 0.0) {
          double total = base[i];
          for (size_t j = 0; j < n; ++j) total += m[i * n + j] * xs[j];
          const double c = total - deg[i] * xs[i];
          const double b = pt[i] + c - deg[i];
          v = c <= 0.0
                  ? (b < 0.0 ? -b / deg[i] : 0.0)
                  : 2.0 * c / (b + std::sqrt(b * b + 4.0 * deg[i] * c));
        }
        delta_max = std::max(delta_max, std::fabs(v - xs[i]));
        xs[i] = v;
      }
      floor_delta = delta_max;
      if (delta_max == 0.0) break;
      if (it > 0 && delta_max >= prev_delta) break;
      prev_delta = delta_max;
    }

    double wb_max = 0.0;
    for (size_t i = 0; i < n; ++i) {
      wb_max = std::max(wb_max, std::fabs(xs[i] - x[T[i]]));
      if (xs[i] != x[T[i]]) {
        x[T[i]] = xs[i];
        term_touched[T[i]] = 1;
      }
    }
    GTER_LOG(Debug) << "  subsystem solve n=" << n << " pairs "
                    << dirty_pairs.ids.size() << " writeback_max " << wb_max
                    << " iters " << used << " floor " << floor_delta;
    // Hand T back as the next frontier: the following sweep refreshes its
    // pairs and re-tests every T term with exact gathers — the reduced
    // solve is never trusted unverified, and any neighbor it could not see
    // gets recruited there.
    movers->assign(T.begin(), T.end());
    return true;
  };

  bool full = false;
  bool dust_parked = false;
  size_t dust_sweeps = 0;
  size_t solve_rounds = 0;
  while (result.sweeps < options.max_sweeps) {
    if (frontier.empty() || dust_parked) break;
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    double sweep_max = 0.0;

    if (!full && static_cast<double>(frontier.size()) >
                     options.full_resweep_threshold *
                         static_cast<double>(num_terms)) {
      full = true;
      result.used_full_resweep = true;
      if (metrics != nullptr) metrics->AddCounter("iter/full_resweeps");
    }

    if (full) {
      // Degraded mode: full sweeps, identical arithmetic, no worklists.
      refresh_all_pairs();
      std::fill(term_touched.begin(), term_touched.end(), 1);
      next_frontier.clear();
      const size_t num_chunks = (num_terms + kReduceChunk - 1) / kReduceChunk;
      std::vector<std::vector<TermId>> moved(num_chunks);
      std::vector<double> chunk_max(num_chunks, 0.0);
      ParallelFor(pool, 0, num_chunks, /*grain=*/1,
                  [&](size_t lo, size_t hi) {
                    for (size_t chunk = lo; chunk < hi; ++chunk) {
                      const size_t begin = chunk * kReduceChunk;
                      const size_t end =
                          std::min(begin + kReduceChunk, num_terms);
                      for (size_t t = begin; t < end; ++t) {
                        const double old = x[t];
                        double scale = 0.0;
                        const double v = update_term(t, &scale);
                        x[t] = v;
                        const double delta = std::fabs(v - old);
                        chunk_max[chunk] = std::max(chunk_max[chunk], delta);
                        if (delta > std::max(options.frontier_tolerance,
                                             noise * scale)) {
                          moved[chunk].push_back(static_cast<TermId>(t));
                        }
                      }
                    }
                  });
      for (const auto& chunk : moved) {
        next_frontier.insert(next_frontier.end(), chunk.begin(), chunk.end());
      }
      double full_max = 0.0;
      for (double m : chunk_max) full_max = std::max(full_max, m);
      sweep_max = full_max;
      // Post-stall parking: the full map is past the interesting decades —
      // once its largest move is numerical dust, park instead of grinding
      // to exact stationarity. Escape-hatch full runs (stall_escalated
      // false) are unaffected and still land bitwise on the fixed point.
      if (result.stall_escalated && full_max < options.stall_park_delta) {
        dust_parked = true;
      }
    } else {
      // Pairs adjacent to the frontier, then terms adjacent to those pairs
      // (plus the frontier itself — a frontier term with no pairs still
      // needs its weight parked at 0).
      dirty_pairs.Clear();
      affected.Clear();
      for (TermId t : frontier) {
        affected.Collect(t);
        for (PairId p : graph.PairsOfTerm(t)) dirty_pairs.Collect(p);
      }
      std::sort(dirty_pairs.ids.begin(), dirty_pairs.ids.end());
      for (PairId p : dirty_pairs.ids) {
        for (TermId t : graph.TermsOfPair(p)) affected.Collect(t);
      }
      std::sort(affected.ids.begin(), affected.ids.end());
      refresh_pairs(dirty_pairs.ids);
      sweep_max = sweep_terms(affected.ids);

      // Stall detection. The worklist's partial refreshes introduce
      // effective time delays between coupled terms, and a delay system can
      // carry rotation modes of near-unit gain: hub-term rounding jitter
      // (~ε · Σ s_p) amplified through mid-degree neighbors circulates as a
      // self-sustaining ~1e-11 limit cycle the frontier rule cannot park —
      // per-term thresholds and damping don't break it because each term's
      // move is driven by its neighbors' noise, not its own. The signature
      // is unmistakable: the sweep's largest move sits at numerical dust
      // level, yet the frontier refuses to drain. A genuinely converging
      // run crosses the dust band in a sweep or two on its way out. After
      // `stall_sweeps` consecutive dust sweeps, escalate (sticky) to full
      // synchronous sweeps: the delay-free map has no such modes and
      // reaches a bitwise-stationary fixed point — the same one the batch
      // build lands on.
      // Post-solve parking. The reduced solve lands on *its* bitwise fixed
      // point, but its summation order differs from the exact gather's, so
      // the verification sweep still sees the hubs move by their rounding
      // floor (~ε · Σ s_p, right at the frontier rule's noise guard) and
      // subsets of the closure ping-pong on that dust forever. Once a solve
      // has run, a verification sweep whose largest move is below
      // `subsystem_park_delta` is measuring exactly that floor — park.
      if (solve_rounds > 0 && sweep_max < options.subsystem_park_delta) {
        dust_parked = true;
      } else if (sweep_max < options.stall_delta) {
        ++dust_sweeps;
        if (dust_sweeps >= options.stall_sweeps && !next_frontier.empty()) {
          full = true;
          result.used_full_resweep = true;
          result.stall_escalated = true;
          if (metrics != nullptr) {
            metrics->AddCounter("iter/stall_escalations");
          }
        }
      } else {
        dust_sweeps = 0;
      }

      // Hub-coupled slow tail → direct subsystem solve. Only when the
      // frontier still carries a hub this deep into the run: a leaf-term
      // ingest drains in two or three sweeps and never gets here.
      if (!full && !dust_parked && !next_frontier.empty() &&
          solve_rounds < options.subsystem_max_rounds &&
          result.sweeps + 1 >= options.subsystem_min_sweeps &&
          sweep_max < options.subsystem_delta) {
        bool has_hub = false;
        for (TermId t : next_frontier) {
          if (graph.PairsOfTerm(t).size() >= options.subsystem_hub_degree) {
            has_hub = true;
            break;
          }
        }
        if (has_hub) {
          if (solve_subsystem(&next_frontier)) {
            ++solve_rounds;
            ++result.subsystem_solves;
            dust_sweeps = 0;
            if (metrics != nullptr) {
              metrics->AddCounter("iter/subsystem_solves");
            }
          } else {
            // Closure too large to freeze — don't rebuild it every sweep.
            solve_rounds = options.subsystem_max_rounds;
          }
        }
      }
    }

    frontier.swap(next_frontier);
    ++result.sweeps;
    if (metrics != nullptr) metrics->AddCounter("iter/dirty_sweeps");
    GTER_LOG(Debug) << "iter/dirty sweep " << result.sweeps << ": frontier "
                    << frontier.size() << "/" << num_terms << " max_delta "
                    << sweep_max << (full ? " (full)" : "");
  }
  result.converged = frontier.empty() || dust_parked;

  // Exit invariant: every pair adjacent to a touched term gets its score
  // refreshed against the final weights, so s ≡ Σ_{t∈p} x_t holds exactly
  // (terms that moved sub-tolerance mid-run would otherwise leave a stale
  // residue in their pairs).
  if (full) {
    refresh_all_pairs();
  } else {
    dirty_pairs.Clear();
    for (TermId t = 0; t < num_terms; ++t) {
      if (!term_touched[t]) continue;
      for (PairId p : graph.PairsOfTerm(t)) dirty_pairs.Collect(p);
    }
    std::sort(dirty_pairs.ids.begin(), dirty_pairs.ids.end());
    refresh_pairs(dirty_pairs.ids);
  }

  for (TermId t = 0; t < num_terms; ++t) {
    if (term_touched[t]) result.touched_terms.push_back(t);
  }
  for (PairId p = 0; p < num_pairs; ++p) {
    if (pair_touched[p]) result.touched_pairs.push_back(p);
  }
  return result;
}

}  // namespace gter
