#include "gter/core/iter.h"

#include <algorithm>
#include <cmath>

#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/simd_ops.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"

namespace gter {
namespace {

// Chunk width for the parallel reductions (convergence delta, L2 norm).
// Chunk boundaries are a function of this constant alone — never of the
// thread count — and partials are combined serially in chunk order, so the
// reduced value is bit-identical whether the pool has 0 or 64 workers.
constexpr size_t kReduceChunk = 4096;

/// Σ_i f(x[i]) over [0, n) via fixed-width chunks; `f` must be pure.
template <typename PerElement>
double ChunkedSum(ThreadPool* pool, size_t n, PerElement f) {
  const size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  if (num_chunks <= 1) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += f(i);
    return acc;
  }
  std::vector<double> partial(num_chunks, 0.0);
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double acc = 0.0;
      for (size_t i = begin; i < end; ++i) acc += f(i);
      partial[chunk] = acc;
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

/// The fused per-term passes of one sweep (IterOptions::fuse_sweeps): the
/// lines 5–6 weight update, the line 7 normalization and the convergence
/// delta in one pass over the term vector (two for L2, which needs the
/// global norm between update and scale). Work is chunked at kReduceChunk —
/// the exact chunking of the staged ChunkedSum reductions — with partials
/// combined serially in chunk order, and every per-element operation is
/// op-for-op the staged arithmetic, so weights and delta are bit-identical
/// to the staged sweep at any thread count. `x_prev` is scratch for the L2
/// path (the logistic path keeps the pre-update value in a register
/// instead of copying the vector). Returns Σ_t |Δx_t|.
double FusedTermSweep(const BipartiteGraph& graph,
                      const std::vector<double>& edge_probability,
                      const std::vector<double>& s,
                      IndexedWeightedSumFn weighted_sum,
                      IterNormalization kind, ThreadPool* pool,
                      std::vector<double>* x_io,
                      std::vector<double>* x_prev) {
  std::vector<double>& x = *x_io;
  const size_t n = x.size();
  const size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  std::vector<double> partial(num_chunks, 0.0);
  const auto update = [&](size_t t) {
    auto adjacent = graph.PairsOfTerm(t);
    if (adjacent.empty()) return 0.0;
    return weighted_sum(edge_probability.data(), s.data(), adjacent.data(),
                        adjacent.size()) /
           graph.Pt(t);
  };

  if (kind == IterNormalization::kLogistic) {
    ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
      for (size_t chunk = lo; chunk < hi; ++chunk) {
        const size_t begin = chunk * kReduceChunk;
        const size_t end = std::min(begin + kReduceChunk, n);
        double delta = 0.0;
        for (size_t t = begin; t < end; ++t) {
          const double old = x[t];
          double v = update(t);
          v = v / (1.0 + v);  // the division-safe 1/(1 + 1/x)
          x[t] = v;
          delta += std::fabs(v - old);
        }
        partial[chunk] = delta;
      }
    });
    double change = 0.0;
    for (double p : partial) change += p;
    return change;
  }

  // L2: pass 1 updates, saves the old weights and reduces Σx²; pass 2
  // scales and reduces the delta.
  std::vector<double>& prev = *x_prev;
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double norm_sq = 0.0;
      for (size_t t = begin; t < end; ++t) {
        prev[t] = x[t];
        const double v = update(t);
        x[t] = v;
        norm_sq += v * v;
      }
      partial[chunk] = norm_sq;
    }
  });
  double norm_sq = 0.0;
  for (double p : partial) norm_sq += p;
  const bool scale = norm_sq > 0.0;  // staged Normalize skips a zero norm
  const double inv = scale ? 1.0 / std::sqrt(norm_sq) : 1.0;
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t chunk = lo; chunk < hi; ++chunk) {
      const size_t begin = chunk * kReduceChunk;
      const size_t end = std::min(begin + kReduceChunk, n);
      double delta = 0.0;
      for (size_t t = begin; t < end; ++t) {
        const double v = scale ? x[t] * inv : x[t];
        x[t] = v;
        delta += std::fabs(v - prev[t]);
      }
      partial[chunk] = delta;
    }
  });
  double change = 0.0;
  for (double p : partial) change += p;
  return change;
}

void Normalize(std::vector<double>* x, IterNormalization kind,
               ThreadPool* pool, size_t grain) {
  if (kind == IterNormalization::kLogistic) {
    // x/(1+x) is the division-safe form of the paper's 1/(1 + 1/x).
    // Elementwise, so the parallel version is trivially bit-identical.
    ParallelFor(pool, 0, x->size(), grain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        (*x)[i] = (*x)[i] / (1.0 + (*x)[i]);
      }
    });
    return;
  }
  const double* v = x->data();
  double norm_sq =
      ChunkedSum(pool, x->size(), [v](size_t i) { return v[i] * v[i]; });
  if (norm_sq <= 0.0) return;
  const double inv = 1.0 / std::sqrt(norm_sq);
  ParallelFor(pool, 0, x->size(), grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) (*x)[i] *= inv;
  });
}

}  // namespace

Result<IterResult> RunIter(const BipartiteGraph& graph,
                           const std::vector<double>& edge_probability,
                           const IterOptions& options,
                           const ExecContext& ctx) {
  GTER_CHECK(edge_probability.size() == graph.num_pairs());
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  const size_t num_terms = graph.num_terms();
  const size_t num_pairs = graph.num_pairs();

  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  TraceRecorder* recorder = ctx.trace_or_ambient();
  ScopedTimer total_timer(metrics, recorder, "iter/total");
  if (metrics != nullptr) metrics->AddCounter("iter/runs");

  IterResult result;
  result.term_weights.resize(num_terms);
  result.pair_scores.assign(num_pairs, 0.0);

  // Line 1: random initialization of x_t in (0, 1).
  Rng rng(options.seed);
  for (double& x : result.term_weights) x = rng.OpenUniformDouble();

  std::vector<double>& x = result.term_weights;
  std::vector<double>& s = result.pair_scores;
  std::vector<double> x_prev(num_terms);

  // Both sweeps are gather-style — every output element reads only from the
  // previous phase's vector and accumulates its own adjacency in storage
  // order — so the parallel chunks are independent and bit-identical to the
  // serial sweep. The accumulations run through the dispatched gather-reduce
  // primitives: resolved once here, on the calling thread, so a level change
  // mid-run can never mix kernels within one sweep.
  const IndexedSumFn indexed_sum = ResolveIndexedSum(ctx.simd_level());
  const IndexedWeightedSumFn weighted_sum =
      ResolveIndexedWeightedSum(ctx.simd_level());
  ThreadPool* pool = ctx.pool;
  const size_t grain = options.grain;
  for (size_t iteration = 0; iteration < options.max_iterations; ++iteration) {
    // One cancellation poll per sweep: the natural Algorithm 1 boundary —
    // frequent enough for prompt unwinding, far off the inner hot loops.
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    ScopedTimer sweep_timer(metrics, recorder, "iter/sweep",
                            TraceArg{"sweep", static_cast<double>(iteration)});

    // Lines 3–4: s(r_i, r_j) ← Σ_{t shared} x_t.
    ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
      for (PairId p = lo; p < hi; ++p) {
        auto terms = graph.TermsOfPair(p);
        s[p] = indexed_sum(x.data(), terms.data(), terms.size());
      }
    });

    double change;
    if (options.fuse_sweeps) {
      // Lines 5–7 and the convergence delta in one fused pass (two for L2)
      // — bit-identical to the staged arm below, see FusedTermSweep.
      change = FusedTermSweep(graph, edge_probability, s, weighted_sum,
                              options.normalization, pool, &x, &x_prev);
    } else {
      x_prev = x;

      // Lines 5–6: x_t ← Σ_p p(r_i, r_j)·s(p) / P_t.
      ParallelFor(pool, 0, num_terms, grain, [&](size_t lo, size_t hi) {
        for (TermId t = lo; t < hi; ++t) {
          auto adjacent = graph.PairsOfTerm(t);
          if (adjacent.empty()) {
            x[t] = 0.0;
            continue;
          }
          x[t] = weighted_sum(edge_probability.data(), s.data(),
                              adjacent.data(), adjacent.size()) /
                 graph.Pt(t);
        }
      });

      // Line 7: normalization keeps the additive rule bounded.
      Normalize(&x, options.normalization, pool, grain);

      const double* xp = x.data();
      const double* xq = x_prev.data();
      change = ChunkedSum(pool, num_terms, [xp, xq](size_t i) {
        return std::fabs(xp[i] - xq[i]);
      });
    }
    if (options.track_convergence) result.update_trace.push_back(change);
    if (metrics != nullptr) {
      metrics->AddCounter("iter/sweeps");
      metrics->Observe("iter/convergence_delta", change);
    }
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (metrics != nullptr && result.converged) {
    metrics->AddCounter("iter/converged");
  }

  // Final pair scores from the converged weights.
  ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
    for (PairId p = lo; p < hi; ++p) {
      auto terms = graph.TermsOfPair(p);
      s[p] = indexed_sum(x.data(), terms.data(), terms.size());
    }
  });
  return result;
}

}  // namespace gter
