#include "gter/core/iter.h"

#include <cmath>

#include "gter/common/random.h"
#include "gter/common/status.h"

namespace gter {
namespace {

void Normalize(std::vector<double>* x, IterNormalization kind) {
  if (kind == IterNormalization::kLogistic) {
    // x/(1+x) is the division-safe form of the paper's 1/(1 + 1/x).
    for (double& v : *x) v = v / (1.0 + v);
    return;
  }
  double norm_sq = 0.0;
  for (double v : *x) norm_sq += v * v;
  if (norm_sq <= 0.0) return;
  double inv = 1.0 / std::sqrt(norm_sq);
  for (double& v : *x) v *= inv;
}

}  // namespace

IterResult RunIter(const BipartiteGraph& graph,
                   const std::vector<double>& edge_probability,
                   const IterOptions& options) {
  GTER_CHECK(edge_probability.size() == graph.num_pairs());
  const size_t num_terms = graph.num_terms();
  const size_t num_pairs = graph.num_pairs();

  MetricsRegistry* metrics = ResolveMetrics(options.metrics);
  GTER_TRACE_SCOPE_TO(metrics, "iter/total");
  if (metrics != nullptr) metrics->AddCounter("iter/runs");

  IterResult result;
  result.term_weights.resize(num_terms);
  result.pair_scores.assign(num_pairs, 0.0);

  // Line 1: random initialization of x_t in (0, 1).
  Rng rng(options.seed);
  for (double& x : result.term_weights) x = rng.OpenUniformDouble();

  std::vector<double>& x = result.term_weights;
  std::vector<double>& s = result.pair_scores;
  std::vector<double> x_prev(num_terms);

  // Both sweeps are gather-style — every output element reads only from the
  // previous phase's vector and accumulates its own adjacency in storage
  // order — so the parallel chunks are independent and bit-identical to the
  // serial sweep.
  ThreadPool* pool = options.pool;
  const size_t grain = options.grain;
  for (size_t iteration = 0; iteration < options.max_iterations; ++iteration) {
    ScopedTimer sweep_timer(metrics, "iter/sweep",
                            TraceArg{"sweep", static_cast<double>(iteration)});
    x_prev = x;

    // Lines 3–4: s(r_i, r_j) ← Σ_{t shared} x_t.
    ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
      for (PairId p = lo; p < hi; ++p) {
        double acc = 0.0;
        for (TermId t : graph.TermsOfPair(p)) acc += x[t];
        s[p] = acc;
      }
    });

    // Lines 5–6: x_t ← Σ_p p(r_i, r_j)·s(p) / P_t.
    ParallelFor(pool, 0, num_terms, grain, [&](size_t lo, size_t hi) {
      for (TermId t = lo; t < hi; ++t) {
        auto adjacent = graph.PairsOfTerm(t);
        if (adjacent.empty()) {
          x[t] = 0.0;
          continue;
        }
        double acc = 0.0;
        for (PairId p : adjacent) acc += edge_probability[p] * s[p];
        x[t] = acc / graph.Pt(t);
      }
    });

    // Line 7: normalization keeps the additive rule bounded.
    Normalize(&x, options.normalization);

    double change = 0.0;
    for (size_t t = 0; t < num_terms; ++t) change += std::fabs(x[t] - x_prev[t]);
    if (options.track_convergence) result.update_trace.push_back(change);
    if (metrics != nullptr) {
      metrics->AddCounter("iter/sweeps");
      metrics->Observe("iter/convergence_delta", change);
    }
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (metrics != nullptr && result.converged) {
    metrics->AddCounter("iter/converged");
  }

  // Final pair scores from the converged weights.
  ParallelFor(pool, 0, num_pairs, grain, [&](size_t lo, size_t hi) {
    for (PairId p = lo; p < hi; ++p) {
      double acc = 0.0;
      for (TermId t : graph.TermsOfPair(p)) acc += x[t];
      s[p] = acc;
    }
  });
  return result;
}

}  // namespace gter
