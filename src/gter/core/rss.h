#ifndef GTER_CORE_RSS_H_
#define GTER_CORE_RSS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/pair_space.h"
#include "gter/graph/record_graph.h"

namespace gter {

/// Options for the Random-Surfer Sampling method (Algorithms 2–3).
struct RssOptions {
  /// Exponent α of the non-linear transition probability (Eq. 11).
  double alpha = 20.0;
  /// Maximum steps S per walk.
  size_t max_steps = 20;
  /// Walks per edge M (half start from each endpoint).
  size_t num_walks = 100;
  /// Per-step random bonus (1+b)^α on the edge toward the target
  /// (Eq. 12) — the big-clique fix.
  bool use_boost = true;
  /// Return 0 as soon as the surfer leaves the target's neighborhood
  /// (Algorithm 3, lines 8–9).
  bool early_stop = true;
  uint64_t seed = 7;
  /// Minimum pairs per parallel chunk.
  size_t grain = 32;
};

/// Runs RSS over the record graph: estimates the matching probability of
/// every candidate pair as the fraction of rectified random walks that
/// reach the other endpoint within S steps. Indexed by PairId; pairs whose
/// edge has zero weight still get their walks (via uniform fallback rows).
/// Complexity O(M·S·Σdeg) per edge set — the paper's motivation for
/// CliqueRank.
///
/// The pair loop is parallelized over `ctx.pool`; each pair draws from its
/// own forked RNG stream, so results are bit-identical for any thread
/// count. Metrics (walks run, early stops, target hits, steps-per-walk
/// histogram) go to `ctx.metrics`, falling back to the installed
/// thread-local registry. Cancellation is polled at entry and before every
/// pair's walk batch (each batch is num_walks × max_steps of work).
Result<std::vector<double>> RunRss(
    const RecordGraph& graph, const PairSpace& pairs,
    const RssOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_CORE_RSS_H_
