#ifndef GTER_CORE_RESOLVER_H_
#define GTER_CORE_RESOLVER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Uniform interface for every unsupervised pair-scoring method in the
/// library (string baselines, graph-theoretic baselines, and the fusion
/// framework). A scorer maps each candidate pair to a similarity — higher
/// means more likely the same entity. The evaluation harness turns scores
/// into decisions (threshold sweep or the η rule).
class PairScorer {
 public:
  virtual ~PairScorer() = default;

  /// Display name used in reports (e.g. "TF-IDF").
  virtual std::string name() const = 0;

  /// Returns one score per candidate pair (indexed by PairId).
  virtual std::vector<double> Score(const Dataset& dataset,
                                    const PairSpace& pairs) = 0;
};

/// A resolved dataset: per-pair decisions plus the clusters they imply.
struct ResolutionResult {
  /// Decision per candidate pair.
  std::vector<bool> matches;
  /// Dense cluster label per record (transitive closure of matches).
  std::vector<uint32_t> cluster_of;
};

/// Builds clusters from per-pair decisions by transitive closure.
ResolutionResult ResolveFromMatches(const Dataset& dataset,
                                    const PairSpace& pairs,
                                    const std::vector<bool>& matches);

/// Matching record pairs as (a, b) id pairs, for reporting.
std::vector<std::pair<uint32_t, uint32_t>> MatchedPairs(
    const PairSpace& pairs, const std::vector<bool>& matches);

}  // namespace gter

#endif  // GTER_CORE_RESOLVER_H_
