#include "gter/er/blocking.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/status.h"

namespace gter {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t PairKey(RecordId a, RecordId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  GTER_CHECK(num_hashes >= 1);
  Rng rng(seed);
  params_.resize(num_hashes);
  for (auto& p : params_) {
    p.mul = rng.Next() | 1;  // odd multiplier keeps the map bijective
    p.add = rng.Next();
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<TermId>& terms) const {
  std::vector<uint64_t> sig(params_.size(),
                            std::numeric_limits<uint64_t>::max());
  for (TermId t : terms) {
    for (size_t h = 0; h < params_.size(); ++h) {
      uint64_t v = Mix64(params_[h].mul * (static_cast<uint64_t>(t) + 1) +
                         params_[h].add);
      if (v < sig[h]) sig[h] = v;
    }
  }
  return sig;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  GTER_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  size_t equal = 0;
  for (size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i];
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

Result<BlockingResult> LshBlocking(const Dataset& dataset,
                                   const LshBlockingOptions& options,
                                   const ExecContext& ctx) {
  GTER_CHECK(options.num_bands >= 1 && options.rows_per_band >= 1);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  ScopedTimer total_timer(metrics, ctx.trace_or_ambient(), "blocking/lsh");
  const bool two_source = dataset.num_sources() == 2;
  MinHasher hasher(options.num_bands * options.rows_per_band, options.seed);

  std::vector<std::vector<uint64_t>> signatures(dataset.size());
  for (const Record& rec : dataset.records()) {
    signatures[rec.id] = hasher.Signature(rec.terms);
  }

  BlockingResult result;
  std::unordered_set<uint64_t> emitted;
  for (size_t band = 0; band < options.num_bands; ++band) {
    // One poll per band: each band hashes the full dataset, the natural
    // unit of progress for this stage.
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    GTER_TRACE_SPAN("blocking/band", "blocking",
                    TraceArg{"band", static_cast<double>(band)});
    std::unordered_map<uint64_t, std::vector<RecordId>> buckets;
    for (RecordId r = 0; r < dataset.size(); ++r) {
      if (dataset.record(r).terms.empty()) continue;
      uint64_t key = 0x9E3779B97F4A7C15ULL * (band + 1);
      for (size_t row = 0; row < options.rows_per_band; ++row) {
        key = Mix64(key ^ signatures[r][band * options.rows_per_band + row]);
      }
      buckets[key].push_back(r);
    }
    result.buckets += buckets.size();
    for (const auto& [key, members] : buckets) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          RecordId a = members[i], b = members[j];
          if (a > b) std::swap(a, b);
          if (two_source &&
              dataset.record(a).source == dataset.record(b).source) {
            continue;
          }
          if (emitted.insert(PairKey(a, b)).second) {
            result.pairs.push_back(RecordPair{a, b});
          }
        }
      }
    }
  }
  if (metrics != nullptr) {
    metrics->AddCounter("blocking/lsh_pairs", result.pairs.size());
    metrics->AddCounter("blocking/lsh_buckets", result.buckets);
  }
  return result;
}

LshPostingIndex::LshPostingIndex(size_t num_sources,
                                 const LshBlockingOptions& options)
    : options_(options),
      two_source_(num_sources == 2),
      hasher_(options.num_bands * options.rows_per_band, options.seed),
      buckets_(options.num_bands),
      dirty_(options.num_bands, 0) {
  GTER_CHECK(options.num_bands >= 1 && options.rows_per_band >= 1);
}

std::vector<RecordPair> LshPostingIndex::Upsert(
    RecordId r, const std::vector<TermId>& terms, uint32_t source) {
  if (r >= record_keys_.size()) {
    record_keys_.resize(r + 1);
    source_of_.resize(r + 1, 0);
  }
  source_of_[r] = source;
  // Drop the record's previous bucket memberships (re-upsert path).
  if (!record_keys_[r].empty()) {
    for (size_t band = 0; band < options_.num_bands; ++band) {
      auto it = buckets_[band].find(record_keys_[r][band]);
      GTER_CHECK(it != buckets_[band].end());
      auto& members = it->second;
      members.erase(std::find(members.begin(), members.end(), r));
      if (members.empty()) buckets_[band].erase(it);
      dirty_[band] = 1;
    }
    record_keys_[r].clear();
  }
  std::vector<RecordPair> fresh;
  if (terms.empty()) return fresh;

  std::vector<TermId> sorted(terms);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<uint64_t> sig = hasher_.Signature(sorted);
  record_keys_[r].resize(options_.num_bands);
  for (size_t band = 0; band < options_.num_bands; ++band) {
    uint64_t key = 0x9E3779B97F4A7C15ULL * (band + 1);
    for (size_t row = 0; row < options_.rows_per_band; ++row) {
      key = Mix64(key ^ sig[band * options_.rows_per_band + row]);
    }
    record_keys_[r][band] = key;
    auto& members = buckets_[band][key];
    for (RecordId other : members) {
      RecordId a = other, b = r;
      if (a > b) std::swap(a, b);
      if (two_source_ && source_of_[a] == source_of_[b]) continue;
      if (emitted_.insert(PairKey(a, b)).second) {
        fresh.push_back(RecordPair{a, b});
      }
    }
    members.push_back(r);
    dirty_[band] = 1;
  }
  return fresh;
}

size_t LshPostingIndex::num_buckets() const {
  size_t total = 0;
  for (const auto& band : buckets_) total += band.size();
  return total;
}

void LshPostingIndex::ClearDirtyBands() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

Result<BlockingResult> CanopyBlocking(const Dataset& dataset,
                                      const CanopyBlockingOptions& options,
                                      const ExecContext& ctx) {
  GTER_CHECK(options.tight_threshold >= options.loose_threshold);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  MetricsRegistry* metrics = ctx.metrics_or_ambient();
  ScopedTimer total_timer(metrics, ctx.trace_or_ambient(), "blocking/canopy");
  const bool two_source = dataset.num_sources() == 2;
  auto inverted = dataset.BuildInvertedIndex();
  Rng rng(options.seed);

  std::vector<uint32_t> pool(dataset.size());
  for (uint32_t r = 0; r < dataset.size(); ++r) pool[r] = r;
  rng.Shuffle(&pool);
  std::vector<bool> removed(dataset.size(), false);

  BlockingResult result;
  std::unordered_set<uint64_t> emitted;
  std::vector<uint32_t> overlap(dataset.size(), 0);
  std::vector<uint32_t> touched;
  for (uint32_t center : pool) {
    if (removed[center]) continue;
    // One poll per canopy seeded: a canopy sweeps the inverted index, the
    // natural unit of progress for this stage.
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    removed[center] = true;
    // Cheap similarity of every record against the center in one inverted-
    // index sweep: overlap coefficient = |A∩B| / min(|A|,|B|).
    touched.clear();
    for (TermId t : dataset.record(center).terms) {
      for (RecordId r : inverted[t]) {
        if (r == center) continue;
        if (overlap[r] == 0) touched.push_back(r);
        ++overlap[r];
      }
    }
    ++result.buckets;  // one canopy
    size_t center_size = dataset.record(center).terms.size();
    std::vector<uint32_t> members;
    for (uint32_t r : touched) {
      size_t min_size =
          std::min(center_size, dataset.record(r).terms.size());
      double cheap = min_size == 0
                         ? 0.0
                         : static_cast<double>(overlap[r]) /
                               static_cast<double>(min_size);
      overlap[r] = 0;
      if (cheap < options.loose_threshold) continue;
      members.push_back(r);
      if (cheap >= options.tight_threshold) removed[r] = true;
    }
    members.push_back(center);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        RecordId a = members[i], b = members[j];
        if (a > b) std::swap(a, b);
        if (two_source &&
            dataset.record(a).source == dataset.record(b).source) {
          continue;
        }
        if (emitted.insert(PairKey(a, b)).second) {
          result.pairs.push_back(RecordPair{a, b});
        }
      }
    }
  }
  if (metrics != nullptr) {
    metrics->AddCounter("blocking/canopy_pairs", result.pairs.size());
    metrics->AddCounter("blocking/canopies", result.buckets);
  }
  return result;
}

double BlockingRecall(const Dataset& dataset, const GroundTruth& truth,
                      const std::vector<RecordPair>& pairs) {
  std::unordered_set<uint64_t> have;
  have.reserve(pairs.size() * 2);
  for (const RecordPair& rp : pairs) {
    RecordId a = rp.a, b = rp.b;
    if (a > b) std::swap(a, b);
    have.insert(PairKey(a, b));
  }
  uint64_t total = 0, covered = 0;
  for (const auto& cluster : truth.clusters()) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        RecordId a = cluster[i], b = cluster[j];
        if (dataset.num_sources() == 2 &&
            dataset.record(a).source == dataset.record(b).source) {
          continue;
        }
        if (a > b) std::swap(a, b);
        ++total;
        covered += have.count(PairKey(a, b));
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace gter
