#include "gter/er/ground_truth.h"

#include <algorithm>

#include "gter/common/status.h"

namespace gter {

GroundTruth::GroundTruth(std::vector<EntityId> entity_of)
    : entity_of_(std::move(entity_of)) {
  EntityId max_entity = 0;
  for (EntityId e : entity_of_) max_entity = std::max(max_entity, e);
  num_entities_ = entity_of_.empty() ? 0 : static_cast<size_t>(max_entity) + 1;
  clusters_.assign(num_entities_, {});
  for (RecordId r = 0; r < entity_of_.size(); ++r) {
    clusters_[entity_of_[r]].push_back(r);
  }
}

uint64_t GroundTruth::CountMatchingPairs() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    uint64_t k = cluster.size();
    total += k * (k - 1) / 2;
  }
  return total;
}

uint64_t GroundTruth::CountMatchingCrossPairs(
    const std::vector<uint32_t>& source_of) const {
  GTER_CHECK(source_of.size() == entity_of_.size());
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    uint64_t in_source0 = 0, in_source1 = 0;
    for (RecordId r : cluster) {
      if (source_of[r] == 0) {
        ++in_source0;
      } else {
        ++in_source1;
      }
    }
    total += in_source0 * in_source1;
  }
  return total;
}

std::vector<size_t> GroundTruth::ClusterSizeHistogram() const {
  size_t max_size = 0;
  for (const auto& c : clusters_) max_size = std::max(max_size, c.size());
  std::vector<size_t> hist(max_size + 1, 0);
  for (const auto& c : clusters_) ++hist[c.size()];
  return hist;
}

}  // namespace gter
