#ifndef GTER_ER_GROUND_TRUTH_H_
#define GTER_ER_GROUND_TRUTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/er/record.h"

namespace gter {

/// Dense entity (cluster) id.
using EntityId = uint32_t;

/// Ground-truth entity assignment: records with equal entity id refer to the
/// same real-world entity. Used by the evaluation harness, the synthetic
/// generators, and the simulated crowd oracle — never by the unsupervised
/// resolvers themselves.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Builds from a per-record entity assignment (index = record id).
  explicit GroundTruth(std::vector<EntityId> entity_of);

  size_t num_records() const { return entity_of_.size(); }
  size_t num_entities() const { return num_entities_; }

  EntityId entity_of(RecordId r) const { return entity_of_[r]; }

  /// True when the two records refer to the same entity.
  bool IsMatch(RecordId a, RecordId b) const {
    return entity_of_[a] == entity_of_[b];
  }

  /// Record ids of every entity, indexed by entity id.
  const std::vector<std::vector<RecordId>>& clusters() const {
    return clusters_;
  }

  /// Total number of matching record pairs Σ |cluster|·(|cluster|-1)/2.
  /// For two-source datasets pass the per-record source array to count only
  /// cross-source pairs (the candidate universe of such datasets).
  uint64_t CountMatchingPairs() const;
  uint64_t CountMatchingCrossPairs(const std::vector<uint32_t>& source_of) const;

  /// Cluster-size histogram: result[k] = number of entities with exactly k
  /// records (index 0 unused).
  std::vector<size_t> ClusterSizeHistogram() const;

 private:
  std::vector<EntityId> entity_of_;
  std::vector<std::vector<RecordId>> clusters_;
  size_t num_entities_ = 0;
};

}  // namespace gter

#endif  // GTER_ER_GROUND_TRUTH_H_
