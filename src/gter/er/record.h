#ifndef GTER_ER_RECORD_H_
#define GTER_ER_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gter/text/vocabulary.h"

namespace gter {

/// Dense record index within a Dataset.
using RecordId = uint32_t;

inline constexpr RecordId kInvalidRecordId = static_cast<RecordId>(-1);

/// One textual record. The paper treats a record as a bag of terms; we keep
/// both the ordered token sequence (for TF and string baselines) and the
/// sorted-unique term set (for the bipartite graph and set metrics), plus
/// the raw fields for field-aware baselines (Fellegi–Sunter).
struct Record {
  RecordId id = kInvalidRecordId;
  /// Source index: always 0 for single-source datasets; 0 or 1 for
  /// two-source datasets such as Abt-Buy.
  uint32_t source = 0;
  /// Original (pre-normalization) text.
  std::string raw_text;
  /// Original attribute fields, e.g. {name, address, city, phone}.
  std::vector<std::string> fields;
  /// Interned tokens in document order (duplicates allowed).
  std::vector<TermId> tokens;
  /// Sorted, deduplicated term ids.
  std::vector<TermId> terms;
};

}  // namespace gter

#endif  // GTER_ER_RECORD_H_
