#ifndef GTER_ER_PAIR_SPACE_H_
#define GTER_ER_PAIR_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gter/er/dataset.h"

namespace gter {

/// Dense candidate-pair index within a PairSpace.
using PairId = uint32_t;

inline constexpr PairId kInvalidPairId = static_cast<PairId>(-1);

/// An unordered record pair, stored with a < b.
struct RecordPair {
  RecordId a;
  RecordId b;
};

/// The candidate-pair universe of a dataset: every unordered record pair
/// that shares at least one term (the paper's §V-B rule — pairs with no
/// shared term are excluded from the bipartite graph and considered
/// non-matching), restricted to cross-source pairs for two-source datasets.
///
/// Built through the inverted index, so the cost is Σ_t N_t² over surviving
/// terms — run the frequent-term preprocessing first.
class PairSpace {
 public:
  /// Enumerates the candidate pairs of `dataset`.
  static PairSpace Build(const Dataset& dataset);

  /// Builds a pair space from an explicit pair list — the adapter for
  /// external blockers (LshBlocking/CanopyBlocking output) and for tests
  /// that need graphs with controlled topology. Pairs are canonicalized to
  /// a < b, deduplicated, and sorted; self-pairs are dropped.
  static PairSpace FromPairs(std::vector<RecordPair> pairs);

  size_t size() const { return pairs_.size(); }
  const RecordPair& pair(PairId id) const { return pairs_[id]; }
  const std::vector<RecordPair>& pairs() const { return pairs_; }

  /// Id of the pair {a, b}, or kInvalidPairId when the two records share no
  /// term. Order of a and b does not matter.
  PairId Find(RecordId a, RecordId b) const;

  /// Appends the pair {a, b} (canonicalized to a < b) and returns its id; if
  /// the pair is already present, returns the existing id without mutating
  /// the space. This is the incremental-ingest hook: existing PairIds are
  /// stable across Append, so score/probability vectors indexed by PairId
  /// can simply grow. Self-pairs are a checked error.
  PairId Append(RecordId a, RecordId b);

  /// Total pairs in the full candidate universe of the dataset, i.e.
  /// n·(n−1)/2 for single-source or |S0|·|S1| for two-source. Pairs sharing
  /// no term are counted here but not materialized.
  uint64_t UniverseSize(const Dataset& dataset) const;

 private:
  static uint64_t Key(RecordId a, RecordId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<RecordPair> pairs_;
  std::unordered_map<uint64_t, PairId> index_;
};

}  // namespace gter

#endif  // GTER_ER_PAIR_SPACE_H_
