#ifndef GTER_ER_PREPROCESS_H_
#define GTER_ER_PREPROCESS_H_

#include <cstddef>
#include <vector>

#include "gter/er/dataset.h"

namespace gter {

/// Options for the corpus preprocessing step of §VII-A: "tokenize the
/// textual contents and then remove the terms that are very frequent".
struct PreprocessOptions {
  /// Terms contained in more than `max_df_ratio · n` records are removed
  /// from every record's term set (domain-specific stop words dilute the
  /// discriminative terms and blow up the pair space).
  double max_df_ratio = 0.12;
  /// Absolute document-frequency cap applied in addition to the ratio;
  /// 0 disables it.
  size_t max_df_absolute = 0;
};

/// Statistics describing what preprocessing removed.
struct PreprocessStats {
  size_t terms_removed = 0;
  size_t terms_kept = 0;
  size_t token_occurrences_removed = 0;
};

/// Removes very frequent terms from the term sets (and token lists) of every
/// record in `dataset`, in place. The vocabulary itself is untouched —
/// removed term ids simply no longer occur in any record.
PreprocessStats RemoveFrequentTerms(Dataset* dataset,
                                    const PreprocessOptions& options);

/// Convenience: default options.
PreprocessStats RemoveFrequentTerms(Dataset* dataset);

}  // namespace gter

#endif  // GTER_ER_PREPROCESS_H_
