#ifndef GTER_ER_BLOCKING_H_
#define GTER_ER_BLOCKING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Candidate-pair generation beyond the paper's share-one-term rule.
///
/// The bipartite graph of §V-B enumerates every pair sharing a surviving
/// term — quadratic in the posting-list lengths, fine at benchmark scale
/// but not at millions of records. This module provides the standard
/// scalable alternative: MinHash signatures + LSH banding, which emit a
/// pair with probability ≈ 1 − (1 − J^r)^b for Jaccard similarity J. The
/// resulting PairSpace-compatible pair list plugs into the same pipeline.

/// MinHash signatures over term sets.
class MinHasher {
 public:
  /// `num_hashes` permutation approximations (one 64-bit mix each).
  MinHasher(size_t num_hashes, uint64_t seed = 0x5EEDF00D);

  size_t num_hashes() const { return params_.size(); }

  /// Signature of a sorted-unique term-id set.
  std::vector<uint64_t> Signature(const std::vector<TermId>& terms) const;

  /// Fraction of colliding signature slots — an unbiased estimate of the
  /// Jaccard similarity of the underlying sets.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

 private:
  struct Params {
    uint64_t mul;
    uint64_t add;
  };
  std::vector<Params> params_;
};

/// Options for LSH-banded candidate generation.
struct LshBlockingOptions {
  /// Bands × rows-per-band = signature length.
  size_t num_bands = 16;
  size_t rows_per_band = 4;
  uint64_t seed = 0x5EEDF00D;
};

/// Result of a blocking pass.
struct BlockingResult {
  /// Unordered candidate pairs (a < b), deduplicated; for two-source
  /// datasets only cross-source pairs are emitted.
  std::vector<RecordPair> pairs;
  /// Total LSH buckets inspected (diagnostics).
  size_t buckets = 0;
};

/// Runs MinHash-LSH blocking over the dataset's term sets. Metrics go to
/// `ctx.metrics` with ambient fallback; cancellation is polled at entry
/// and once per band.
Result<BlockingResult> LshBlocking(
    const Dataset& dataset, const LshBlockingOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

/// Options for canopy blocking (McCallum, Nigam & Ungar): a cheap
/// similarity (token overlap through the inverted index) partitions
/// records into overlapping canopies; only within-canopy pairs survive.
struct CanopyBlockingOptions {
  /// Records with cheap similarity ≥ loose join the canopy.
  double loose_threshold = 0.2;
  /// Records with cheap similarity ≥ tight are removed from the center
  /// pool (they will not seed further canopies). tight ≥ loose.
  double tight_threshold = 0.5;
  uint64_t seed = 31;
};

/// Runs canopy blocking with overlap-coefficient cheap similarity.
/// Metrics go to `ctx.metrics` with ambient fallback; cancellation is
/// polled at entry and once per canopy center.
Result<BlockingResult> CanopyBlocking(
    const Dataset& dataset, const CanopyBlockingOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

/// Recall of a blocking result against the ground-truth matching pairs
/// (cross-source only for two-source data): the fraction of true matches
/// that survived blocking. The universal quality metric for blockers.
double BlockingRecall(const Dataset& dataset, const GroundTruth& truth,
                      const std::vector<RecordPair>& pairs);

}  // namespace gter

#endif  // GTER_ER_BLOCKING_H_
