#ifndef GTER_ER_BLOCKING_H_
#define GTER_ER_BLOCKING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Candidate-pair generation beyond the paper's share-one-term rule.
///
/// The bipartite graph of §V-B enumerates every pair sharing a surviving
/// term — quadratic in the posting-list lengths, fine at benchmark scale
/// but not at millions of records. This module provides the standard
/// scalable alternative: MinHash signatures + LSH banding, which emit a
/// pair with probability ≈ 1 − (1 − J^r)^b for Jaccard similarity J. The
/// resulting PairSpace-compatible pair list plugs into the same pipeline.

/// MinHash signatures over term sets.
class MinHasher {
 public:
  /// `num_hashes` permutation approximations (one 64-bit mix each).
  MinHasher(size_t num_hashes, uint64_t seed = 0x5EEDF00D);

  size_t num_hashes() const { return params_.size(); }

  /// Signature of a sorted-unique term-id set.
  std::vector<uint64_t> Signature(const std::vector<TermId>& terms) const;

  /// Fraction of colliding signature slots — an unbiased estimate of the
  /// Jaccard similarity of the underlying sets.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

 private:
  struct Params {
    uint64_t mul;
    uint64_t add;
  };
  std::vector<Params> params_;
};

/// Options for LSH-banded candidate generation.
struct LshBlockingOptions {
  /// Bands × rows-per-band = signature length.
  size_t num_bands = 16;
  size_t rows_per_band = 4;
  uint64_t seed = 0x5EEDF00D;
};

/// Result of a blocking pass.
struct BlockingResult {
  /// Unordered candidate pairs (a < b), deduplicated; for two-source
  /// datasets only cross-source pairs are emitted.
  std::vector<RecordPair> pairs;
  /// Total LSH buckets inspected (diagnostics).
  size_t buckets = 0;
};

/// Runs MinHash-LSH blocking over the dataset's term sets. Metrics go to
/// `ctx.metrics` with ambient fallback; cancellation is polled at entry
/// and once per band.
Result<BlockingResult> LshBlocking(
    const Dataset& dataset, const LshBlockingOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

/// Incremental MinHash-LSH blocking state (DESIGN.md §4g): the banded
/// bucket tables kept live so records can be upserted one at a time.
/// `Upsert` hashes one record into every band and returns only the
/// candidate pairs not yet emitted — streaming all records (any order)
/// through Upsert yields exactly the batch `LshBlocking` pair set. Each
/// band carries a dirty flag, raised when its buckets change and lowered
/// by `ClearDirtyBands()`, so a consumer re-scanning bands after a batch
/// of upserts can skip the untouched ones.
class LshPostingIndex {
 public:
  /// `num_sources` fixes the cross-source rule (pairs within one source
  /// are suppressed iff num_sources == 2, matching LshBlocking).
  explicit LshPostingIndex(size_t num_sources,
                           const LshBlockingOptions& options = {});

  /// Inserts record `r` (or re-hashes it, if already present with a
  /// different term set) and returns the newly discovered candidate
  /// pairs, a < b, deduplicated against every pair returned before.
  /// Records with empty term sets occupy no bucket (as in the batch
  /// pass). `terms` need not be sorted.
  std::vector<RecordPair> Upsert(RecordId r, const std::vector<TermId>& terms,
                                 uint32_t source);

  size_t num_bands() const { return options_.num_bands; }
  /// Total buckets across all bands (diagnostics, = BlockingResult::buckets
  /// after a full stream).
  size_t num_buckets() const;
  /// Candidate pairs emitted so far.
  size_t num_pairs() const { return emitted_.size(); }
  /// Per-band dirty flags (1 = bucket membership changed since the last
  /// ClearDirtyBands).
  const std::vector<uint8_t>& dirty_bands() const { return dirty_; }
  void ClearDirtyBands();

 private:
  LshBlockingOptions options_;
  bool two_source_;
  MinHasher hasher_;
  /// Per band: bucket key → member records.
  std::vector<std::unordered_map<uint64_t, std::vector<RecordId>>> buckets_;
  /// Per record: its current key in each band (empty = not bucketed).
  std::vector<std::vector<uint64_t>> record_keys_;
  std::vector<uint32_t> source_of_;
  std::unordered_set<uint64_t> emitted_;
  std::vector<uint8_t> dirty_;
};

/// Options for canopy blocking (McCallum, Nigam & Ungar): a cheap
/// similarity (token overlap through the inverted index) partitions
/// records into overlapping canopies; only within-canopy pairs survive.
struct CanopyBlockingOptions {
  /// Records with cheap similarity ≥ loose join the canopy.
  double loose_threshold = 0.2;
  /// Records with cheap similarity ≥ tight are removed from the center
  /// pool (they will not seed further canopies). tight ≥ loose.
  double tight_threshold = 0.5;
  uint64_t seed = 31;
};

/// Runs canopy blocking with overlap-coefficient cheap similarity.
/// Metrics go to `ctx.metrics` with ambient fallback; cancellation is
/// polled at entry and once per canopy center.
Result<BlockingResult> CanopyBlocking(
    const Dataset& dataset, const CanopyBlockingOptions& options = {},
    const ExecContext& ctx = DefaultExecContext());

/// Recall of a blocking result against the ground-truth matching pairs
/// (cross-source only for two-source data): the fraction of true matches
/// that survived blocking. The universal quality metric for blockers.
double BlockingRecall(const Dataset& dataset, const GroundTruth& truth,
                      const std::vector<RecordPair>& pairs);

}  // namespace gter

#endif  // GTER_ER_BLOCKING_H_
