#include "gter/er/preprocess.h"

#include <algorithm>

namespace gter {

PreprocessStats RemoveFrequentTerms(Dataset* dataset,
                                    const PreprocessOptions& options) {
  PreprocessStats stats;
  const size_t n = dataset->size();
  std::vector<uint32_t> df = dataset->ComputeDocumentFrequencies();
  size_t ratio_cap = std::max<size_t>(
      1, static_cast<size_t>(options.max_df_ratio * static_cast<double>(n)));
  size_t cap = ratio_cap;
  if (options.max_df_absolute > 0) {
    cap = std::min(cap, options.max_df_absolute);
  }
  std::vector<bool> drop(df.size(), false);
  for (size_t t = 0; t < df.size(); ++t) {
    if (df[t] > cap) {
      drop[t] = true;
      if (df[t] > 0) ++stats.terms_removed;
    } else if (df[t] > 0) {
      ++stats.terms_kept;
    }
  }
  for (Record& rec : *dataset->mutable_records()) {
    auto keep = [&](TermId t) { return !drop[t]; };
    size_t before = rec.tokens.size();
    rec.tokens.erase(
        std::remove_if(rec.tokens.begin(), rec.tokens.end(),
                       [&](TermId t) { return !keep(t); }),
        rec.tokens.end());
    stats.token_occurrences_removed += before - rec.tokens.size();
    rec.terms.erase(
        std::remove_if(rec.terms.begin(), rec.terms.end(),
                       [&](TermId t) { return !keep(t); }),
        rec.terms.end());
  }
  return stats;
}

PreprocessStats RemoveFrequentTerms(Dataset* dataset) {
  return RemoveFrequentTerms(dataset, PreprocessOptions{});
}

}  // namespace gter
