#include "gter/er/dataset.h"

#include <algorithm>

#include "gter/common/metrics.h"
#include "gter/common/status.h"

namespace gter {

RecordId Dataset::AddRecord(uint32_t source, std::string raw_text,
                            std::vector<std::string> fields) {
  GTER_CHECK(source < num_sources_);
  Record rec;
  rec.id = static_cast<RecordId>(records_.size());
  rec.source = source;
  rec.raw_text = std::move(raw_text);
  rec.fields = std::move(fields);
  for (const std::string& token : Tokenize(rec.raw_text, tokenizer_options_)) {
    rec.tokens.push_back(vocab_.Intern(token));
  }
  rec.terms = rec.tokens;
  std::sort(rec.terms.begin(), rec.terms.end());
  rec.terms.erase(std::unique(rec.terms.begin(), rec.terms.end()),
                  rec.terms.end());
  if (MetricsRegistry* metrics = MetricsRegistry::Current()) {
    metrics->AddCounter("dataset/records");
    metrics->AddCounter("dataset/tokens", rec.tokens.size());
    // Last write wins — ends up as the final vocabulary size.
    metrics->SetGauge("dataset/vocabulary", static_cast<double>(vocab_.size()));
  }
  records_.push_back(std::move(rec));
  return records_.back().id;
}

std::vector<uint32_t> Dataset::ComputeDocumentFrequencies() const {
  std::vector<uint32_t> df(vocab_.size(), 0);
  for (const Record& rec : records_) {
    for (TermId t : rec.terms) ++df[t];
  }
  return df;
}

std::vector<std::vector<RecordId>> Dataset::BuildInvertedIndex() const {
  std::vector<std::vector<RecordId>> index(vocab_.size());
  for (const Record& rec : records_) {
    for (TermId t : rec.terms) index[t].push_back(rec.id);
  }
  return index;
}

std::vector<std::vector<TermId>> Dataset::TokenCorpus() const {
  std::vector<std::vector<TermId>> corpus;
  corpus.reserve(records_.size());
  for (const Record& rec : records_) corpus.push_back(rec.tokens);
  return corpus;
}

}  // namespace gter
