#include "gter/er/csv.h"

#include <fstream>

#include "gter/common/parse_number.h"

namespace gter {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    // CR is quoted too: an unquoted CR would read back as a record
    // terminator (CRLF files), corrupting the round-trip.
    bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

void CsvParser::EndField() {
  record_.push_back(std::move(field_));
  field_.clear();
}

void CsvParser::EndRecord() {
  EndField();
  rows_.push_back(std::move(record_));
  record_.clear();
  state_ = State::kRecordStart;
}

void CsvParser::Feed(std::string_view chunk) {
  for (char c : chunk) {
    // A CRLF pair that acted as a terminator consumes both bytes, even
    // when the chunk boundary falls between them.
    if (pending_cr_) {
      pending_cr_ = false;
      if (c == '\n') continue;
    }
    switch (state_) {
      case State::kRecordStart:
      case State::kFieldStart:
        if (c == '"') {
          state_ = State::kQuoted;
        } else if (c == ',') {
          EndField();
          state_ = State::kFieldStart;
        } else if (c == '\n' || c == '\r') {
          // A bare terminator is a record with one empty field — preserved,
          // not skipped (a skip renumbers every later record).
          pending_cr_ = (c == '\r');
          EndRecord();
        } else {
          field_.push_back(c);
          state_ = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == ',') {
          EndField();
          state_ = State::kFieldStart;
        } else if (c == '\n' || c == '\r') {
          pending_cr_ = (c == '\r');
          EndRecord();
        } else {
          // Includes '"': a quote inside an unquoted field is kept literal
          // (FormatCsvLine never emits one, so this is read-side leniency).
          field_.push_back(c);
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state_ = State::kQuoteInQuoted;
        } else {
          field_.push_back(c);  // commas, LF, CR: all literal when quoted
        }
        break;
      case State::kQuoteInQuoted:
        if (c == '"') {
          field_.push_back('"');  // "" escape
          state_ = State::kQuoted;
        } else if (c == ',') {
          EndField();
          state_ = State::kFieldStart;
        } else if (c == '\n' || c == '\r') {
          pending_cr_ = (c == '\r');
          EndRecord();
        } else {
          // Text after a closing quote: lenient, continue unquoted.
          field_.push_back(c);
          state_ = State::kUnquoted;
        }
        break;
    }
  }
}

Status CsvParser::Finish() {
  switch (state_) {
    case State::kQuoted:
      return Status::InvalidArgument(
          "unterminated quoted field at end of CSV input (record " +
          std::to_string(rows_.size() + 1) + ")");
    case State::kRecordStart:
      // A trailing terminator already flushed the last record; nothing
      // pending, so no phantom empty record is emitted.
      break;
    case State::kFieldStart:
    case State::kUnquoted:
    case State::kQuoteInQuoted:
      EndRecord();  // final record without a trailing newline
      break;
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  CsvParser parser;
  parser.Feed(text);
  Status s = parser.Finish();
  if (!s.ok()) return s;
  return parser.TakeRows();
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  // Binary mode: the parser owns CRLF handling; no newline translation.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  CsvParser parser;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    parser.Feed(std::string_view(buffer, static_cast<size_t>(in.gcount())));
  }
  if (in.bad()) return Status::IOError("error reading " + path);
  Status s = parser.Finish();
  if (!s.ok()) return s;
  return parser.TakeRows();
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    out << FormatCsvLine(row) << "\n";
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth& truth) {
  if (truth.num_records() != dataset.size()) {
    return Status::InvalidArgument("ground truth size mismatch");
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"entity", "source", "text"});
  for (const Record& rec : dataset.records()) {
    std::vector<std::string> row;
    row.push_back(std::to_string(truth.entity_of(rec.id)));
    row.push_back(std::to_string(rec.source));
    if (rec.fields.empty()) {
      row.push_back(rec.raw_text);
    } else {
      for (const auto& f : rec.fields) row.push_back(f);
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, rows);
}

Result<std::pair<Dataset, GroundTruth>> LoadDatasetCsv(
    const std::string& path, const std::string& dataset_name,
    uint32_t num_sources) {
  auto rows_result = ReadCsvFile(path);
  if (!rows_result.ok()) return rows_result.status();
  const auto& rows = rows_result.value();
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);
  Dataset dataset(dataset_name, num_sources);
  std::vector<EntityId> entity_of;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 3) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has fewer than 3 columns");
    }
    auto entity = ParseUint32(row[0]);
    if (!entity.ok()) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " entity: " + entity.status().message());
    }
    auto source = ParseUint32(row[1]);
    if (!source.ok()) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " source: " + source.status().message());
    }
    if (source.value() >= num_sources) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has out-of-range source");
    }
    std::vector<std::string> fields(row.begin() + 2, row.end());
    std::string text;
    for (const auto& f : fields) {
      if (!text.empty()) text.push_back(' ');
      text += f;
    }
    dataset.AddRecord(source.value(), std::move(text), std::move(fields));
    entity_of.push_back(entity.value());
  }
  return std::make_pair(std::move(dataset), GroundTruth(std::move(entity_of)));
}

}  // namespace gter
