#include "gter/er/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gter {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    bool needs_quotes = f.find_first_of(",\"\n") != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    out << FormatCsvLine(row) << "\n";
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth& truth) {
  if (truth.num_records() != dataset.size()) {
    return Status::InvalidArgument("ground truth size mismatch");
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"entity", "source", "text"});
  for (const Record& rec : dataset.records()) {
    std::vector<std::string> row;
    row.push_back(std::to_string(truth.entity_of(rec.id)));
    row.push_back(std::to_string(rec.source));
    if (rec.fields.empty()) {
      row.push_back(rec.raw_text);
    } else {
      for (const auto& f : rec.fields) row.push_back(f);
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, rows);
}

Result<std::pair<Dataset, GroundTruth>> LoadDatasetCsv(
    const std::string& path, const std::string& dataset_name,
    uint32_t num_sources) {
  auto rows_result = ReadCsvFile(path);
  if (!rows_result.ok()) return rows_result.status();
  const auto& rows = rows_result.value();
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);
  Dataset dataset(dataset_name, num_sources);
  std::vector<EntityId> entity_of;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 3) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has fewer than 3 columns");
    }
    EntityId entity = static_cast<EntityId>(std::strtoul(row[0].c_str(),
                                                         nullptr, 10));
    uint32_t source = static_cast<uint32_t>(std::strtoul(row[1].c_str(),
                                                         nullptr, 10));
    if (source >= num_sources) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has out-of-range source");
    }
    std::vector<std::string> fields(row.begin() + 2, row.end());
    std::string text;
    for (const auto& f : fields) {
      if (!text.empty()) text.push_back(' ');
      text += f;
    }
    dataset.AddRecord(source, std::move(text), std::move(fields));
    entity_of.push_back(entity);
  }
  return std::make_pair(std::move(dataset), GroundTruth(std::move(entity_of)));
}

}  // namespace gter
