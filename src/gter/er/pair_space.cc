#include "gter/er/pair_space.h"

#include <algorithm>

#include "gter/common/metrics.h"
#include "gter/common/status.h"

namespace gter {

PairSpace PairSpace::Build(const Dataset& dataset) {
  GTER_TRACE_SCOPE("pairspace/build");
  PairSpace space;
  const bool two_source = dataset.num_sources() == 2;
  auto inverted = dataset.BuildInvertedIndex();
  for (const auto& posting : inverted) {
    for (size_t i = 0; i < posting.size(); ++i) {
      for (size_t j = i + 1; j < posting.size(); ++j) {
        RecordId a = posting[i];
        RecordId b = posting[j];
        if (a > b) std::swap(a, b);
        if (two_source &&
            dataset.record(a).source == dataset.record(b).source) {
          continue;
        }
        uint64_t key = Key(a, b);
        if (space.index_.find(key) != space.index_.end()) continue;
        space.index_.emplace(key, static_cast<PairId>(space.pairs_.size()));
        space.pairs_.push_back(RecordPair{a, b});
      }
    }
  }
  if (MetricsRegistry* metrics = MetricsRegistry::Current()) {
    metrics->AddCounter("pairspace/pairs", space.pairs_.size());
  }
  return space;
}

PairSpace PairSpace::FromPairs(std::vector<RecordPair> pairs) {
  for (RecordPair& rp : pairs) {
    if (rp.a > rp.b) std::swap(rp.a, rp.b);
  }
  std::sort(pairs.begin(), pairs.end(), [](RecordPair x, RecordPair y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  PairSpace space;
  for (const RecordPair& rp : pairs) {
    if (rp.a == rp.b) continue;
    uint64_t key = Key(rp.a, rp.b);
    auto [it, inserted] =
        space.index_.emplace(key, static_cast<PairId>(space.pairs_.size()));
    if (inserted) space.pairs_.push_back(rp);
  }
  if (MetricsRegistry* metrics = MetricsRegistry::Current()) {
    metrics->AddCounter("pairspace/pairs", space.pairs_.size());
  }
  return space;
}

PairId PairSpace::Append(RecordId a, RecordId b) {
  if (a > b) std::swap(a, b);
  GTER_CHECK(a != b);
  uint64_t key = Key(a, b);
  auto [it, inserted] =
      index_.emplace(key, static_cast<PairId>(pairs_.size()));
  if (inserted) {
    pairs_.push_back(RecordPair{a, b});
    if (MetricsRegistry* metrics = MetricsRegistry::Current()) {
      metrics->AddCounter("pairspace/pairs");
    }
  }
  return it->second;
}

PairId PairSpace::Find(RecordId a, RecordId b) const {
  if (a > b) std::swap(a, b);
  auto it = index_.find(Key(a, b));
  return it == index_.end() ? kInvalidPairId : it->second;
}

uint64_t PairSpace::UniverseSize(const Dataset& dataset) const {
  if (dataset.num_sources() == 2) {
    uint64_t s0 = 0, s1 = 0;
    for (const Record& r : dataset.records()) {
      if (r.source == 0) {
        ++s0;
      } else {
        ++s1;
      }
    }
    return s0 * s1;
  }
  uint64_t n = dataset.size();
  return n * (n - 1) / 2;
}

}  // namespace gter
