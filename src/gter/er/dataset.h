#ifndef GTER_ER_DATASET_H_
#define GTER_ER_DATASET_H_

#include <string>
#include <vector>

#include "gter/er/record.h"
#include "gter/text/tokenizer.h"
#include "gter/text/vocabulary.h"

namespace gter {

/// A named collection of records sharing one vocabulary. This is the input
/// type of every resolver in the library.
class Dataset {
 public:
  explicit Dataset(std::string name = "dataset", uint32_t num_sources = 1)
      : name_(std::move(name)), num_sources_(num_sources) {}

  /// Tokenizes `raw_text`, interns the tokens, and appends a record.
  /// `fields` is kept verbatim for field-aware baselines; pass {} when the
  /// dataset has no field structure. Returns the new record's id.
  RecordId AddRecord(uint32_t source, std::string raw_text,
                     std::vector<std::string> fields = {});

  /// Tokenizer used by AddRecord; set before adding records.
  void set_tokenizer_options(TokenizerOptions options) {
    tokenizer_options_ = std::move(options);
  }

  const std::string& name() const { return name_; }
  uint32_t num_sources() const { return num_sources_; }
  size_t size() const { return records_.size(); }

  const Record& record(RecordId id) const { return records_[id]; }
  const std::vector<Record>& records() const { return records_; }

  const Vocabulary& vocabulary() const { return vocab_; }

  /// Document frequency of every term: df[t] = number of records whose term
  /// set contains t.
  std::vector<uint32_t> ComputeDocumentFrequencies() const;

  /// Inverted index: for every term, the sorted list of record ids whose
  /// term set contains it.
  std::vector<std::vector<RecordId>> BuildInvertedIndex() const;

  /// Token lists of every record (document order, duplicates allowed) —
  /// the corpus format TfIdfModel expects.
  std::vector<std::vector<TermId>> TokenCorpus() const;

  /// Direct access for the preprocessing pipeline (rebuilds term sets).
  std::vector<Record>* mutable_records() { return &records_; }

 private:
  std::string name_;
  uint32_t num_sources_;
  TokenizerOptions tokenizer_options_;
  Vocabulary vocab_;
  std::vector<Record> records_;
};

}  // namespace gter

#endif  // GTER_ER_DATASET_H_
