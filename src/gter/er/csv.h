#ifndef GTER_ER_CSV_H_
#define GTER_ER_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "gter/common/status.h"
#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"

namespace gter {

/// Parses one line of RFC-4180-ish CSV (double-quote quoting, embedded
/// commas and escaped quotes inside quoted fields). The line must not
/// contain record terminators — use CsvParser / ParseCsv for full
/// documents, where quoted fields may span lines.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Serializes fields into one CSV record, quoting where needed. Quoting
/// covers `,`, `"`, LF, and CR, so any byte string round-trips through
/// FormatCsvLine → CsvParser (see DESIGN.md §5 for the contract).
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Incremental RFC-4180 record reader. Unlike a line-by-line loop, this is
/// a character state machine, so quoted fields may contain embedded
/// newlines, CRs, commas, and escaped quotes, and an empty record (a bare
/// newline, i.e. one empty field) is preserved rather than dropped —
/// dropping one used to shift every subsequent GroundTruth entity id.
///
/// Feed the document in arbitrary chunks, then Finish() exactly once:
///
///   CsvParser parser;
///   parser.Feed(chunk1);
///   parser.Feed(chunk2);
///   GTER_RETURN_IF_ERROR(parser.Finish());
///   use(parser.rows());
///
/// Record terminators are LF, CRLF, or a lone CR (consumed as one
/// terminator each); a final record without a trailing terminator is
/// emitted by Finish(). Finish() returns InvalidArgument when the document
/// ends inside an unterminated quoted field.
class CsvParser {
 public:
  /// Consumes the next chunk of the document.
  void Feed(std::string_view chunk);

  /// Flushes the final record (if any) and validates terminal state.
  Status Finish();

  /// Parsed records, one vector of fields per record.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Moves the rows out (after Finish()).
  std::vector<std::vector<std::string>> TakeRows() { return std::move(rows_); }

 private:
  enum class State {
    kRecordStart,   // nothing of the current record seen yet
    kFieldStart,    // directly after a comma
    kUnquoted,      // inside an unquoted field
    kQuoted,        // inside a quoted field
    kQuoteInQuoted  // just saw a '"' inside a quoted field ("" vs close)
  };

  void EndField();
  void EndRecord();

  State state_ = State::kRecordStart;
  bool pending_cr_ = false;  // last char of the previous chunk was a bare CR
  std::string field_;
  std::vector<std::string> record_;
  std::vector<std::vector<std::string>> rows_;
};

/// One-shot CsvParser over a whole document held in memory.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Reads a CSV file through the streaming CsvParser (fixed-size chunks, so
/// the parse never needs line-sized lookahead). One row per record; quoted
/// fields may span lines; empty records are preserved.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting. Each record is terminated with LF;
/// WriteCsvFile → ReadCsvFile is the identity on any field bytes.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Persists a dataset plus ground truth in the library's interchange format:
/// header `entity,source,field...` followed by one row per record. Fields
/// are the record's raw fields when present, else the raw text as a single
/// field.
Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth& truth);

/// Loads a dataset saved by SaveDatasetCsv. All fields are joined with
/// spaces to form the record text. Entity/source columns are parsed
/// strictly — a malformed number is InvalidArgument, not silently zero.
Result<std::pair<Dataset, GroundTruth>> LoadDatasetCsv(
    const std::string& path, const std::string& dataset_name,
    uint32_t num_sources);

}  // namespace gter

#endif  // GTER_ER_CSV_H_
