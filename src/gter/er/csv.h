#ifndef GTER_ER_CSV_H_
#define GTER_ER_CSV_H_

#include <string>
#include <vector>

#include "gter/common/status.h"
#include "gter/er/dataset.h"
#include "gter/er/ground_truth.h"

namespace gter {

/// Parses one line of RFC-4180-ish CSV (double-quote quoting, embedded
/// commas and escaped quotes inside quoted fields). Newlines inside quoted
/// fields are not supported (the ER benchmark formats do not use them).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Serializes fields into one CSV line, quoting where needed.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads a whole CSV file; returns one row per line. An empty trailing line
/// is skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Persists a dataset plus ground truth in the library's interchange format:
/// header `entity,source,field...` followed by one row per record. Fields
/// are the record's raw fields when present, else the raw text as a single
/// field.
Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth& truth);

/// Loads a dataset saved by SaveDatasetCsv. All fields are joined with
/// spaces to form the record text.
Result<std::pair<Dataset, GroundTruth>> LoadDatasetCsv(
    const std::string& path, const std::string& dataset_name,
    uint32_t num_sources);

}  // namespace gter

#endif  // GTER_ER_CSV_H_
