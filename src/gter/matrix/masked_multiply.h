#ifndef GTER_MATRIX_MASKED_MULTIPLY_H_
#define GTER_MATRIX_MASKED_MULTIPLY_H_

#include "gter/common/exec_context.h"
#include "gter/matrix/csr_matrix.h"

namespace gter {

/// The sparse kernel behind CliqueRank's recurrence
///   M^k = M_t × (M^{k-1} ⊙ M_n).
///
/// Entries of M^k off the adjacency pattern M_n are annihilated by the
/// Hadamard mask at the next step and never contribute to the accumulated
/// matching probability (which is read only on graph edges), so the whole
/// iteration can be confined to the structural pattern of M_n.
///
/// `ComputeMaskedProduct` computes, for every structural entry (i, j) of
/// `pattern` (= M_n, values ignored):
///
///   out[pos(i,j)] = Σ_k trans[i,k] · prev_dense[k·n + j]
///
/// where `prev_dense` is an n×n row-major scratch buffer holding M^{k-1}
/// already masked to the pattern (zero elsewhere). Output is written into
/// `out_values`, parallel to the CSR value array of `pattern`.
///
/// Cost: Σ_{(i,j)∈pattern} nnz(trans row i) — linear in pattern edges times
/// average degree, vs. n³ for the dense product.
///
/// Parallelized over row chunks via `ctx.pool`, dispatched at
/// `ctx.simd_level()`, polled per row chunk; on cancellation returns early
/// with `out_values` partially written.
Status ComputeMaskedProduct(const CsrMatrix& trans, const double* prev_dense,
                            const CsrMatrix& pattern, double* out_values,
                            const ExecContext& ctx = DefaultExecContext());

/// Fully sparse variant of `ComputeMaskedProduct`: M^{k-1} stays in CSR
/// form (`prev_values`, parallel to `pattern`'s value array) instead of
/// being scattered into an n×n dense scratch. Row i is computed Gustavson
/// style — gather trans-row-i-scaled pattern rows into an O(n) dense
/// accumulator, read the pattern positions out, zero the touched entries —
/// so peak extra memory is O(n) per worker chunk rather than O(n²) shared.
///
/// Summation order per output entry matches the dense-scratch kernel
/// (ascending k over trans row i), so the two kernels are bit-identical.
Status ComputeMaskedProductCsr(const CsrMatrix& trans,
                               const double* prev_values,
                               const CsrMatrix& pattern, double* out_values,
                               const ExecContext& ctx = DefaultExecContext());

/// Fused-accumulate variant: in the same pass that reads row i's results
/// out of the dense accumulator, also performs
///   accum_values[pos] += out_values[pos]
/// for every structural position of the row (`accum_values` parallel to
/// `pattern`'s value array; may be null, which degrades to the plain
/// kernel). This removes CliqueRank's separate accumulation sweep over the
/// value array each step. Determinism argument: the accumulate is
/// elementwise on positions this worker just wrote — it reorders nothing,
/// adds no cross-thread sharing, and leaves `out_values` untouched, so the
/// fused kernel is bit-identical to running the plain kernel followed by a
/// separate `accum += out` sweep.
Status ComputeMaskedProductCsr(const CsrMatrix& trans,
                               const double* prev_values,
                               const CsrMatrix& pattern, double* out_values,
                               double* accum_values,
                               const ExecContext& ctx = DefaultExecContext());

/// Scatters CSR `values` (parallel to `pattern`'s value array) into the
/// dense n×n row-major buffer `dense`, zeroing previous pattern positions
/// first. Off-pattern entries of `dense` are assumed to already be zero and
/// are not touched.
void ScatterToDense(const CsrMatrix& pattern, const double* values,
                    double* dense);

}  // namespace gter

#endif  // GTER_MATRIX_MASKED_MULTIPLY_H_
