#ifndef GTER_MATRIX_CSR_MATRIX_H_
#define GTER_MATRIX_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gter/matrix/dense_matrix.h"

namespace gter {

/// Compressed sparse row matrix of doubles. Column indices within each row
/// are sorted ascending (the builder sorts and merges duplicates by
/// summation).
class CsrMatrix {
 public:
  /// One structural entry (used by the builder).
  struct Triplet {
    uint32_t row;
    uint32_t col;
    double value;
  };

  CsrMatrix() = default;

  /// Builds from an unordered triplet list; duplicate (row, col) entries are
  /// summed. Explicit zeros are kept (they are structural).
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  /// Column indices of row `r`, sorted ascending.
  std::span<const uint32_t> RowCols(size_t r) const {
    return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Values of row `r`, parallel to RowCols(r).
  std::span<const double> RowValues(size_t r) const {
    return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Mutable values of row `r`.
  std::span<double> MutableRowValues(size_t r) {
    return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Flat value array (nnz entries, row-major CSR order).
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  /// Returns the value at (r, c), or 0 when the entry is not structural.
  /// O(log nnz(row)) via binary search.
  double At(size_t r, size_t c) const;

  /// Returns the flat CSR position of entry (r, c), or -1 when absent.
  int64_t PositionOf(size_t r, size_t c) const;

  /// Flat CSR position of the first entry of row `r` (== the position of
  /// every entry in RowCols(r)/RowValues(r) offset by its index).
  size_t RowStart(size_t r) const { return row_ptr_[r]; }

  /// y = this × x (dense vector).
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  /// Dense copy (for tests and the dense CliqueRank engine).
  DenseMatrix ToDense() const;

  /// Divides each row by its sum (rows with zero sum are left untouched) —
  /// turns a non-negative weight matrix into a stochastic transition matrix.
  void NormalizeRows();

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_;     // rows+1 entries
  std::vector<uint32_t> col_idx_;   // nnz entries
  std::vector<double> values_;      // nnz entries
};

}  // namespace gter

#endif  // GTER_MATRIX_CSR_MATRIX_H_
