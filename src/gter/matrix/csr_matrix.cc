#include "gter/matrix/csr_matrix.h"

#include <algorithm>

#include "gter/common/status.h"

namespace gter {

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    GTER_CHECK(t.row < rows && t.col < cols);
    double sum = 0.0;
    size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(t.col);
    m.values_.push_back(sum);
    ++m.row_ptr_[t.row + 1];
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

double CsrMatrix::At(size_t r, size_t c) const {
  int64_t pos = PositionOf(r, c);
  return pos < 0 ? 0.0 : values_[static_cast<size_t>(pos)];
}

int64_t CsrMatrix::PositionOf(size_t r, size_t c) const {
  GTER_CHECK(r < rows_ && c < cols_);
  const uint32_t* begin = col_idx_.data() + row_ptr_[r];
  const uint32_t* end = col_idx_.data() + row_ptr_[r + 1];
  const uint32_t* it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return -1;
  return static_cast<int64_t>(it - col_idx_.data());
}

std::vector<double> CsrMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  GTER_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += values_[p] * x[col_idx_[p]];
    }
    y[r] = acc;
  }
  return y;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out(r, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

void CsrMatrix::NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) sum += values_[p];
    if (sum <= 0.0) continue;
    double inv = 1.0 / sum;
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) values_[p] *= inv;
  }
}

}  // namespace gter
