#ifndef GTER_MATRIX_MATRIX_SIMD_H_
#define GTER_MATRIX_MATRIX_SIMD_H_

// Internal declarations of the AVX2/AVX-512 matrix kernels (gemm_avx2.cc,
// masked_multiply_avx2.cc, gemm_avx512.cc, masked_multiply_avx512.cc). Only
// the dispatchers in gemm.cc and masked_multiply.cc include this; the
// public API stays in gemm.h / masked_multiply.h.

#include "gter/common/cpu.h"
#include "gter/common/exec_context.h"
#include "gter/matrix/csr_matrix.h"
#include "gter/matrix/dense_matrix.h"

namespace gter {
namespace internal {

#if GTER_HAVE_AVX2

/// BLIS-style packed GEMM: C += A×B with B packed into kc×8 panels, A into
/// 4-row micropanels, and a register-blocked 4×8 FMA microkernel.
/// `c` must already hold the desired initial value (the dispatcher zeroes
/// it). Parallelized over 64-row blocks of A via `ctx.pool`, cancellation
/// polled per row block.
Status GemmPackedAvx2(const DenseMatrix& a, const DenseMatrix& b,
                      DenseMatrix* c, const ExecContext& ctx);

/// AVX2 twin of ComputeMaskedProduct: 4 pattern entries per vector, the
/// k-reduction per entry kept in scalar order (mul then add per step), so
/// outputs are bit-identical to the scalar kernel.
Status MaskedProductDenseAvx2(const CsrMatrix& trans, const double* prev_dense,
                              const CsrMatrix& pattern, double* out_values,
                              const ExecContext& ctx);

/// AVX2 twin of ComputeMaskedProductCsr; same bit-identical contract.
/// `accum_values` (may be null) receives `accum[e] += out[e]` fused into
/// the row readout — elementwise, so fusing cannot change `out`.
Status MaskedProductCsrAvx2(const CsrMatrix& trans, const double* prev_values,
                            const CsrMatrix& pattern, double* out_values,
                            double* accum_values, const ExecContext& ctx);

#endif  // GTER_HAVE_AVX2

#if GTER_HAVE_AVX512

/// AVX-512 GEMM: same BLIS layering as GemmPackedAvx2 with an 8×16
/// register-blocked FMA microkernel over zmm pairs. Same ≤1e-12 contract
/// vs the scalar kernel; bit-stable across thread counts.
Status GemmPackedAvx512(const DenseMatrix& a, const DenseMatrix& b,
                        DenseMatrix* c, const ExecContext& ctx);

/// AVX-512 twin of ComputeMaskedProduct: 8 pattern entries per vector,
/// masked gathers for the ragged tail; bit-identical to scalar.
Status MaskedProductDenseAvx512(const CsrMatrix& trans,
                                const double* prev_dense,
                                const CsrMatrix& pattern, double* out_values,
                                const ExecContext& ctx);

/// AVX-512 twin of ComputeMaskedProductCsr: Gustavson accumulation via
/// 8-wide gather-modify-scatter (conflict-free because pattern rows have
/// unique sorted columns); bit-identical to scalar. Same optional fused
/// `accum_values` as the AVX2 twin.
Status MaskedProductCsrAvx512(const CsrMatrix& trans,
                              const double* prev_values,
                              const CsrMatrix& pattern, double* out_values,
                              double* accum_values, const ExecContext& ctx);

#endif  // GTER_HAVE_AVX512

}  // namespace internal
}  // namespace gter

#endif  // GTER_MATRIX_MATRIX_SIMD_H_
