#ifndef GTER_MATRIX_GEMM_H_
#define GTER_MATRIX_GEMM_H_

#include "gter/common/thread_pool.h"
#include "gter/matrix/dense_matrix.h"

namespace gter {

/// C = A × B using a cache-blocked i-k-j kernel, parallelized over row
/// panels of A via `pool` (pass nullptr for sequential execution).
/// Shapes: A is m×k, B is k×n, C is resized to m×n.
void Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool = nullptr);

/// Returns A × B (convenience wrapper).
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     ThreadPool* pool = nullptr);

}  // namespace gter

#endif  // GTER_MATRIX_GEMM_H_
