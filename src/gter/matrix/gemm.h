#ifndef GTER_MATRIX_GEMM_H_
#define GTER_MATRIX_GEMM_H_

#include "gter/common/exec_context.h"
#include "gter/matrix/dense_matrix.h"

namespace gter {

/// C = A × B using a cache-blocked i-k-j kernel, parallelized over row
/// panels of A via `ctx.pool` and dispatched to the AVX2 packed kernel at
/// `ctx.simd_level()`. Shapes: A is m×k, B is k×n, C is resized to m×n.
/// Polls `ctx` per row block; on cancellation returns
/// Cancelled/DeadlineExceeded and `*c` holds unspecified partial values.
Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
            const ExecContext& ctx = DefaultExecContext());

/// Returns A × B (convenience wrapper). Ignores any cancel token on `ctx`:
/// a value-returning multiply has no error channel, so it always runs to
/// completion.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     const ExecContext& ctx = DefaultExecContext());

}  // namespace gter

#endif  // GTER_MATRIX_GEMM_H_
