#include "gter/matrix/gemm.h"

#include <algorithm>
#include <cstring>

#include "gter/common/cpu.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/matrix/matrix_simd.h"

namespace gter {
namespace {

// Panel sizes tuned for L1/L2 residency on commodity x86: a 64×256 panel of
// B (128 KiB) stays hot while we stream rows of A through it.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockN = 256;

// C[row_lo:row_hi) += A[row_lo:row_hi) × B using blocked i-k-j with a
// broadcast-axpy inner loop (vectorizes cleanly under -O3). This is the
// scalar reference kernel `--simd=scalar` pins.
void GemmRows(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
              size_t row_lo, size_t row_hi) {
  const size_t k_dim = a.cols();
  const size_t n_dim = b.cols();
  for (size_t k0 = 0; k0 < k_dim; k0 += kBlockK) {
    const size_t k1 = std::min(k0 + kBlockK, k_dim);
    for (size_t n0 = 0; n0 < n_dim; n0 += kBlockN) {
      const size_t n1 = std::min(n0 + kBlockN, n_dim);
      for (size_t i = row_lo; i < row_hi; ++i) {
        const double* a_row = a.row(i);
        double* c_row = c->row(i);
        // Sparsity is exploited at panel granularity only: one pass over
        // the k-panel of this row, then a branch-free inner loop. The old
        // per-element `if (a_ik == 0.0) continue;` skip sat in the hottest
        // loop and mispredicted on anything but near-empty rows.
        bool panel_nonzero = false;
        for (size_t k = k0; k < k1; ++k) panel_nonzero |= (a_row[k] != 0.0);
        if (!panel_nonzero) continue;
        for (size_t k = k0; k < k1; ++k) {
          const double a_ik = a_row[k];
          const double* b_row = b.row(k);
          for (size_t j = n0; j < n1; ++j) {
            c_row[j] += a_ik * b_row[j];
          }
        }
      }
    }
  }
}

}  // namespace

Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
            const ExecContext& ctx) {
  GTER_CHECK(a.cols() == b.rows());
  // `*c` is zero-initialized before `a`/`b` are read, so aliasing an input
  // would silently compute garbage.
  GTER_CHECK(c != &a && c != &b);
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
  *c = DenseMatrix(a.rows(), b.cols(), 0.0);
#if GTER_HAVE_AVX512
  if (ctx.simd_level() >= SimdLevel::kAvx512) {
    return internal::GemmPackedAvx512(a, b, c, ctx);
  }
#endif
#if GTER_HAVE_AVX2
  if (ctx.simd_level() >= SimdLevel::kAvx2) {
    return internal::GemmPackedAvx2(a, b, c, ctx);
  }
#endif
  ParallelFor(ctx.pool, 0, a.rows(), /*grain=*/16, [&](size_t lo, size_t hi) {
    // Workers cannot return a Status mid-ParallelFor; they poll once per
    // row block and skip the remaining work, and the entry point reports
    // the trip after the join. Skipped blocks leave zeros in *c, which the
    // error return marks as unspecified.
    if (ctx.cancelled()) return;
    GemmRows(a, b, c, lo, hi);
  });
  return ctx.CheckCancel();
}

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     const ExecContext& ctx) {
  ExecContext no_cancel = ctx;
  no_cancel.cancel = nullptr;
  DenseMatrix c;
  GTER_CHECK_OK(Gemm(a, b, &c, no_cancel));
  return c;
}

}  // namespace gter
