// AVX2 twins of the masked-product kernels. Both carry a stricter contract
// than the packed GEMM: outputs are BIT-IDENTICAL to their scalar twins
// (and hence to each other — cliquerank_differential_test asserts the two
// masked kernels agree with ASSERT_EQ). The dense variant achieves this by
// vectorizing ACROSS output entries — each lane runs the exact scalar
// per-entry recurrence (separate mul then add, ascending k, no FMA). The
// CSR variant vectorizes only the multiply of the Gustavson scatter (exact
// per lane) and the position read-out (a copy); the adds into the dense
// accumulator stay scalar in the original order.

#include "gter/matrix/matrix_simd.h"

#if GTER_HAVE_AVX2

#include <immintrin.h>

#include <cstdint>
#include <vector>

#include "gter/common/thread_pool.h"

namespace gter {
namespace internal {

Status MaskedProductDenseAvx2(const CsrMatrix& trans, const double* prev_dense,
                              const CsrMatrix& pattern, double* out_values,
                              const ExecContext& ctx) {
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8, [&](size_t lo,
                                                            size_t hi) {
    if (ctx.cancelled()) return;
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      const size_t base = pattern.RowStart(i);
      size_t e = 0;
      for (; e + 4 <= pat_cols.size(); e += 4) {
        const __m128i cols = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(pat_cols.data() + e));
        __m256d acc = _mm256_setzero_pd();
        for (size_t p = 0; p < t_cols.size(); ++p) {
          const double* prev_row =
              prev_dense + static_cast<size_t>(t_cols[p]) * n;
          const __m256d v = _mm256_i32gather_pd(prev_row, cols, 8);
          // mul + add (not fmadd): each lane reproduces the scalar
          // `acc += w * prev[k·n + j]` bit for bit.
          acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(t_vals[p]), v));
        }
        _mm256_storeu_pd(out_values + base + e, acc);
      }
      for (; e < pat_cols.size(); ++e) {
        const size_t j = pat_cols[e];
        double acc = 0.0;
        for (size_t p = 0; p < t_cols.size(); ++p) {
          acc += t_vals[p] * prev_dense[static_cast<size_t>(t_cols[p]) * n + j];
        }
        out_values[base + e] = acc;
      }
    }
  });
  return ctx.CheckCancel();
}

Status MaskedProductCsrAvx2(const CsrMatrix& trans, const double* prev_values,
                            const CsrMatrix& pattern, double* out_values,
                            double* accum_values, const ExecContext& ctx) {
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8, [&](size_t lo,
                                                            size_t hi) {
    if (ctx.cancelled()) return;
    std::vector<double> acc(n, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      for (size_t p = 0; p < t_cols.size(); ++p) {
        const size_t k = t_cols[p];
        const __m256d w = _mm256_set1_pd(t_vals[p]);
        auto prev_cols = pattern.RowCols(k);
        const double* pv = prev_values + pattern.RowStart(k);
        size_t e = 0;
        alignas(32) double prod[4];
        for (; e + 4 <= prev_cols.size(); e += 4) {
          // The products are exact per lane; the adds scatter to distinct
          // columns (pattern rows have unique sorted cols), so doing them
          // scalar keeps the accumulator bit-identical to the scalar twin.
          _mm256_store_pd(prod, _mm256_mul_pd(w, _mm256_loadu_pd(pv + e)));
          acc[prev_cols[e + 0]] += prod[0];
          acc[prev_cols[e + 1]] += prod[1];
          acc[prev_cols[e + 2]] += prod[2];
          acc[prev_cols[e + 3]] += prod[3];
        }
        for (; e < prev_cols.size(); ++e) {
          acc[prev_cols[e]] += t_vals[p] * pv[e];
        }
      }
      const size_t base = pattern.RowStart(i);
      size_t e = 0;
      for (; e + 4 <= pat_cols.size(); e += 4) {
        const __m128i cols = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(pat_cols.data() + e));
        const __m256d out = _mm256_i32gather_pd(acc.data(), cols, 8);
        _mm256_storeu_pd(out_values + base + e, out);
        if (accum_values != nullptr) {
          // Fused `accum += out` on positions this worker just produced:
          // elementwise, so it can't perturb `out` (see masked_multiply.h).
          _mm256_storeu_pd(
              accum_values + base + e,
              _mm256_add_pd(_mm256_loadu_pd(accum_values + base + e), out));
        }
      }
      for (; e < pat_cols.size(); ++e) {
        out_values[base + e] = acc[pat_cols[e]];
        if (accum_values != nullptr) accum_values[base + e] += acc[pat_cols[e]];
      }
      for (size_t p = 0; p < t_cols.size(); ++p) {
        for (uint32_t c : pattern.RowCols(t_cols[p])) acc[c] = 0.0;
      }
    }
  });
  return ctx.CheckCancel();
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX2
