#ifndef GTER_MATRIX_DENSE_MATRIX_H_
#define GTER_MATRIX_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace gter {

/// Row-major dense matrix of doubles. This (plus the blocked GEMM in
/// gemm.h) is our from-scratch replacement for the Eigen dependency the
/// paper's implementation used for CliqueRank's matrix powers.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a rows×cols matrix initialized to `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row-major storage (rows()*cols() doubles).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row `r`.
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Returns the transpose.
  DenseMatrix Transposed() const;

  /// Element-wise (Hadamard) product with `other`; shapes must match.
  DenseMatrix Hadamard(const DenseMatrix& other) const;

  /// this += other (shapes must match).
  void Add(const DenseMatrix& other);

  /// Multiplies every entry by `s`.
  void Scale(double s);

  /// max over entries of |this - other| (shapes must match).
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// Sum of all entries.
  double Sum() const;

  /// Identity matrix of size n.
  static DenseMatrix Identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gter

#endif  // GTER_MATRIX_DENSE_MATRIX_H_
