// AVX-512 twins of the masked-product kernels, carrying the same
// BIT-IDENTICAL contract as the AVX2 TU. The dense variant vectorizes
// ACROSS 8 output entries — each lane runs the exact scalar per-entry
// recurrence (separate mul then add, ascending k, no FMA; -ffp-contract=off
// keeps the compiler from re-fusing). The CSR variant keeps the AVX2
// Gustavson shape — 4-wide multiplies, scalar adds into the dense
// accumulator in the original order — but EVEX-encodes it with AVX-512VL:
// the ragged tails that the AVX2 kernel handles with scalar loops become
// __mmask8-predicated 256-bit ops (maskz mul in the scatter phase, masked
// gather/store in the read-out and fused accumulate), so short rows pay no
// scalar epilogue. Staying at 256 bits is deliberate: this kernel is bound
// by the scalar accumulator adds, and 512-bit ops add frequency-license
// pressure without enough vector work to amortize it. Variants measured
// slower on Skylake-class hosts: an 8-lane widening of the multiply and
// read-out (license downclocking, no win on the add-bound core loop), a
// full gather-modify-scatter accumulate (vscatterdpd is microcoded, and
// re-gathering `acc` right after scattering to it serializes the loop on
// store-to-load forwarding), and a generation-stamp accumulator that
// skips the re-zeroing pass (the per-entry stamp branch mispredicts on
// real adjacency and costs more than the zero stores it saves).

#include "gter/matrix/matrix_simd.h"

#if GTER_HAVE_AVX512

#include <immintrin.h>

#include <cstdint>
#include <vector>

#include "gter/common/thread_pool.h"

namespace gter {
namespace internal {
namespace {

/// Mask with the low `w` (< 8) lanes active.
inline __mmask8 TailMask(size_t w) {
  return static_cast<__mmask8>((1u << w) - 1u);
}

}  // namespace

Status MaskedProductDenseAvx512(const CsrMatrix& trans,
                                const double* prev_dense,
                                const CsrMatrix& pattern, double* out_values,
                                const ExecContext& ctx) {
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8, [&](size_t lo,
                                                            size_t hi) {
    if (ctx.cancelled()) return;
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      const size_t base = pattern.RowStart(i);
      size_t e = 0;
      for (; e + 8 <= pat_cols.size(); e += 8) {
        const __m256i cols = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pat_cols.data() + e));
        __m512d acc = _mm512_setzero_pd();
        for (size_t p = 0; p < t_cols.size(); ++p) {
          const double* prev_row =
              prev_dense + static_cast<size_t>(t_cols[p]) * n;
          const __m512d v = _mm512_i32gather_pd(cols, prev_row, 8);
          // mul + add (not fmadd): each lane reproduces the scalar
          // `acc += w * prev[k·n + j]` bit for bit.
          acc = _mm512_add_pd(acc,
                              _mm512_mul_pd(_mm512_set1_pd(t_vals[p]), v));
        }
        _mm512_storeu_pd(out_values + base + e, acc);
      }
      if (e < pat_cols.size()) {
        const size_t w = pat_cols.size() - e;
        const __mmask8 m = TailMask(w);
        const __m256i cols =
            _mm256_maskz_loadu_epi32(m, pat_cols.data() + e);
        __m512d acc = _mm512_setzero_pd();
        for (size_t p = 0; p < t_cols.size(); ++p) {
          const double* prev_row =
              prev_dense + static_cast<size_t>(t_cols[p]) * n;
          const __m512d v = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m,
                                                     cols, prev_row, 8);
          acc = _mm512_add_pd(acc,
                              _mm512_mul_pd(_mm512_set1_pd(t_vals[p]), v));
        }
        _mm512_mask_storeu_pd(out_values + base + e, m, acc);
      }
    }
  });
  return ctx.CheckCancel();
}

Status MaskedProductCsrAvx512(const CsrMatrix& trans,
                              const double* prev_values,
                              const CsrMatrix& pattern, double* out_values,
                              double* accum_values, const ExecContext& ctx) {
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8, [&](size_t lo,
                                                            size_t hi) {
    if (ctx.cancelled()) return;
    std::vector<double> acc(n, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      for (size_t p = 0; p < t_cols.size(); ++p) {
        const size_t k = t_cols[p];
        const __m256d w = _mm256_set1_pd(t_vals[p]);
        auto prev_cols = pattern.RowCols(k);
        const double* pv = prev_values + pattern.RowStart(k);
        size_t e = 0;
        alignas(32) double prod[4];
        for (; e + 4 <= prev_cols.size(); e += 4) {
          // Products exact per lane; the adds hit distinct columns (unique
          // sorted cols) and stay scalar in the original order — bitwise
          // vs the scalar twin, and free of the gather→scatter dependence
          // chain a vectorized accumulate would thread through `acc`.
          _mm256_store_pd(prod, _mm256_mul_pd(w, _mm256_loadu_pd(pv + e)));
          acc[prev_cols[e + 0]] += prod[0];
          acc[prev_cols[e + 1]] += prod[1];
          acc[prev_cols[e + 2]] += prod[2];
          acc[prev_cols[e + 3]] += prod[3];
        }
        if (e < prev_cols.size()) {
          const size_t tw = prev_cols.size() - e;
          const __mmask8 m = TailMask(tw);
          _mm256_store_pd(
              prod, _mm256_maskz_mul_pd(m, w, _mm256_maskz_loadu_pd(m, pv + e)));
          for (size_t l = 0; l < tw; ++l) acc[prev_cols[e + l]] += prod[l];
        }
      }
      const size_t base = pattern.RowStart(i);
      size_t e = 0;
      for (; e + 4 <= pat_cols.size(); e += 4) {
        const __m128i cols = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(pat_cols.data() + e));
        const __m256d out = _mm256_i32gather_pd(acc.data(), cols, 8);
        _mm256_storeu_pd(out_values + base + e, out);
        if (accum_values != nullptr) {
          // Fused `accum += out` on positions this worker just produced:
          // elementwise, so it can't perturb `out` (see masked_multiply.h).
          _mm256_storeu_pd(
              accum_values + base + e,
              _mm256_add_pd(_mm256_loadu_pd(accum_values + base + e), out));
        }
      }
      if (e < pat_cols.size()) {
        const size_t tw = pat_cols.size() - e;
        const __mmask8 m = TailMask(tw);
        const __m128i cols = _mm_maskz_loadu_epi32(m, pat_cols.data() + e);
        const __m256d out = _mm256_mmask_i32gather_pd(
            _mm256_setzero_pd(), m, cols, acc.data(), 8);
        _mm256_mask_storeu_pd(out_values + base + e, m, out);
        if (accum_values != nullptr) {
          const __m256d cur =
              _mm256_maskz_loadu_pd(m, accum_values + base + e);
          _mm256_mask_storeu_pd(accum_values + base + e, m,
                                _mm256_add_pd(cur, out));
        }
      }
      for (size_t p = 0; p < t_cols.size(); ++p) {
        for (uint32_t c : pattern.RowCols(t_cols[p])) acc[c] = 0.0;
      }
    }
  });
  return ctx.CheckCancel();
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX512
