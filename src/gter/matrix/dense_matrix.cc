#include "gter/matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Hadamard(const DenseMatrix& other) const {
  GTER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

void DenseMatrix::Add(const DenseMatrix& other) {
  GTER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::Scale(double s) {
  for (auto& v : data_) v *= s;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  GTER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

double DenseMatrix::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

}  // namespace gter
