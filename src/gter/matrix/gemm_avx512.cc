// BLIS-style packed GEMM for the AVX-512 dispatch level. Same layering as
// gemm_avx2.cc — per-KC-slab packed B panels, per-worker packed A
// micropanels with the panel-level nonzero skip — widened to an 8×16
// register-blocked FMA microkernel (16 zmm accumulators out of the 32
// architectural zmm registers, so the two B vectors and the A broadcast
// never spill). The k-loop order per row is identical regardless of how
// row blocks land on threads, so results are bit-stable across thread
// counts; vs the scalar kernel they differ only by FMA contraction / lane
// reassociation (≤1e-12 relative, DESIGN.md §4d).

#include "gter/matrix/matrix_simd.h"

#if GTER_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "gter/common/thread_pool.h"

namespace gter {
namespace internal {
namespace {

constexpr size_t kMr = 8;    // rows per micropanel / microkernel tile
constexpr size_t kNr = 16;   // cols per panel (two zmm vectors)
constexpr size_t kKc = 256;  // k-slab: one packed B panel column is 32 KiB
constexpr size_t kMc = 64;   // rows of A packed at once per worker

/// C[0:kMr)[0:kNr) += Ap×Bp over `kc` steps. `ap` is kMr-interleaved
/// (micropanel), `bp` is kNr-interleaved (panel); both zero-padded, so the
/// kernel never reads past logical edges.
inline void MicroKernel(size_t kc, const double* ap, const double* bp,
                        double* acc) {
  __m512d c00 = _mm512_setzero_pd(), c01 = _mm512_setzero_pd();
  __m512d c10 = _mm512_setzero_pd(), c11 = _mm512_setzero_pd();
  __m512d c20 = _mm512_setzero_pd(), c21 = _mm512_setzero_pd();
  __m512d c30 = _mm512_setzero_pd(), c31 = _mm512_setzero_pd();
  __m512d c40 = _mm512_setzero_pd(), c41 = _mm512_setzero_pd();
  __m512d c50 = _mm512_setzero_pd(), c51 = _mm512_setzero_pd();
  __m512d c60 = _mm512_setzero_pd(), c61 = _mm512_setzero_pd();
  __m512d c70 = _mm512_setzero_pd(), c71 = _mm512_setzero_pd();
  for (size_t k = 0; k < kc; ++k) {
    const __m512d b0 = _mm512_loadu_pd(bp + k * kNr);
    const __m512d b1 = _mm512_loadu_pd(bp + k * kNr + 8);
    const __m512d a0 = _mm512_set1_pd(ap[k * kMr + 0]);
    c00 = _mm512_fmadd_pd(a0, b0, c00);
    c01 = _mm512_fmadd_pd(a0, b1, c01);
    const __m512d a1 = _mm512_set1_pd(ap[k * kMr + 1]);
    c10 = _mm512_fmadd_pd(a1, b0, c10);
    c11 = _mm512_fmadd_pd(a1, b1, c11);
    const __m512d a2 = _mm512_set1_pd(ap[k * kMr + 2]);
    c20 = _mm512_fmadd_pd(a2, b0, c20);
    c21 = _mm512_fmadd_pd(a2, b1, c21);
    const __m512d a3 = _mm512_set1_pd(ap[k * kMr + 3]);
    c30 = _mm512_fmadd_pd(a3, b0, c30);
    c31 = _mm512_fmadd_pd(a3, b1, c31);
    const __m512d a4 = _mm512_set1_pd(ap[k * kMr + 4]);
    c40 = _mm512_fmadd_pd(a4, b0, c40);
    c41 = _mm512_fmadd_pd(a4, b1, c41);
    const __m512d a5 = _mm512_set1_pd(ap[k * kMr + 5]);
    c50 = _mm512_fmadd_pd(a5, b0, c50);
    c51 = _mm512_fmadd_pd(a5, b1, c51);
    const __m512d a6 = _mm512_set1_pd(ap[k * kMr + 6]);
    c60 = _mm512_fmadd_pd(a6, b0, c60);
    c61 = _mm512_fmadd_pd(a6, b1, c61);
    const __m512d a7 = _mm512_set1_pd(ap[k * kMr + 7]);
    c70 = _mm512_fmadd_pd(a7, b0, c70);
    c71 = _mm512_fmadd_pd(a7, b1, c71);
  }
  _mm512_storeu_pd(acc + 0 * kNr, c00);
  _mm512_storeu_pd(acc + 0 * kNr + 8, c01);
  _mm512_storeu_pd(acc + 1 * kNr, c10);
  _mm512_storeu_pd(acc + 1 * kNr + 8, c11);
  _mm512_storeu_pd(acc + 2 * kNr, c20);
  _mm512_storeu_pd(acc + 2 * kNr + 8, c21);
  _mm512_storeu_pd(acc + 3 * kNr, c30);
  _mm512_storeu_pd(acc + 3 * kNr + 8, c31);
  _mm512_storeu_pd(acc + 4 * kNr, c40);
  _mm512_storeu_pd(acc + 4 * kNr + 8, c41);
  _mm512_storeu_pd(acc + 5 * kNr, c50);
  _mm512_storeu_pd(acc + 5 * kNr + 8, c51);
  _mm512_storeu_pd(acc + 6 * kNr, c60);
  _mm512_storeu_pd(acc + 6 * kNr + 8, c61);
  _mm512_storeu_pd(acc + 7 * kNr, c70);
  _mm512_storeu_pd(acc + 7 * kNr + 8, c71);
}

/// Packs B[k0:k0+kc) into ceil(n/kNr) column panels, each kc×kNr with the
/// ragged last panel zero-padded.
void PackB(const DenseMatrix& b, size_t k0, size_t kc, double* packed) {
  const size_t n = b.cols();
  const size_t num_panels = (n + kNr - 1) / kNr;
  for (size_t jp = 0; jp < num_panels; ++jp) {
    const size_t j0 = jp * kNr;
    const size_t jw = std::min(kNr, n - j0);
    double* panel = packed + jp * kc * kNr;
    for (size_t k = 0; k < kc; ++k) {
      const double* src = b.row(k0 + k) + j0;
      double* dst = panel + k * kNr;
      for (size_t j = 0; j < jw; ++j) dst[j] = src[j];
      for (size_t j = jw; j < kNr; ++j) dst[j] = 0.0;
    }
  }
}

/// Packs A[i0:i0+mc)[k0:k0+kc) into kMr-row micropanels (zero-padding the
/// ragged last one) with the per-micropanel nonzero flag that lets the
/// caller skip an all-zero micropanel's entire jr loop for this k-slab.
void PackA(const DenseMatrix& a, size_t i0, size_t mc, size_t k0, size_t kc,
           double* packed, unsigned char* nonzero) {
  const size_t num_panels = (mc + kMr - 1) / kMr;
  for (size_t ip = 0; ip < num_panels; ++ip) {
    const size_t r0 = ip * kMr;
    const size_t rh = std::min(kMr, mc - r0);
    double* panel = packed + ip * kc * kMr;
    bool any = false;
    for (size_t k = 0; k < kc; ++k) {
      double* dst = panel + k * kMr;
      for (size_t r = 0; r < rh; ++r) {
        const double v = a(i0 + r0 + r, k0 + k);
        dst[r] = v;
        any |= (v != 0.0);
      }
      for (size_t r = rh; r < kMr; ++r) dst[r] = 0.0;
    }
    nonzero[ip] = any ? 1 : 0;
  }
}

}  // namespace

Status GemmPackedAvx512(const DenseMatrix& a, const DenseMatrix& b,
                        DenseMatrix* c, const ExecContext& ctx) {
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.cols();
  if (m == 0 || n == 0 || k_dim == 0) return Status::OK();

  const size_t num_col_panels = (n + kNr - 1) / kNr;
  const size_t num_row_blocks = (m + kMc - 1) / kMc;
  std::vector<double> packed_b(kKc * num_col_panels * kNr);

  for (size_t k0 = 0; k0 < k_dim; k0 += kKc) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    const size_t kc = std::min(kKc, k_dim - k0);
    PackB(b, k0, kc, packed_b.data());

    ParallelFor(ctx.pool, 0, num_row_blocks, /*grain=*/1, [&](size_t blk_lo,
                                                              size_t blk_hi) {
      std::vector<double> packed_a(kMc * kKc);
      std::vector<unsigned char> panel_nonzero(kMc / kMr);
      double acc[kMr * kNr];
      for (size_t blk = blk_lo; blk < blk_hi; ++blk) {
        if (ctx.cancelled()) return;  // skip; reported after the join
        const size_t i0 = blk * kMc;
        const size_t mc = std::min(kMc, m - i0);
        PackA(a, i0, mc, k0, kc, packed_a.data(), panel_nonzero.data());
        const size_t num_micro = (mc + kMr - 1) / kMr;
        for (size_t ip = 0; ip < num_micro; ++ip) {
          if (!panel_nonzero[ip]) continue;
          const double* ap = packed_a.data() + ip * kc * kMr;
          const size_t row0 = i0 + ip * kMr;
          const size_t rh = std::min(kMr, m - row0);
          for (size_t jp = 0; jp < num_col_panels; ++jp) {
            const double* bp = packed_b.data() + jp * kc * kNr;
            MicroKernel(kc, ap, bp, acc);
            const size_t j0 = jp * kNr;
            const size_t jw = std::min(kNr, n - j0);
            if (rh == kMr && jw == kNr) {
              for (size_t r = 0; r < kMr; ++r) {
                double* c_row = c->row(row0 + r) + j0;
                const __m512d lo = _mm512_add_pd(
                    _mm512_loadu_pd(c_row), _mm512_loadu_pd(acc + r * kNr));
                const __m512d hi =
                    _mm512_add_pd(_mm512_loadu_pd(c_row + 8),
                                  _mm512_loadu_pd(acc + r * kNr + 8));
                _mm512_storeu_pd(c_row, lo);
                _mm512_storeu_pd(c_row + 8, hi);
              }
            } else {
              for (size_t r = 0; r < rh; ++r) {
                double* c_row = c->row(row0 + r) + j0;
                for (size_t j = 0; j < jw; ++j) c_row[j] += acc[r * kNr + j];
              }
            }
          }
        }
      }
    });
  }
  return ctx.CheckCancel();
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX512
