#include "gter/matrix/masked_multiply.h"

#include <vector>

#include "gter/common/cpu.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/matrix/matrix_simd.h"

namespace gter {

Status ComputeMaskedProduct(const CsrMatrix& trans, const double* prev_dense,
                            const CsrMatrix& pattern, double* out_values,
                            const ExecContext& ctx) {
  GTER_CHECK(trans.rows() == pattern.rows());
  GTER_CHECK(trans.cols() == pattern.rows());
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
#if GTER_HAVE_AVX512
  if (ctx.simd_level() >= SimdLevel::kAvx512) {
    return internal::MaskedProductDenseAvx512(trans, prev_dense, pattern,
                                              out_values, ctx);
  }
#endif
#if GTER_HAVE_AVX2
  if (ctx.simd_level() >= SimdLevel::kAvx2) {
    return internal::MaskedProductDenseAvx2(trans, prev_dense, pattern,
                                            out_values, ctx);
  }
#endif
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8,
              [&](size_t lo, size_t hi) {
    if (ctx.cancelled()) return;  // skip the chunk; reported after the join
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      // out position base for row i of the pattern.
      int64_t base = pattern.PositionOf(i, pat_cols[0]);
      for (size_t e = 0; e < pat_cols.size(); ++e) {
        const size_t j = pat_cols[e];
        double acc = 0.0;
        for (size_t p = 0; p < t_cols.size(); ++p) {
          acc += t_vals[p] * prev_dense[static_cast<size_t>(t_cols[p]) * n + j];
        }
        out_values[static_cast<size_t>(base) + e] = acc;
      }
    }
  });
  return ctx.CheckCancel();
}

Status ComputeMaskedProductCsr(const CsrMatrix& trans,
                               const double* prev_values,
                               const CsrMatrix& pattern, double* out_values,
                               const ExecContext& ctx) {
  return ComputeMaskedProductCsr(trans, prev_values, pattern, out_values,
                                 /*accum_values=*/nullptr, ctx);
}

Status ComputeMaskedProductCsr(const CsrMatrix& trans,
                               const double* prev_values,
                               const CsrMatrix& pattern, double* out_values,
                               double* accum_values, const ExecContext& ctx) {
  GTER_CHECK(trans.rows() == pattern.rows());
  GTER_CHECK(trans.cols() == pattern.rows());
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());
#if GTER_HAVE_AVX512
  if (ctx.simd_level() >= SimdLevel::kAvx512) {
    return internal::MaskedProductCsrAvx512(trans, prev_values, pattern,
                                            out_values, accum_values, ctx);
  }
#endif
#if GTER_HAVE_AVX2
  if (ctx.simd_level() >= SimdLevel::kAvx2) {
    return internal::MaskedProductCsrAvx2(trans, prev_values, pattern,
                                          out_values, accum_values, ctx);
  }
#endif
  const size_t n = pattern.cols();
  ParallelFor(ctx.pool, 0, pattern.rows(), /*grain=*/8,
              [&](size_t lo, size_t hi) {
    if (ctx.cancelled()) return;
    // Dense row accumulator, reused (and re-zeroed) across the chunk's
    // rows — the only dense state of the sparse engine.
    std::vector<double> acc(n, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      auto pat_cols = pattern.RowCols(i);
      if (pat_cols.empty()) continue;
      auto t_cols = trans.RowCols(i);
      auto t_vals = trans.RowValues(i);
      // acc[j] = Σ_k trans[i,k]·prev[k,j]; ascending k keeps the per-entry
      // summation order identical to the dense-scratch kernel.
      for (size_t p = 0; p < t_cols.size(); ++p) {
        const size_t k = t_cols[p];
        const double w = t_vals[p];
        auto prev_cols = pattern.RowCols(k);
        const double* pv = prev_values + pattern.RowStart(k);
        for (size_t e = 0; e < prev_cols.size(); ++e) {
          acc[prev_cols[e]] += w * pv[e];
        }
      }
      const size_t base = pattern.RowStart(i);
      for (size_t e = 0; e < pat_cols.size(); ++e) {
        out_values[base + e] = acc[pat_cols[e]];
      }
      if (accum_values != nullptr) {
        for (size_t e = 0; e < pat_cols.size(); ++e) {
          accum_values[base + e] += out_values[base + e];
        }
      }
      // Zero exactly the entries the gather touched.
      for (size_t p = 0; p < t_cols.size(); ++p) {
        for (uint32_t c : pattern.RowCols(t_cols[p])) acc[c] = 0.0;
      }
    }
  });
  return ctx.CheckCancel();
}

void ScatterToDense(const CsrMatrix& pattern, const double* values,
                    double* dense) {
  const size_t n = pattern.cols();
  size_t pos = 0;
  for (size_t i = 0; i < pattern.rows(); ++i) {
    for (uint32_t j : pattern.RowCols(i)) {
      dense[i * n + j] = values[pos++];
    }
  }
}

}  // namespace gter
