#include "gter/baselines/hybrid.h"

#include <algorithm>

namespace gter {
namespace {

void MaxNormalize(std::vector<double>* scores) {
  double max_score = 0.0;
  for (double s : *scores) max_score = std::max(max_score, s);
  if (max_score <= 0.0) return;
  for (double& s : *scores) s /= max_score;
}

}  // namespace

std::vector<double> HybridScorer::Score(const Dataset& dataset,
                                        const PairSpace& pairs) {
  SimRankScorer simrank(options_.simrank);
  TwIdfPageRankScorer twidf(options_.twidf);
  std::vector<double> topological = simrank.Score(dataset, pairs);
  std::vector<double> textual = twidf.Score(dataset, pairs);
  MaxNormalize(&topological);
  MaxNormalize(&textual);
  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    scores[p] = options_.beta * topological[p] +
                (1.0 - options_.beta) * textual[p];
  }
  return scores;
}

}  // namespace gter
