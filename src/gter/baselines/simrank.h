#ifndef GTER_BASELINES_SIMRANK_H_
#define GTER_BASELINES_SIMRANK_H_

#include "gter/core/resolver.h"
#include "gter/matrix/dense_matrix.h"

namespace gter {

/// Options for bipartite SimRank (§III-A, Eq. 1–2).
struct SimRankOptions {
  /// Decay factors C1 (record side) and C2 (term side); the paper uses 0.8
  /// per Jeh & Widom's recommendation.
  double c1 = 0.8;
  double c2 = 0.8;
  size_t iterations = 5;
};

/// Table II row "SimRank": the bipartite record–term SimRank baseline.
/// Implemented in the matrix form
///   S_t ← C2 · B̂ S_r B̂ᵀ  (diag forced to 1)
///   S_r ← C1 · Â S_t Âᵀ  (diag forced to 1)
/// with Â the 1/|O(r)| row-normalized record→term incidence and B̂ the
/// 1/|I(t)| normalized term→record incidence. S_t is dense m×m — memory
/// grows with vocabulary squared, which is exactly why the paper's ITER
/// replaces this formulation.
class SimRankScorer : public PairScorer {
 public:
  explicit SimRankScorer(SimRankOptions options = {}) : options_(options) {}

  std::string name() const override { return "SimRank"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;

  /// Full record-similarity matrix from the last Score() call (tests).
  const DenseMatrix& record_similarity() const { return record_sim_; }

 private:
  SimRankOptions options_;
  DenseMatrix record_sim_;
};

}  // namespace gter

#endif  // GTER_BASELINES_SIMRANK_H_
