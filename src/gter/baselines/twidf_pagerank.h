#ifndef GTER_BASELINES_TWIDF_PAGERANK_H_
#define GTER_BASELINES_TWIDF_PAGERANK_H_

#include "gter/core/resolver.h"
#include "gter/graph/pagerank.h"

namespace gter {

/// Options for the TW-IDF / PageRank term-graph baseline (§III-B).
struct TwIdfOptions {
  /// Sliding window width for the co-occurrence graph.
  size_t window_size = 3;
  PageRankOptions pagerank;
};

/// Table II row "PageRank": term salience from PageRank on the term
/// co-occurrence graph, combined TW-IDF style (Eq. 4):
///   s_u(r_i, r_j) = Σ_{t ∈ r_i ∧ t ∈ r_j} s(t) · log((n+1)/df(t)).
class TwIdfPageRankScorer : public PairScorer {
 public:
  explicit TwIdfPageRankScorer(TwIdfOptions options = {})
      : options_(options) {}

  std::string name() const override { return "PageRank"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;

  /// Per-term PageRank salience from the last Score() call (Table IV
  /// compares this ranking to ITER's).
  const std::vector<double>& term_salience() const { return salience_; }

 private:
  TwIdfOptions options_;
  std::vector<double> salience_;
};

}  // namespace gter

#endif  // GTER_BASELINES_TWIDF_PAGERANK_H_
