#ifndef GTER_BASELINES_ML_LINEAR_SVM_H_
#define GTER_BASELINES_ML_LINEAR_SVM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gter {

/// Options for the linear SVM baseline (Table II "SVM [6]" analogue),
/// trained with the Pegasos stochastic sub-gradient solver. This is the
/// only *supervised* method in the library: it consumes a labeled split of
/// the candidate pairs, exactly the annotation cost the paper's framework
/// is designed to avoid.
struct SvmOptions {
  /// L2 regularization strength λ.
  double lambda = 1e-4;
  /// Passes over the training set.
  size_t epochs = 50;
  /// Fraction of *positive* candidate pairs revealed for training.
  double train_fraction = 0.5;
  /// Negatives sampled per revealed positive.
  size_t negatives_per_positive = 5;
  uint64_t seed = 17;
};

/// A trained linear model.
struct LinearSvm {
  std::vector<double> weights;
  double bias = 0.0;

  /// Signed margin w·x + b.
  double Margin(const std::vector<double>& x) const;
};

/// Trains on rows indexed by `train_indices` with ±1 labels from `labels`.
LinearSvm TrainPegasos(const std::vector<std::vector<double>>& features,
                       const std::vector<bool>& labels,
                       const std::vector<size_t>& train_indices,
                       const SvmOptions& options);

/// End-to-end supervised baseline: samples a labeled training split per
/// `options`, trains, and scores every pair by its margin.
std::vector<double> SvmMatchScore(
    const std::vector<std::vector<double>>& features,
    const std::vector<bool>& labels, const SvmOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_ML_LINEAR_SVM_H_
