#ifndef GTER_BASELINES_ML_FEATURES_H_
#define GTER_BASELINES_ML_FEATURES_H_

#include <string>
#include <vector>

#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Hand-crafted per-pair similarity features — the input representation of
/// every learning-based baseline, mirroring the feature-engineering step of
/// the supervised methods the paper compares against ([5], [6]).
struct PairFeatureOptions {
  /// Include the quadratic-cost Levenshtein similarity over raw text
  /// (disable on very large candidate sets).
  bool include_levenshtein = false;
};

/// Names of the features produced, in order.
std::vector<std::string> PairFeatureNames(const PairFeatureOptions& options);

/// Feature matrix: one row (feature vector) per candidate pair.
/// Features (all in [0, 1]): token Jaccard, Dice, overlap coefficient,
/// TF-IDF cosine, character-trigram Jaccard of raw text, shared-IDF mass
/// ratio, [optional normalized Levenshtein].
std::vector<std::vector<double>> ComputePairFeatures(
    const Dataset& dataset, const PairSpace& pairs,
    const PairFeatureOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_ML_FEATURES_H_
