#include "gter/baselines/ml/features.h"

#include <algorithm>
#include <cmath>

#include "gter/text/string_metrics.h"
#include "gter/text/tfidf.h"

namespace gter {

std::vector<std::string> PairFeatureNames(const PairFeatureOptions& options) {
  std::vector<std::string> names = {
      "jaccard",        "dice",           "overlap",
      "tfidf_cosine",   "trigram_jaccard", "shared_idf_ratio",
  };
  if (options.include_levenshtein) names.push_back("levenshtein");
  return names;
}

std::vector<std::vector<double>> ComputePairFeatures(
    const Dataset& dataset, const PairSpace& pairs,
    const PairFeatureOptions& options) {
  TfIdfModel model;
  model.Build(dataset.TokenCorpus(), dataset.vocabulary().size());

  // Per-record total IDF mass, for the shared-IDF ratio feature.
  std::vector<double> idf_mass(dataset.size(), 0.0);
  for (const Record& rec : dataset.records()) {
    double acc = 0.0;
    for (TermId t : rec.terms) acc += model.Idf(t);
    idf_mass[rec.id] = acc;
  }

  std::vector<std::vector<double>> features(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    const Record& a = dataset.record(rp.a);
    const Record& b = dataset.record(rp.b);
    std::vector<double> row;
    row.reserve(7);
    row.push_back(JaccardSimilarity(a.terms, b.terms));
    row.push_back(DiceCoefficient(a.terms, b.terms));
    row.push_back(OverlapCoefficient(a.terms, b.terms));
    row.push_back(model.Cosine(rp.a, rp.b));
    row.push_back(TrigramJaccard(a.raw_text, b.raw_text));
    double shared_idf = 0.0;
    for (TermId t : SortedIntersection(a.terms, b.terms)) {
      shared_idf += model.Idf(t);
    }
    double denom = std::max(idf_mass[rp.a] + idf_mass[rp.b], 1e-12);
    row.push_back(std::min(1.0, 2.0 * shared_idf / denom));
    if (options.include_levenshtein) {
      row.push_back(LevenshteinSimilarity(a.raw_text, b.raw_text));
    }
    features[p] = std::move(row);
  }
  return features;
}

}  // namespace gter
