#ifndef GTER_BASELINES_ML_FELLEGI_SUNTER_H_
#define GTER_BASELINES_ML_FELLEGI_SUNTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Options for the Fellegi–Sunter record-linkage model fitted with EM —
/// the Table II "MLE [5]" analogue. Per-field binary agreement patterns
/// are modeled as conditionally independent given the latent match class;
/// EM estimates the match prior p and the per-field agreement rates
/// m_i = P(agree | match), u_i = P(agree | non-match).
struct FellegiSunterOptions {
  /// A field pair agrees when its Jaro–Winkler similarity reaches this.
  double agreement_threshold = 0.85;
  size_t max_iterations = 200;
  double tolerance = 1e-8;
  /// Initial parameter guesses.
  double init_match_prior = 0.01;
  double init_m = 0.9;
  double init_u = 0.1;
};

/// Fitted parameters plus per-pair posteriors.
struct FellegiSunterResult {
  double match_prior = 0.0;
  std::vector<double> m;  // per field
  std::vector<double> u;  // per field
  /// Posterior match probability per candidate pair.
  std::vector<double> probability;
  size_t iterations = 0;
};

/// Fits the model on the candidate pairs of `dataset` using the records'
/// attribute fields. Records must carry at least one field; pairs are
/// compared on the first `min(#fields_a, #fields_b)` fields, padded with
/// disagreement for missing ones.
FellegiSunterResult FitFellegiSunter(const Dataset& dataset,
                                     const PairSpace& pairs,
                                     const FellegiSunterOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_ML_FELLEGI_SUNTER_H_
