#ifndef GTER_BASELINES_ML_BOOTSTRAP_GMM_H_
#define GTER_BASELINES_ML_BOOTSTRAP_GMM_H_

#include <vector>

#include <cstddef>

#include "gter/baselines/ml/gmm.h"

namespace gter {

/// Options for the HGM+Bootstrap analogue: an unsupervised GMM seeds
/// high-confidence pseudo-labels, a per-class Gaussian naive-Bayes model is
/// refit on them, and the labeling is re-estimated — repeated until stable
/// (self-training / bootstrapping, substituting for the hierarchical
/// graphical model of Ravikumar & Cohen [5]; DESIGN.md §3).
struct BootstrapOptions {
  GmmOptions gmm;
  /// Posterior thresholds for the pseudo-label seed set.
  double positive_confidence = 0.95;
  double negative_confidence = 0.95;
  size_t max_rounds = 10;
  double min_variance = 1e-6;
};

/// Returns a per-pair match probability after bootstrapped self-training
/// on the feature matrix.
std::vector<double> BootstrapGmmMatchProbability(
    const std::vector<std::vector<double>>& features,
    const BootstrapOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_ML_BOOTSTRAP_GMM_H_
