#include "gter/baselines/ml/bootstrap_gmm.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {
namespace {

/// Per-class Gaussian naive Bayes trained on (a subset of) labeled rows.
struct NaiveBayes {
  double prior_pos = 0.5;
  std::vector<double> mean_pos, var_pos;
  std::vector<double> mean_neg, var_neg;

  static void FitClass(const std::vector<std::vector<double>>& rows,
                       const std::vector<size_t>& members, double min_var,
                       std::vector<double>* mean, std::vector<double>* var) {
    const size_t dim = rows[0].size();
    mean->assign(dim, 0.0);
    var->assign(dim, 0.0);
    for (size_t i : members) {
      for (size_t d = 0; d < dim; ++d) (*mean)[d] += rows[i][d];
    }
    double n = static_cast<double>(members.size());
    for (size_t d = 0; d < dim; ++d) (*mean)[d] /= n;
    for (size_t i : members) {
      for (size_t d = 0; d < dim; ++d) {
        double diff = rows[i][d] - (*mean)[d];
        (*var)[d] += diff * diff;
      }
    }
    for (size_t d = 0; d < dim; ++d) {
      (*var)[d] = std::max((*var)[d] / n, min_var);
    }
  }

  double LogDensity(const std::vector<double>& row,
                    const std::vector<double>& mean,
                    const std::vector<double>& var) const {
    static constexpr double kLog2Pi = 1.8378770664093453;
    double acc = 0.0;
    for (size_t d = 0; d < row.size(); ++d) {
      double diff = row[d] - mean[d];
      acc += -0.5 * (kLog2Pi + std::log(var[d]) + diff * diff / var[d]);
    }
    return acc;
  }

  double PosteriorPositive(const std::vector<double>& row) const {
    double lp = std::log(std::max(prior_pos, 1e-12)) +
                LogDensity(row, mean_pos, var_pos);
    double ln = std::log(std::max(1.0 - prior_pos, 1e-12)) +
                LogDensity(row, mean_neg, var_neg);
    double m = std::max(lp, ln);
    double zp = std::exp(lp - m);
    double zn = std::exp(ln - m);
    return zp / (zp + zn);
  }
};

}  // namespace

std::vector<double> BootstrapGmmMatchProbability(
    const std::vector<std::vector<double>>& features,
    const BootstrapOptions& options) {
  GTER_CHECK(!features.empty());
  // Seed labeling from the unsupervised mixture.
  std::vector<double> probability = GmmMatchProbability(features, options.gmm);

  for (size_t round = 0; round < options.max_rounds; ++round) {
    std::vector<size_t> positives, negatives;
    for (size_t i = 0; i < features.size(); ++i) {
      if (probability[i] >= options.positive_confidence) {
        positives.push_back(i);
      } else if (probability[i] <= 1.0 - options.negative_confidence) {
        negatives.push_back(i);
      }
    }
    if (positives.size() < 2 || negatives.size() < 2) break;

    NaiveBayes nb;
    nb.prior_pos = static_cast<double>(positives.size()) /
                   static_cast<double>(positives.size() + negatives.size());
    NaiveBayes::FitClass(features, positives, options.min_variance,
                         &nb.mean_pos, &nb.var_pos);
    NaiveBayes::FitClass(features, negatives, options.min_variance,
                         &nb.mean_neg, &nb.var_neg);

    std::vector<double> next(features.size());
    double change = 0.0;
    for (size_t i = 0; i < features.size(); ++i) {
      next[i] = nb.PosteriorPositive(features[i]);
      change += std::fabs(next[i] - probability[i]);
    }
    probability.swap(next);
    if (change / static_cast<double>(features.size()) < 1e-4) break;
  }
  return probability;
}

}  // namespace gter
