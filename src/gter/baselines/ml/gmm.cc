#include "gter/baselines/ml/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gter/common/random.h"
#include "gter/common/status.h"

namespace gter {
namespace {

double RowMass(const std::vector<double>& row) {
  double acc = 0.0;
  for (double v : row) acc += v;
  return acc;
}

double LogSumExp(const std::vector<double>& xs) {
  double max_x = -std::numeric_limits<double>::infinity();
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double acc = 0.0;
  for (double x : xs) acc += std::exp(x - max_x);
  return max_x + std::log(acc);
}

}  // namespace

double GaussianMixture::LogDensity(const std::vector<double>& row,
                                   size_t k) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  double acc = 0.0;
  for (size_t d = 0; d < row.size(); ++d) {
    double var = variances_[k][d];
    double diff = row[d] - means_[k][d];
    acc += -0.5 * (kLog2Pi + std::log(var) + diff * diff / var);
  }
  return acc;
}

void GaussianMixture::Fit(const std::vector<std::vector<double>>& rows,
                          const GmmOptions& options) {
  GTER_CHECK(!rows.empty());
  GTER_CHECK(options.num_components >= 1);
  const size_t n = rows.size();
  const size_t dim = rows[0].size();
  const size_t k_comp = options.num_components;

  // Initialization: order points by feature mass, seed component k's mean
  // from the (k+1)/(K+1) quantile point; equal weights; global variance.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return RowMass(rows[a]) < RowMass(rows[b]);
  });
  std::vector<double> global_mean(dim, 0.0), global_var(dim, 0.0);
  for (const auto& row : rows) {
    for (size_t d = 0; d < dim; ++d) global_mean[d] += row[d];
  }
  for (size_t d = 0; d < dim; ++d) global_mean[d] /= static_cast<double>(n);
  for (const auto& row : rows) {
    for (size_t d = 0; d < dim; ++d) {
      double diff = row[d] - global_mean[d];
      global_var[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    global_var[d] =
        std::max(global_var[d] / static_cast<double>(n), options.min_variance);
  }
  weights_.assign(k_comp, 1.0 / static_cast<double>(k_comp));
  means_.assign(k_comp, std::vector<double>(dim, 0.0));
  variances_.assign(k_comp, global_var);
  for (size_t k = 0; k < k_comp; ++k) {
    size_t quantile = (k + 1) * n / (k_comp + 1);
    quantile = std::min(quantile, n - 1);
    means_[k] = rows[order[quantile]];
  }

  std::vector<std::vector<double>> resp(n, std::vector<double>(k_comp, 0.0));
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    std::vector<double> logs(k_comp);
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < k_comp; ++k) {
        logs[k] = std::log(std::max(weights_[k], 1e-300)) +
                  LogDensity(rows[i], k);
      }
      double norm = LogSumExp(logs);
      ll += norm;
      for (size_t k = 0; k < k_comp; ++k) {
        resp[i][k] = std::exp(logs[k] - norm);
      }
    }
    log_likelihood_ = ll;
    // M-step.
    for (size_t k = 0; k < k_comp; ++k) {
      double total = 0.0;
      std::vector<double> mean(dim, 0.0), var(dim, 0.0);
      for (size_t i = 0; i < n; ++i) {
        total += resp[i][k];
        for (size_t d = 0; d < dim; ++d) mean[d] += resp[i][k] * rows[i][d];
      }
      if (total <= 1e-12) {
        weights_[k] = 1e-12;
        continue;
      }
      for (size_t d = 0; d < dim; ++d) mean[d] /= total;
      for (size_t i = 0; i < n; ++i) {
        for (size_t d = 0; d < dim; ++d) {
          double diff = rows[i][d] - mean[d];
          var[d] += resp[i][k] * diff * diff;
        }
      }
      for (size_t d = 0; d < dim; ++d) {
        var[d] = std::max(var[d] / total, options.min_variance);
      }
      weights_[k] = total / static_cast<double>(n);
      means_[k] = std::move(mean);
      variances_[k] = std::move(var);
    }
    if (std::fabs(ll - prev_ll) < options.tolerance * std::fabs(ll)) break;
    prev_ll = ll;
  }
}

std::vector<double> GaussianMixture::Posterior(
    const std::vector<double>& row) const {
  std::vector<double> logs(num_components());
  for (size_t k = 0; k < num_components(); ++k) {
    logs[k] = std::log(std::max(weights_[k], 1e-300)) + LogDensity(row, k);
  }
  double norm = LogSumExp(logs);
  std::vector<double> post(num_components());
  for (size_t k = 0; k < num_components(); ++k) {
    post[k] = std::exp(logs[k] - norm);
  }
  return post;
}

size_t GaussianMixture::HighestMeanComponent() const {
  size_t best = 0;
  double best_mass = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < num_components(); ++k) {
    double mass = RowMass(means_[k]);
    if (mass > best_mass) {
      best_mass = mass;
      best = k;
    }
  }
  return best;
}

std::vector<double> GmmMatchProbability(
    const std::vector<std::vector<double>>& features,
    const GmmOptions& options) {
  GaussianMixture gmm;
  gmm.Fit(features, options);
  size_t match = gmm.HighestMeanComponent();
  std::vector<double> probability(features.size(), 0.0);
  for (size_t i = 0; i < features.size(); ++i) {
    probability[i] = gmm.Posterior(features[i])[match];
  }
  return probability;
}

}  // namespace gter
