#ifndef GTER_BASELINES_ML_GMM_H_
#define GTER_BASELINES_ML_GMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gter {

/// Diagonal-covariance Gaussian mixture fitted by EM. The Table II
/// "Gaussian Mixture Model [5]" analogue clusters the per-pair feature
/// vectors into two components — matches vs non-matches — entirely
/// unsupervised; the component with the larger mean feature mass is taken
/// as the match class (substitution documented in DESIGN.md §3).
struct GmmOptions {
  size_t num_components = 2;
  size_t max_iterations = 200;
  double tolerance = 1e-6;
  /// Variance floor avoiding collapse onto duplicated points.
  double min_variance = 1e-6;
  uint64_t seed = 13;
};

/// A fitted mixture model.
class GaussianMixture {
 public:
  /// Fits the mixture to `rows` (each a feature vector of equal length).
  /// Initialization assigns component means to quantiles of the feature
  /// mass, making the fit deterministic for a given seed.
  void Fit(const std::vector<std::vector<double>>& rows,
           const GmmOptions& options = {});

  size_t num_components() const { return weights_.size(); }

  /// Posterior responsibilities of one feature vector (sums to 1).
  std::vector<double> Posterior(const std::vector<double>& row) const;

  /// Index of the component whose mean vector has the largest L1 mass —
  /// the "match" component for similarity features.
  size_t HighestMeanComponent() const;

  /// Mixture log-likelihood of the fitted data (for convergence tests).
  double log_likelihood() const { return log_likelihood_; }

  const std::vector<double>& mean(size_t k) const { return means_[k]; }
  double weight(size_t k) const { return weights_[k]; }

 private:
  double LogDensity(const std::vector<double>& row, size_t k) const;

  std::vector<double> weights_;
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  double log_likelihood_ = 0.0;
};

/// Convenience scorer: fit a 2-component GMM on pair features, return the
/// posterior probability of the match component per pair.
std::vector<double> GmmMatchProbability(
    const std::vector<std::vector<double>>& features,
    const GmmOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_ML_GMM_H_
