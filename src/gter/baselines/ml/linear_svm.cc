#include "gter/baselines/ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "gter/common/random.h"
#include "gter/common/status.h"

namespace gter {

double LinearSvm::Margin(const std::vector<double>& x) const {
  GTER_CHECK(x.size() == weights.size());
  double acc = bias;
  for (size_t d = 0; d < x.size(); ++d) acc += weights[d] * x[d];
  return acc;
}

LinearSvm TrainPegasos(const std::vector<std::vector<double>>& features,
                       const std::vector<bool>& labels,
                       const std::vector<size_t>& train_indices,
                       const SvmOptions& options) {
  GTER_CHECK(!features.empty());
  GTER_CHECK(features.size() == labels.size());
  GTER_CHECK(!train_indices.empty());
  const size_t dim = features[0].size();
  LinearSvm model;
  model.weights.assign(dim, 0.0);

  Rng rng(options.seed);
  std::vector<size_t> order = train_indices;
  size_t t = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      double eta = 1.0 / (options.lambda * static_cast<double>(t));
      double y = labels[i] ? 1.0 : -1.0;
      double margin = model.Margin(features[i]);
      // Regularization shrink.
      double shrink = 1.0 - eta * options.lambda;
      for (double& w : model.weights) w *= shrink;
      if (y * margin < 1.0) {
        for (size_t d = 0; d < dim; ++d) {
          model.weights[d] += eta * y * features[i][d];
        }
        model.bias += eta * y;
      }
    }
  }
  return model;
}

std::vector<double> SvmMatchScore(
    const std::vector<std::vector<double>>& features,
    const std::vector<bool>& labels, const SvmOptions& options) {
  GTER_CHECK(features.size() == labels.size());
  Rng rng(options.seed);

  std::vector<size_t> positives, negatives;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] ? positives : negatives).push_back(i);
  }
  GTER_CHECK(!positives.empty());
  GTER_CHECK(!negatives.empty());

  rng.Shuffle(&positives);
  size_t train_pos = std::max<size_t>(
      1, static_cast<size_t>(options.train_fraction *
                             static_cast<double>(positives.size())));
  std::vector<size_t> train(positives.begin(), positives.begin() + train_pos);
  size_t want_neg =
      std::min(negatives.size(), train_pos * options.negatives_per_positive);
  for (size_t idx : rng.SampleWithoutReplacement(negatives.size(), want_neg)) {
    train.push_back(negatives[idx]);
  }

  LinearSvm model = TrainPegasos(features, labels, train, options);
  std::vector<double> scores(features.size(), 0.0);
  for (size_t i = 0; i < features.size(); ++i) {
    scores[i] = model.Margin(features[i]);
  }
  // Shift margins to be non-negative so the threshold sweep (which assumes
  // scores ≥ 0) applies unchanged.
  double min_score = *std::min_element(scores.begin(), scores.end());
  for (double& s : scores) s -= min_score;
  return scores;
}

}  // namespace gter
