#include "gter/baselines/ml/fellegi_sunter.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"
#include "gter/text/string_metrics.h"

namespace gter {

FellegiSunterResult FitFellegiSunter(const Dataset& dataset,
                                     const PairSpace& pairs,
                                     const FellegiSunterOptions& options) {
  size_t num_fields = 0;
  for (const Record& rec : dataset.records()) {
    num_fields = std::max(num_fields, rec.fields.size());
  }
  GTER_CHECK(num_fields >= 1);
  GTER_CHECK(pairs.size() >= 1);

  // Binary agreement patterns per candidate pair.
  std::vector<std::vector<uint8_t>> gamma(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    const Record& a = dataset.record(rp.a);
    const Record& b = dataset.record(rp.b);
    std::vector<uint8_t> row(num_fields, 0);
    size_t shared = std::min(a.fields.size(), b.fields.size());
    for (size_t f = 0; f < shared; ++f) {
      row[f] = JaroWinklerSimilarity(a.fields[f], b.fields[f]) >=
                       options.agreement_threshold
                   ? 1
                   : 0;
    }
    gamma[p] = std::move(row);
  }

  FellegiSunterResult result;
  result.match_prior = options.init_match_prior;
  result.m.assign(num_fields, options.init_m);
  result.u.assign(num_fields, options.init_u);
  result.probability.assign(pairs.size(), 0.0);

  auto clamp01 = [](double v) { return std::clamp(v, 1e-6, 1.0 - 1e-6); };
  double prev_ll = -1e300;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // E-step: posterior of the match class per pair.
    double ll = 0.0;
    for (PairId p = 0; p < pairs.size(); ++p) {
      double log_match = std::log(clamp01(result.match_prior));
      double log_unmatch = std::log(clamp01(1.0 - result.match_prior));
      for (size_t f = 0; f < num_fields; ++f) {
        if (gamma[p][f]) {
          log_match += std::log(clamp01(result.m[f]));
          log_unmatch += std::log(clamp01(result.u[f]));
        } else {
          log_match += std::log(clamp01(1.0 - result.m[f]));
          log_unmatch += std::log(clamp01(1.0 - result.u[f]));
        }
      }
      double mx = std::max(log_match, log_unmatch);
      double zm = std::exp(log_match - mx);
      double zu = std::exp(log_unmatch - mx);
      result.probability[p] = zm / (zm + zu);
      ll += mx + std::log(zm + zu);
    }
    // M-step.
    double total_match = 0.0;
    std::vector<double> agree_match(num_fields, 0.0);
    std::vector<double> agree_unmatch(num_fields, 0.0);
    for (PairId p = 0; p < pairs.size(); ++p) {
      double w = result.probability[p];
      total_match += w;
      for (size_t f = 0; f < num_fields; ++f) {
        if (gamma[p][f]) {
          agree_match[f] += w;
          agree_unmatch[f] += 1.0 - w;
        }
      }
    }
    double total = static_cast<double>(pairs.size());
    result.match_prior = clamp01(total_match / total);
    for (size_t f = 0; f < num_fields; ++f) {
      result.m[f] = clamp01(agree_match[f] / std::max(total_match, 1e-12));
      result.u[f] =
          clamp01(agree_unmatch[f] / std::max(total - total_match, 1e-12));
    }
    if (std::fabs(ll - prev_ll) < options.tolerance * std::fabs(ll)) break;
    prev_ll = ll;
  }
  return result;
}

}  // namespace gter
