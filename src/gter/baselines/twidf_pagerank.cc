#include "gter/baselines/twidf_pagerank.h"

#include <cmath>

#include "gter/graph/term_graph.h"
#include "gter/text/string_metrics.h"

namespace gter {

std::vector<double> TwIdfPageRankScorer::Score(const Dataset& dataset,
                                               const PairSpace& pairs) {
  TermGraph graph = TermGraph::Build(dataset, options_.window_size);
  salience_ = PageRank(graph, options_.pagerank);
  std::vector<uint32_t> df = dataset.ComputeDocumentFrequencies();
  const double n = static_cast<double>(dataset.size());

  std::vector<double> idf(df.size(), 0.0);
  for (size_t t = 0; t < df.size(); ++t) {
    if (df[t] > 0) idf[t] = std::log((n + 1.0) / static_cast<double>(df[t]));
  }

  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    double acc = 0.0;
    for (TermId t : SortedIntersection(dataset.record(rp.a).terms,
                                       dataset.record(rp.b).terms)) {
      acc += salience_[t] * idf[t];
    }
    scores[p] = acc;
  }
  return scores;
}

}  // namespace gter
