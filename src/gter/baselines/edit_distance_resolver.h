#ifndef GTER_BASELINES_EDIT_DISTANCE_RESOLVER_H_
#define GTER_BASELINES_EDIT_DISTANCE_RESOLVER_H_

#include "gter/core/resolver.h"

namespace gter {

/// Character-based baseline in the spirit of Monge–Elkan [1]: normalized
/// Levenshtein similarity over the raw record text. Quadratic per pair —
/// use on small/medium candidate sets (not part of Table II, provided for
/// completeness of the distance-based family of §II-A).
class EditDistanceScorer : public PairScorer {
 public:
  std::string name() const override { return "EditDistance"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;
};

}  // namespace gter

#endif  // GTER_BASELINES_EDIT_DISTANCE_RESOLVER_H_
