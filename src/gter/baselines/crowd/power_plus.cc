#include "gter/baselines/crowd/power_plus.h"

#include <algorithm>
#include <numeric>

#include "gter/common/status.h"

namespace gter {

CrowdRunResult RunPowerPlus(const PairSpace& pairs,
                            const std::vector<double>& machine_scores,
                            CrowdOracle* oracle,
                            const PowerPlusOptions& options) {
  GTER_CHECK(machine_scores.size() == pairs.size());
  size_t before = oracle->questions_asked();

  // Candidates above the filter, best first.
  std::vector<PairId> order;
  order.reserve(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (machine_scores[p] >= options.filter_threshold) order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    return machine_scores[a] > machine_scores[b];
  });

  CrowdRunResult result;
  result.matches.assign(pairs.size(), false);
  if (order.empty()) return result;

  auto budget_left = [&]() {
    return options.budget == 0 ||
           oracle->questions_asked() - before < options.budget;
  };
  auto probe = [&](size_t idx) {
    const RecordPair& rp = pairs.pair(order[idx]);
    return oracle->AskMajority(rp.a, rp.b, options.probe_votes);
  };

  // Binary search the last matching index under the monotonicity
  // assumption: everything before the boundary matches.
  size_t lo = 0, hi = order.size();  // boundary ∈ [lo, hi]
  while (lo < hi && budget_left()) {
    size_t mid = lo + (hi - lo) / 2;
    if (probe(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t boundary = lo;

  for (size_t i = 0; i < boundary; ++i) result.matches[order[i]] = true;

  // Fringe verification: individually check pairs near the boundary where
  // monotonicity is least reliable.
  size_t fringe_lo = boundary > options.fringe_width
                         ? boundary - options.fringe_width
                         : 0;
  size_t fringe_hi = std::min(order.size(), boundary + options.fringe_width);
  for (size_t i = fringe_lo; i < fringe_hi && budget_left(); ++i) {
    const RecordPair& rp = pairs.pair(order[i]);
    result.matches[order[i]] = oracle->Ask(rp.a, rp.b);
  }

  result.questions = oracle->questions_asked() - before;
  return result;
}

}  // namespace gter
