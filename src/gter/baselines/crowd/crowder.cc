#include "gter/baselines/crowd/crowder.h"

#include <algorithm>
#include <numeric>

#include "gter/common/status.h"

namespace gter {

CrowdRunResult RunCrowdEr(const PairSpace& pairs,
                          const std::vector<double>& machine_scores,
                          CrowdOracle* oracle,
                          const CrowdErOptions& options) {
  GTER_CHECK(machine_scores.size() == pairs.size());
  size_t before = oracle->questions_asked();
  CrowdRunResult result;
  result.matches.assign(pairs.size(), false);

  // Verify the most promising pairs first so a finite budget is spent where
  // it matters.
  std::vector<PairId> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    return machine_scores[a] > machine_scores[b];
  });

  for (PairId p : order) {
    if (machine_scores[p] < options.filter_threshold) break;
    bool budget_left =
        options.budget == 0 ||
        oracle->questions_asked() - before < options.budget;
    if (budget_left) {
      const RecordPair& rp = pairs.pair(p);
      result.matches[p] = oracle->Ask(rp.a, rp.b);
    } else {
      result.matches[p] = machine_scores[p] >= options.fallback_threshold;
    }
  }
  result.questions = oracle->questions_asked() - before;
  return result;
}

}  // namespace gter
