#ifndef GTER_BASELINES_CROWD_CROWDER_H_
#define GTER_BASELINES_CROWD_CROWDER_H_

#include <cstddef>

#include "gter/baselines/crowd/oracle.h"
#include "gter/er/pair_space.h"

namespace gter {

/// CrowdER-style hybrid human–machine resolution (Wang et al. [8]):
/// a cheap machine similarity filters out unpromising pairs (the paper
/// cites a Jaccard threshold of 0.3), then the crowd verifies every
/// surviving pair. This simplified reproduction issues pair-based HITs;
/// the original's cluster-based HIT packing changes cost, not accuracy.
struct CrowdErOptions {
  /// Machine filter threshold on the provided similarity.
  double filter_threshold = 0.3;
  /// Question budget; 0 = unlimited. Pairs left unverified when the budget
  /// runs out fall back to the machine decision (score ≥ fallback).
  size_t budget = 0;
  double fallback_threshold = 0.7;
};

/// `machine_scores` is any per-pair similarity in [0, ~1] (typically
/// Jaccard).
CrowdRunResult RunCrowdEr(const PairSpace& pairs,
                          const std::vector<double>& machine_scores,
                          CrowdOracle* oracle,
                          const CrowdErOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_CROWDER_H_
