#ifndef GTER_BASELINES_CROWD_ORACLE_H_
#define GTER_BASELINES_CROWD_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "gter/common/random.h"
#include "gter/er/ground_truth.h"

namespace gter {

/// Simulated crowd worker pool: answers "are these the same entity?"
/// from the ground truth, flipping each *fresh* answer with probability
/// `error_rate` (workers are imperfect). Repeated questions return the
/// cached answer at no extra budget — platforms deduplicate HITs. This is
/// the substitution for Amazon Mechanical Turk that lets the CrowdER /
/// TransM / GCER / ACD / Power+ strategies run offline (DESIGN.md §3).
class CrowdOracle {
 public:
  CrowdOracle(const GroundTruth& truth, double error_rate, uint64_t seed)
      : truth_(truth), error_rate_(error_rate), rng_(seed) {}

  /// Asks one question, consuming budget unless cached.
  bool Ask(RecordId a, RecordId b);

  /// Asks `votes` independent workers (fresh draws) and majority-votes.
  /// Costs `votes` questions on first ask; cached afterwards. With
  /// `force_fresh`, re-polls even a cached pair (verification passes) and
  /// overwrites the cache with the majority answer.
  bool AskMajority(RecordId a, RecordId b, size_t votes,
                   bool force_fresh = false);

  /// Total questions charged so far.
  size_t questions_asked() const { return questions_; }

  /// Fraction of charged answers that were wrong (diagnostics).
  double observed_error_rate() const {
    return questions_ == 0
               ? 0.0
               : static_cast<double>(errors_) / static_cast<double>(questions_);
  }

 private:
  static uint64_t Key(RecordId a, RecordId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  bool FreshAnswer(RecordId a, RecordId b);

  const GroundTruth& truth_;
  double error_rate_;
  Rng rng_;
  std::unordered_map<uint64_t, bool> cache_;
  size_t questions_ = 0;
  size_t errors_ = 0;
};

/// Result of one crowd-strategy run.
struct CrowdRunResult {
  /// Decision per candidate PairId.
  std::vector<bool> matches;
  /// Crowd questions consumed.
  size_t questions = 0;
};

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_ORACLE_H_
