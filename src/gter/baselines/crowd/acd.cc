#include "gter/baselines/crowd/acd.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {
namespace {

uint64_t RepKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

CrowdRunResult RunAcd(const PairSpace& pairs,
                      const std::vector<double>& machine_scores,
                      CrowdOracle* oracle, const AcdOptions& options) {
  GTER_CHECK(machine_scores.size() == pairs.size());
  size_t before = oracle->questions_asked();
  uint32_t num_records = 0;
  for (const RecordPair& rp : pairs.pairs()) {
    num_records = std::max({num_records, rp.a + 1, rp.b + 1});
  }

  auto budget_left = [&]() {
    return options.budget == 0 ||
           oracle->questions_asked() - before < options.budget;
  };

  // Pass 1: transitivity-aware questioning, best pairs first.
  std::vector<PairId> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    return machine_scores[a] > machine_scores[b];
  });
  UnionFind clusters(num_records);
  std::unordered_set<uint64_t> negative;
  std::vector<PairId> accepted;  // pairs the crowd answered "yes" to
  for (PairId p : order) {
    if (machine_scores[p] < options.filter_threshold) break;
    const RecordPair& rp = pairs.pair(p);
    uint32_t ra = clusters.Find(rp.a);
    uint32_t rb = clusters.Find(rp.b);
    if (ra == rb) continue;
    if (negative.count(RepKey(ra, rb)) > 0) continue;
    if (!budget_left()) break;
    if (oracle->Ask(rp.a, rp.b)) {
      clusters.Union(rp.a, rp.b);
      accepted.push_back(p);
    } else {
      negative.insert(RepKey(ra, rb));
    }
  }

  // Pass 2 (correlation-clustering repair): inside clusters of ≥3 records,
  // re-verify the weakest accepted links with majority votes; contradicted
  // links are removed before the final closure.
  std::unordered_map<uint32_t, size_t> cluster_size;
  for (uint32_t r = 0; r < num_records; ++r) ++cluster_size[clusters.Find(r)];
  std::sort(accepted.begin(), accepted.end(), [&](PairId a, PairId b) {
    return machine_scores[a] < machine_scores[b];  // weakest first
  });
  std::unordered_set<PairId> removed;
  std::unordered_map<uint32_t, size_t> repairs_done;
  for (PairId p : accepted) {
    const RecordPair& rp = pairs.pair(p);
    uint32_t root = clusters.Find(rp.a);
    if (cluster_size[root] < 3) continue;
    if (repairs_done[root] >= options.repair_samples) continue;
    if (!budget_left()) break;
    ++repairs_done[root];
    if (!oracle->AskMajority(rp.a, rp.b, options.repair_votes,
                             /*force_fresh=*/true)) {
      removed.insert(p);
    }
  }

  // Final closure over the surviving links.
  UnionFind final_clusters(num_records);
  for (PairId p : accepted) {
    if (removed.count(p) > 0) continue;
    const RecordPair& rp = pairs.pair(p);
    final_clusters.Union(rp.a, rp.b);
  }

  CrowdRunResult result;
  result.matches.assign(pairs.size(), false);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    result.matches[p] = final_clusters.Connected(rp.a, rp.b);
  }
  result.questions = oracle->questions_asked() - before;
  return result;
}

}  // namespace gter
