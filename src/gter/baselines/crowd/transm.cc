#include "gter/baselines/crowd/transm.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {
namespace {

uint64_t RepKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

CrowdRunResult RunTransM(const PairSpace& pairs,
                         const std::vector<double>& machine_scores,
                         CrowdOracle* oracle, const TransMOptions& options) {
  GTER_CHECK(machine_scores.size() == pairs.size());
  size_t before = oracle->questions_asked();

  // Number of records = 1 + max id appearing in any pair.
  uint32_t num_records = 0;
  for (const RecordPair& rp : pairs.pairs()) {
    num_records = std::max({num_records, rp.a + 1, rp.b + 1});
  }
  UnionFind clusters(num_records);
  // Cluster-representative pairs declared non-matching. Entries go stale
  // after unions (lookups use current representatives), which only costs
  // extra questions, never accuracy.
  std::unordered_set<uint64_t> negative;

  std::vector<PairId> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    return machine_scores[a] > machine_scores[b];
  });

  for (PairId p : order) {
    if (machine_scores[p] < options.filter_threshold) break;
    const RecordPair& rp = pairs.pair(p);
    uint32_t ra = clusters.Find(rp.a);
    uint32_t rb = clusters.Find(rp.b);
    if (ra == rb) continue;  // inferred positive
    if (negative.count(RepKey(ra, rb)) > 0) continue;  // inferred negative
    if (options.budget != 0 &&
        oracle->questions_asked() - before >= options.budget) {
      continue;  // budget exhausted: leave to the final closure
    }
    if (oracle->Ask(rp.a, rp.b)) {
      clusters.Union(rp.a, rp.b);
    } else {
      negative.insert(RepKey(ra, rb));
    }
  }

  CrowdRunResult result;
  result.matches.assign(pairs.size(), false);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    result.matches[p] = clusters.Connected(rp.a, rp.b);
  }
  result.questions = oracle->questions_asked() - before;
  return result;
}

}  // namespace gter
