#ifndef GTER_BASELINES_CROWD_POWER_PLUS_H_
#define GTER_BASELINES_CROWD_POWER_PLUS_H_

#include <cstddef>

#include "gter/baselines/crowd/oracle.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Power+-style partial-order resolution (Chai et al. [13]): candidate
/// pairs are ordered by machine similarity; assuming labels are
/// approximately monotone in that order, a crowd-driven binary search
/// locates the match/non-match boundary with O(log #pairs) majority-voted
/// questions, and a verification sweep around the boundary cleans up the
/// non-monotone fringe. Dramatically fewer questions than pairwise
/// verification — the point of the partial-order approach.
struct PowerPlusOptions {
  double filter_threshold = 0.05;
  /// Votes per boundary probe.
  size_t probe_votes = 3;
  /// Pairs individually verified on each side of the found boundary.
  size_t fringe_width = 50;
  size_t budget = 0;  // 0 = unlimited
};

CrowdRunResult RunPowerPlus(const PairSpace& pairs,
                            const std::vector<double>& machine_scores,
                            CrowdOracle* oracle,
                            const PowerPlusOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_POWER_PLUS_H_
