#ifndef GTER_BASELINES_CROWD_ACD_H_
#define GTER_BASELINES_CROWD_ACD_H_

#include <cstddef>

#include "gter/baselines/crowd/oracle.h"
#include "gter/er/pair_space.h"

namespace gter {

/// ACD-style adaptive crowd deduplication (Wang, Xiao & Lee [12]): a
/// transitivity-aware question pass followed by a correlation-clustering
/// repair that re-examines clusters whose internal crowd evidence
/// conflicts, with majority voting on the repair questions — trading a few
/// extra questions for accuracy, which is how ACD tops Table II's crowd
/// block.
struct AcdOptions {
  double filter_threshold = 0.3;
  size_t budget = 0;  // 0 = unlimited (repair questions included)
  /// Workers voting on each repair question.
  size_t repair_votes = 3;
  /// Max records sampled per cluster in the repair pass.
  size_t repair_samples = 3;
};

CrowdRunResult RunAcd(const PairSpace& pairs,
                      const std::vector<double>& machine_scores,
                      CrowdOracle* oracle, const AcdOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_ACD_H_
