#ifndef GTER_BASELINES_CROWD_GCER_H_
#define GTER_BASELINES_CROWD_GCER_H_

#include <cstddef>

#include "gter/baselines/crowd/oracle.h"
#include "gter/er/pair_space.h"

namespace gter {

/// GCER-style question selection (Whang et al. [9]): under a hard question
/// budget, spend crowd effort on the pairs whose machine probability is
/// most *uncertain* (closest to 0.5) — the expected-accuracy-gain ordering
/// — and decide confident pairs by machine alone.
struct GcerOptions {
  /// Hard question budget (the point of GCER is budgeted selection).
  size_t budget = 1000;
  /// Machine decision threshold for unasked pairs, applied to the
  /// max-normalized machine score.
  double machine_threshold = 0.5;
  /// Skip pairs whose normalized score is below this (certain negatives).
  double min_score = 0.05;
};

CrowdRunResult RunGcer(const PairSpace& pairs,
                       const std::vector<double>& machine_scores,
                       CrowdOracle* oracle, const GcerOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_GCER_H_
