#ifndef GTER_BASELINES_CROWD_TRANSM_H_
#define GTER_BASELINES_CROWD_TRANSM_H_

#include <cstddef>

#include "gter/baselines/crowd/oracle.h"
#include "gter/er/pair_space.h"

namespace gter {

/// TransM-style transitivity-aware crowdsourced join (Wang et al. [10]):
/// candidate pairs are asked in descending machine-similarity order, and
/// answers already implied by transitivity — positive (same verified
/// cluster) or negative (their clusters were declared different) — are
/// inferred for free instead of asked.
struct TransMOptions {
  /// Pairs below this machine similarity are never asked (the paper's 0.3
  /// Jaccard filter).
  double filter_threshold = 0.3;
  size_t budget = 0;  // 0 = unlimited
};

CrowdRunResult RunTransM(const PairSpace& pairs,
                         const std::vector<double>& machine_scores,
                         CrowdOracle* oracle,
                         const TransMOptions& options = {});

}  // namespace gter

#endif  // GTER_BASELINES_CROWD_TRANSM_H_
