#include "gter/baselines/crowd/gcer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gter/common/status.h"

namespace gter {

CrowdRunResult RunGcer(const PairSpace& pairs,
                       const std::vector<double>& machine_scores,
                       CrowdOracle* oracle, const GcerOptions& options) {
  GTER_CHECK(machine_scores.size() == pairs.size());
  size_t before = oracle->questions_asked();

  double max_score = 0.0;
  for (double s : machine_scores) max_score = std::max(max_score, s);
  if (max_score <= 0.0) max_score = 1.0;
  std::vector<double> prob(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    prob[p] = machine_scores[p] / max_score;
  }

  // Uncertainty ordering: |p − 0.5| ascending, skipping certain negatives.
  std::vector<PairId> order;
  order.reserve(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (prob[p] >= options.min_score) order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [&](PairId a, PairId b) {
    return std::fabs(prob[a] - 0.5) < std::fabs(prob[b] - 0.5);
  });

  CrowdRunResult result;
  result.matches.assign(pairs.size(), false);
  std::vector<bool> asked(pairs.size(), false);
  for (PairId p : order) {
    if (oracle->questions_asked() - before >= options.budget) break;
    const RecordPair& rp = pairs.pair(p);
    result.matches[p] = oracle->Ask(rp.a, rp.b);
    asked[p] = true;
  }
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (!asked[p]) result.matches[p] = prob[p] >= options.machine_threshold;
  }
  result.questions = oracle->questions_asked() - before;
  return result;
}

}  // namespace gter
