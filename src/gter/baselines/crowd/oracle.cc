#include "gter/baselines/crowd/oracle.h"

namespace gter {

bool CrowdOracle::FreshAnswer(RecordId a, RecordId b) {
  bool correct = truth_.IsMatch(a, b);
  ++questions_;
  if (rng_.Bernoulli(error_rate_)) {
    ++errors_;
    return !correct;
  }
  return correct;
}

bool CrowdOracle::Ask(RecordId a, RecordId b) {
  uint64_t key = Key(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  bool answer = FreshAnswer(a, b);
  cache_.emplace(key, answer);
  return answer;
}

bool CrowdOracle::AskMajority(RecordId a, RecordId b, size_t votes,
                              bool force_fresh) {
  uint64_t key = Key(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end() && !force_fresh) return it->second;
  size_t yes = 0;
  for (size_t v = 0; v < votes; ++v) {
    if (FreshAnswer(a, b)) ++yes;
  }
  bool answer = yes * 2 > votes;
  cache_[key] = answer;
  return answer;
}

}  // namespace gter
