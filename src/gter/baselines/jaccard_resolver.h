#ifndef GTER_BASELINES_JACCARD_RESOLVER_H_
#define GTER_BASELINES_JACCARD_RESOLVER_H_

#include "gter/core/resolver.h"

namespace gter {

/// Table II row "Jaccard": token-set Jaccard similarity over the
/// preprocessed term sets; decisions via the optimal-threshold sweep.
class JaccardScorer : public PairScorer {
 public:
  std::string name() const override { return "Jaccard"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;
};

}  // namespace gter

#endif  // GTER_BASELINES_JACCARD_RESOLVER_H_
