#include "gter/baselines/jaccard_resolver.h"

#include "gter/text/string_metrics.h"

namespace gter {

std::vector<double> JaccardScorer::Score(const Dataset& dataset,
                                         const PairSpace& pairs) {
  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    scores[p] = JaccardSimilarity(dataset.record(rp.a).terms,
                                  dataset.record(rp.b).terms);
  }
  return scores;
}

}  // namespace gter
