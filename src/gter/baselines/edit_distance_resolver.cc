#include "gter/baselines/edit_distance_resolver.h"

#include "gter/text/string_metrics.h"

namespace gter {

std::vector<double> EditDistanceScorer::Score(const Dataset& dataset,
                                              const PairSpace& pairs) {
  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    scores[p] = LevenshteinSimilarity(dataset.record(rp.a).raw_text,
                                      dataset.record(rp.b).raw_text);
  }
  return scores;
}

}  // namespace gter
