#include "gter/baselines/tfidf_resolver.h"

#include "gter/text/tfidf.h"

namespace gter {

std::vector<double> TfIdfScorer::Score(const Dataset& dataset,
                                       const PairSpace& pairs) {
  TfIdfModel model;
  model.Build(dataset.TokenCorpus(), dataset.vocabulary().size());
  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    scores[p] = model.Cosine(rp.a, rp.b);
  }
  return scores;
}

}  // namespace gter
