#include "gter/baselines/simrank.h"

#include "gter/common/status.h"

namespace gter {

std::vector<double> SimRankScorer::Score(const Dataset& dataset,
                                         const PairSpace& pairs) {
  const size_t n = dataset.size();
  const size_t m = dataset.vocabulary().size();
  auto inverted = dataset.BuildInvertedIndex();  // I(t)

  // S_r starts as the identity (s(a,a) = 1, everything else 0).
  record_sim_ = DenseMatrix::Identity(n);
  DenseMatrix term_sim(m, m, 0.0);
  DenseMatrix temp_tn(m, n, 0.0);  // B̂ S_r
  DenseMatrix temp_nm(n, m, 0.0);  // Â S_t

  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    // temp_tn[t, j] = (1/|I_t|) Σ_{r ∈ I_t} S_r[r, j].
    temp_tn.Fill(0.0);
    for (size_t t = 0; t < m; ++t) {
      const auto& records = inverted[t];
      if (records.empty()) continue;
      double inv = 1.0 / static_cast<double>(records.size());
      double* out = temp_tn.row(t);
      for (RecordId r : records) {
        const double* src = record_sim_.row(r);
        for (size_t j = 0; j < n; ++j) out[j] += src[j];
      }
      for (size_t j = 0; j < n; ++j) out[j] *= inv;
    }
    // S_t[t, u] = C2 · (1/|I_u|) Σ_{r ∈ I_u} temp_tn[t, r]; diag = 1.
    for (size_t t = 0; t < m; ++t) {
      const double* src = temp_tn.row(t);
      double* out = term_sim.row(t);
      for (size_t u = 0; u < m; ++u) {
        const auto& records = inverted[u];
        if (records.empty()) {
          out[u] = 0.0;
          continue;
        }
        double acc = 0.0;
        for (RecordId r : records) acc += src[r];
        out[u] = options_.c2 * acc / static_cast<double>(records.size());
      }
      out[t] = 1.0;
    }
    // temp_nm[r, u] = (1/|O_r|) Σ_{t ∈ O_r} S_t[t, u].
    temp_nm.Fill(0.0);
    for (size_t r = 0; r < n; ++r) {
      const auto& terms = dataset.record(static_cast<RecordId>(r)).terms;
      if (terms.empty()) continue;
      double inv = 1.0 / static_cast<double>(terms.size());
      double* out = temp_nm.row(r);
      for (TermId t : terms) {
        const double* src = term_sim.row(t);
        for (size_t u = 0; u < m; ++u) out[u] += src[u];
      }
      for (size_t u = 0; u < m; ++u) out[u] *= inv;
    }
    // S_r[r, q] = C1 · (1/|O_q|) Σ_{t ∈ O_q} temp_nm[r, t]; diag = 1.
    for (size_t r = 0; r < n; ++r) {
      const double* src = temp_nm.row(r);
      double* out = record_sim_.row(r);
      for (size_t q = 0; q < n; ++q) {
        const auto& terms = dataset.record(static_cast<RecordId>(q)).terms;
        if (terms.empty()) {
          out[q] = 0.0;
          continue;
        }
        double acc = 0.0;
        for (TermId t : terms) acc += src[t];
        out[q] = options_.c1 * acc / static_cast<double>(terms.size());
      }
      out[r] = 1.0;
    }
  }

  std::vector<double> scores(pairs.size(), 0.0);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    // Symmetrize (numerical asymmetry only).
    scores[p] = (record_sim_(rp.a, rp.b) + record_sim_(rp.b, rp.a)) / 2.0;
  }
  return scores;
}

}  // namespace gter
