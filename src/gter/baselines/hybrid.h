#ifndef GTER_BASELINES_HYBRID_H_
#define GTER_BASELINES_HYBRID_H_

#include "gter/baselines/simrank.h"
#include "gter/baselines/twidf_pagerank.h"
#include "gter/core/resolver.h"

namespace gter {

/// Options for the hybrid baseline (§III-C, Eq. 5).
struct HybridOptions {
  /// β weights the topological (SimRank) component; 1−β the textual
  /// (TW-IDF) one. The paper uses 0.5.
  double beta = 0.5;
  SimRankOptions simrank;
  TwIdfOptions twidf;
};

/// Table II row "Hybrid": linear fusion of SimRank topological similarity
/// and TW-IDF textual similarity. Both components are max-normalized to
/// [0, 1] before combining, since Eq. 4 scores are unbounded while Eq. 1
/// scores live in [0, 1] — without this, one component degenerates into
/// the other under any threshold sweep.
class HybridScorer : public PairScorer {
 public:
  explicit HybridScorer(HybridOptions options = {}) : options_(options) {}

  std::string name() const override { return "Hybrid"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;

 private:
  HybridOptions options_;
};

}  // namespace gter

#endif  // GTER_BASELINES_HYBRID_H_
