#ifndef GTER_BASELINES_TFIDF_RESOLVER_H_
#define GTER_BASELINES_TFIDF_RESOLVER_H_

#include "gter/core/resolver.h"

namespace gter {

/// Table II row "TF-IDF": cosine similarity of L2-normalized TF-IDF vectors
/// over the token corpus; decisions via the optimal-threshold sweep.
class TfIdfScorer : public PairScorer {
 public:
  std::string name() const override { return "TF-IDF"; }
  std::vector<double> Score(const Dataset& dataset,
                            const PairSpace& pairs) override;
};

}  // namespace gter

#endif  // GTER_BASELINES_TFIDF_RESOLVER_H_
