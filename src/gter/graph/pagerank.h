#ifndef GTER_GRAPH_PAGERANK_H_
#define GTER_GRAPH_PAGERANK_H_

#include <vector>

#include "gter/graph/term_graph.h"

namespace gter {

/// Options for damped PageRank on the undirected term graph.
struct PageRankOptions {
  /// Damping factor φ; the paper (and TextRank) use 0.85.
  double damping = 0.85;
  /// Stop when the L1 change between sweeps falls below this.
  double tolerance = 1e-8;
  size_t max_iterations = 200;
  /// Eq. 3 as printed divides each incoming contribution by |N(t_i)| (the
  /// *receiver's* degree). Standard TextRank divides by |N(t_j)| (the
  /// sender's). The default follows TextRank — the form TW-IDF is defined
  /// on — with the paper's literal variant selectable for fidelity studies.
  bool divide_by_receiver_degree = false;
};

/// Runs PageRank over `graph`; returns one salience score per term.
/// Isolated terms receive the teleport mass (1 − φ).
std::vector<double> PageRank(const TermGraph& graph,
                             const PageRankOptions& options = {});

}  // namespace gter

#endif  // GTER_GRAPH_PAGERANK_H_
