#include "gter/graph/bipartite_graph.h"

#include <algorithm>

#include "gter/common/metrics.h"
#include "gter/common/status.h"
#include "gter/text/string_metrics.h"

namespace gter {

BipartiteGraph BipartiteGraph::Build(const Dataset& dataset,
                                     const PairSpace& pairs, PtMode pt_mode) {
  GTER_TRACE_SCOPE("bipartite/build");
  BipartiteGraph g;
  const size_t num_terms = dataset.vocabulary().size();
  const size_t num_pairs = pairs.size();

  // Pass 1: pair → shared-term CSR.
  g.pair_offsets_.assign(num_pairs + 1, 0);
  std::vector<std::vector<TermId>> shared(num_pairs);
  for (PairId p = 0; p < num_pairs; ++p) {
    const RecordPair& rp = pairs.pair(p);
    shared[p] = SortedIntersection(dataset.record(rp.a).terms,
                                   dataset.record(rp.b).terms);
    GTER_CHECK(!shared[p].empty());  // PairSpace only materializes sharers
    g.pair_offsets_[p + 1] = g.pair_offsets_[p] + shared[p].size();
  }
  g.pair_terms_.reserve(g.pair_offsets_[num_pairs]);
  for (PairId p = 0; p < num_pairs; ++p) {
    g.pair_terms_.insert(g.pair_terms_.end(), shared[p].begin(),
                         shared[p].end());
  }

  // Pass 2: invert to term → pairs CSR.
  std::vector<size_t> degree(num_terms, 0);
  for (TermId t : g.pair_terms_) ++degree[t];
  g.term_offsets_.assign(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    g.term_offsets_[t + 1] = g.term_offsets_[t] + degree[t];
  }
  g.term_pairs_.resize(g.pair_terms_.size());
  std::vector<size_t> cursor(g.term_offsets_.begin(),
                             g.term_offsets_.end() - 1);
  for (PairId p = 0; p < num_pairs; ++p) {
    for (TermId t : shared[p]) {
      g.term_pairs_[cursor[t]++] = p;
    }
  }

  // Pass 3: N_t and the Eq. 6 denominator P_t.
  g.nt_.assign(num_terms, 0);
  for (const Record& rec : dataset.records()) {
    for (TermId t : rec.terms) ++g.nt_[t];
  }
  g.pt_.assign(num_terms, 1.0);
  for (size_t t = 0; t < num_terms; ++t) {
    double pt = 1.0;
    if (pt_mode == PtMode::kPaper) {
      double nt = static_cast<double>(g.nt_[t]);
      pt = nt * (nt - 1.0) / 2.0;
    } else {
      pt = static_cast<double>(g.term_offsets_[t + 1] - g.term_offsets_[t]);
    }
    g.pt_[t] = std::max(pt, 1.0);
  }
  return g;
}

}  // namespace gter
