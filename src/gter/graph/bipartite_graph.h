#ifndef GTER_GRAPH_BIPARTITE_GRAPH_H_
#define GTER_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"

namespace gter {

/// How the normalization denominator P_t of Eq. 6 is computed.
enum class PtMode {
  /// The paper's literal formula P_t = N_t·(N_t−1)/2, where N_t is the
  /// number of records containing t (counts pairs that may not be candidate
  /// pairs in two-source datasets).
  kPaper,
  /// Number of *materialized* pair nodes adjacent to t in this graph.
  kConnectedPairs,
};

/// The paper's §V-B bipartite graph between term nodes and record-pair
/// nodes: term t is connected to pair (r_i, r_j) iff t appears in both
/// records. Stored as CSR adjacency in both directions. This is the data
/// structure ITER (Algorithm 1) iterates over.
class BipartiteGraph {
 public:
  /// Builds the graph for every pair in `pairs` over `dataset`.
  static BipartiteGraph Build(const Dataset& dataset, const PairSpace& pairs,
                              PtMode pt_mode = PtMode::kPaper);

  size_t num_terms() const { return term_offsets_.size() - 1; }
  size_t num_pairs() const { return pair_offsets_.size() - 1; }
  size_t num_edges() const { return pair_terms_.size(); }

  /// Shared terms of pair node `p`, sorted ascending.
  std::span<const TermId> TermsOfPair(PairId p) const {
    return {pair_terms_.data() + pair_offsets_[p],
            pair_offsets_[p + 1] - pair_offsets_[p]};
  }

  /// Pair nodes adjacent to term `t`.
  std::span<const PairId> PairsOfTerm(TermId t) const {
    return {term_pairs_.data() + term_offsets_[t],
            term_offsets_[t + 1] - term_offsets_[t]};
  }

  /// Normalization denominator P_t of Eq. 6 (≥ 1 for any term with at
  /// least one adjacent pair).
  double Pt(TermId t) const { return pt_[t]; }

  /// N_t = number of records containing term t.
  uint32_t Nt(TermId t) const { return nt_[t]; }

 private:
  // CSR pair → terms.
  std::vector<size_t> pair_offsets_;
  std::vector<TermId> pair_terms_;
  // CSR term → pairs.
  std::vector<size_t> term_offsets_;
  std::vector<PairId> term_pairs_;
  std::vector<double> pt_;
  std::vector<uint32_t> nt_;
};

}  // namespace gter

#endif  // GTER_GRAPH_BIPARTITE_GRAPH_H_
