#ifndef GTER_GRAPH_DYNAMIC_BIPARTITE_H_
#define GTER_GRAPH_DYNAMIC_BIPARTITE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"
#include "gter/text/vocabulary.h"

namespace gter {

/// Appendable variant of the §V-B term ↔ record-pair graph for incremental
/// resolution (DESIGN.md §4g). Where BipartiteGraph is a frozen two-sided
/// CSR built in one pass, this structure grows in place:
///
///  - `EnsureTerms` extends the term side as the vocabulary interns new
///    terms (existing TermIds are stable).
///  - `AddRecordTerms` registers one record's term set, bumping N_t — and
///    therefore the Eq. 6 denominator P_t in kPaper mode — for each term.
///  - `AddPair` appends one pair node with its shared-term adjacency and
///    mirrors it into the per-term posting lists. PairIds are assigned
///    densely in append order, so vectors indexed by PairId simply grow.
///
/// Adjacency is stored as append-only offset+flat arrays on the pair side
/// (identical layout to the CSR) and as per-term posting vectors on the
/// term side; postings stay sorted because pairs are appended in PairId
/// order. P_t is derived on demand from N_t / the posting degree, so it can
/// never go stale. The accessors mirror BipartiteGraph so RunIterDirty's
/// gather loops read both shapes the same way.
class DynamicBipartiteGraph {
 public:
  explicit DynamicBipartiteGraph(PtMode pt_mode = PtMode::kPaper)
      : pt_mode_(pt_mode) {
    pair_offsets_.push_back(0);
  }

  /// Grows the term side to at least `num_terms` (new terms start with
  /// N_t = 0 and no adjacent pairs). Never shrinks.
  void EnsureTerms(size_t num_terms);

  /// Registers one record's sorted-unique term set: N_t increments for each
  /// term. Call exactly once per record, before adding the record's pairs.
  void AddRecordTerms(std::span<const TermId> terms);

  /// Appends a pair node adjacent to `shared_terms` (the sorted shared-term
  /// set of the record pair, must be non-empty) and returns its dense id.
  PairId AddPair(std::span<const TermId> shared_terms);

  size_t num_terms() const { return term_pairs_.size(); }
  size_t num_pairs() const { return pair_offsets_.size() - 1; }
  size_t num_edges() const { return pair_terms_.size(); }

  /// Shared terms of pair node `p`, sorted ascending. The span is
  /// invalidated by the next AddPair.
  std::span<const TermId> TermsOfPair(PairId p) const {
    return {pair_terms_.data() + pair_offsets_[p],
            pair_offsets_[p + 1] - pair_offsets_[p]};
  }

  /// Pair nodes adjacent to term `t`, ascending. The span is invalidated by
  /// the next AddPair touching `t`.
  std::span<const PairId> PairsOfTerm(TermId t) const {
    return {term_pairs_[t].data(), term_pairs_[t].size()};
  }

  /// Normalization denominator P_t of Eq. 6, derived from the live N_t /
  /// degree so appends can never leave it stale (≥ 1 always, matching
  /// BipartiteGraph's clamp).
  double Pt(TermId t) const {
    double pt;
    if (pt_mode_ == PtMode::kPaper) {
      const double nt = static_cast<double>(nt_[t]);
      pt = nt * (nt - 1.0) / 2.0;
    } else {
      pt = static_cast<double>(term_pairs_[t].size());
    }
    return pt < 1.0 ? 1.0 : pt;
  }

  /// N_t = number of records registered (via AddRecordTerms) containing t.
  uint32_t Nt(TermId t) const { return nt_[t]; }

  PtMode pt_mode() const { return pt_mode_; }

 private:
  PtMode pt_mode_;
  // Pair → terms: append-only offsets + flat adjacency (CSR layout).
  std::vector<size_t> pair_offsets_;
  std::vector<TermId> pair_terms_;
  // Term → pairs: posting vectors, sorted by construction.
  std::vector<std::vector<PairId>> term_pairs_;
  std::vector<uint32_t> nt_;
};

}  // namespace gter

#endif  // GTER_GRAPH_DYNAMIC_BIPARTITE_H_
