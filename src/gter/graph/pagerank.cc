#include "gter/graph/pagerank.h"

#include <cmath>

namespace gter {

std::vector<double> PageRank(const TermGraph& graph,
                             const PageRankOptions& options) {
  const size_t n = graph.num_terms();
  std::vector<double> score(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double change = 0.0;
    for (TermId t = 0; t < n; ++t) {
      double acc = 0.0;
      auto neigh = graph.Neighbors(t);
      if (options.divide_by_receiver_degree) {
        for (TermId nb : neigh) acc += score[nb];
        if (!neigh.empty()) acc /= static_cast<double>(neigh.size());
      } else {
        for (TermId nb : neigh) {
          acc += score[nb] / static_cast<double>(graph.Degree(nb));
        }
      }
      next[t] = (1.0 - options.damping) + options.damping * acc;
      change += std::fabs(next[t] - score[t]);
    }
    score.swap(next);
    if (change < options.tolerance) break;
  }
  return score;
}

}  // namespace gter
