#include "gter/graph/record_graph.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {

RecordGraph RecordGraph::Build(size_t num_records, const PairSpace& pairs,
                               const std::vector<double>& similarity) {
  GTER_CHECK(similarity.size() == pairs.size());
  RecordGraph g;
  std::vector<size_t> degree(num_records, 0);
  for (const RecordPair& rp : pairs.pairs()) {
    ++degree[rp.a];
    ++degree[rp.b];
  }
  g.offsets_.assign(num_records + 1, 0);
  for (size_t r = 0; r < num_records; ++r) {
    g.offsets_[r + 1] = g.offsets_[r] + degree[r];
  }
  size_t total = g.offsets_[num_records];
  g.adjacency_.resize(total);
  g.weights_.resize(total);
  g.edge_pairs_.resize(total);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    double w = std::max(similarity[p], 0.0);
    g.adjacency_[cursor[rp.a]] = rp.b;
    g.weights_[cursor[rp.a]] = w;
    g.edge_pairs_[cursor[rp.a]] = p;
    ++cursor[rp.a];
    g.adjacency_[cursor[rp.b]] = rp.a;
    g.weights_[cursor[rp.b]] = w;
    g.edge_pairs_[cursor[rp.b]] = p;
    ++cursor[rp.b];
  }
  // Sort each adjacency row by neighbor id (keeps CSR exports canonical).
  for (size_t r = 0; r < num_records; ++r) {
    size_t lo = g.offsets_[r], hi = g.offsets_[r + 1];
    std::vector<size_t> order(hi - lo);
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return g.adjacency_[lo + x] < g.adjacency_[lo + y];
    });
    std::vector<RecordId> adj(hi - lo);
    std::vector<double> wts(hi - lo);
    std::vector<PairId> eps(hi - lo);
    for (size_t k = 0; k < order.size(); ++k) {
      adj[k] = g.adjacency_[lo + order[k]];
      wts[k] = g.weights_[lo + order[k]];
      eps[k] = g.edge_pairs_[lo + order[k]];
    }
    std::copy(adj.begin(), adj.end(), g.adjacency_.begin() + lo);
    std::copy(wts.begin(), wts.end(), g.weights_.begin() + lo);
    std::copy(eps.begin(), eps.end(), g.edge_pairs_.begin() + lo);
  }
  return g;
}

double RecordGraph::Density() const {
  size_t n = num_nodes();
  if (n < 2) return 0.0;
  double possible = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(num_edges()) / possible;
}

double RecordGraph::EdgeWeight(RecordId a, RecordId b) const {
  auto neigh = Neighbors(a);
  auto it = std::lower_bound(neigh.begin(), neigh.end(), b);
  if (it == neigh.end() || *it != b) return 0.0;
  return Weights(a)[static_cast<size_t>(it - neigh.begin())];
}

bool RecordGraph::HasEdge(RecordId a, RecordId b) const {
  auto neigh = Neighbors(a);
  return std::binary_search(neigh.begin(), neigh.end(), b);
}

CsrMatrix RecordGraph::AdjacencyMatrix() const {
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(adjacency_.size());
  for (RecordId r = 0; r < num_nodes(); ++r) {
    for (RecordId nb : Neighbors(r)) {
      triplets.push_back({r, nb, 1.0});
    }
  }
  return CsrMatrix::FromTriplets(num_nodes(), num_nodes(),
                                 std::move(triplets));
}

CsrMatrix RecordGraph::TransitionMatrix(double alpha) const {
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(adjacency_.size());
  for (RecordId r = 0; r < num_nodes(); ++r) {
    auto neigh = Neighbors(r);
    auto wts = Weights(r);
    if (neigh.empty()) continue;
    double row_max = 0.0;
    for (double w : wts) row_max = std::max(row_max, w);
    if (row_max <= 0.0) {
      // Degenerate row: all similarities zero → uniform transitions.
      double uniform = 1.0 / static_cast<double>(neigh.size());
      for (size_t k = 0; k < neigh.size(); ++k) {
        triplets.push_back({r, neigh[k], uniform});
      }
      continue;
    }
    double denom = 0.0;
    std::vector<double> powered(neigh.size());
    for (size_t k = 0; k < neigh.size(); ++k) {
      powered[k] = std::pow(wts[k] / row_max, alpha);
      denom += powered[k];
    }
    for (size_t k = 0; k < neigh.size(); ++k) {
      triplets.push_back({r, neigh[k], powered[k] / denom});
    }
  }
  return CsrMatrix::FromTriplets(num_nodes(), num_nodes(),
                                 std::move(triplets));
}

}  // namespace gter
