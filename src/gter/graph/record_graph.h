#ifndef GTER_GRAPH_RECORD_GRAPH_H_
#define GTER_GRAPH_RECORD_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gter/er/pair_space.h"
#include "gter/matrix/csr_matrix.h"

namespace gter {

/// The weighted record graph G_r of §VI-A: one node per record; an
/// undirected edge per candidate pair, weighted by the pair similarity
/// s(r_i, r_j) learned by ITER. CliqueRank and RSS walk this graph.
class RecordGraph {
 public:
  /// Builds G_r from the candidate pairs and their similarity scores
  /// (indexed by PairId). Pairs with non-positive similarity keep their
  /// edge with weight 0 — they stay structurally present so the matching
  /// probability is defined for every candidate pair.
  static RecordGraph Build(size_t num_records, const PairSpace& pairs,
                           const std::vector<double>& similarity);

  size_t num_nodes() const { return offsets_.size() - 1; }
  size_t num_edges() const { return adjacency_.size() / 2; }

  /// Fraction of possible undirected edges present.
  double Density() const;

  /// Neighbor record ids of node r.
  std::span<const RecordId> Neighbors(RecordId r) const {
    return {adjacency_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

  /// Edge weights parallel to Neighbors(r).
  std::span<const double> Weights(RecordId r) const {
    return {weights_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

  /// PairId of the edge from r to its k-th neighbor (parallel to
  /// Neighbors(r)); lets walkers map edges back to candidate pairs.
  std::span<const PairId> EdgePairIds(RecordId r) const {
    return {edge_pairs_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

  /// Similarity of edge {a, b}, or 0 when absent.
  double EdgeWeight(RecordId a, RecordId b) const;

  /// True when records a and b are adjacent.
  bool HasEdge(RecordId a, RecordId b) const;

  /// The symmetric 0/1 adjacency matrix M_n as CSR (diagonal excluded).
  CsrMatrix AdjacencyMatrix() const;

  /// The transition matrix M_t of Eq. 11/13: row i holds
  /// s(i,j)^α / Σ_k s(i,k)^α over i's neighbors. Rows are numerically
  /// stabilized by dividing weights by the row maximum before powering.
  /// Rows whose weights are all zero fall back to uniform transitions.
  CsrMatrix TransitionMatrix(double alpha) const;

 private:
  std::vector<size_t> offsets_;
  std::vector<RecordId> adjacency_;
  std::vector<double> weights_;
  std::vector<PairId> edge_pairs_;
};

}  // namespace gter

#endif  // GTER_GRAPH_RECORD_GRAPH_H_
