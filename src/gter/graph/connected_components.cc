#include "gter/graph/connected_components.h"

#include <algorithm>

#include "gter/graph/union_find.h"

namespace gter {

std::vector<uint32_t> ConnectedComponents(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  return uf.ComponentLabels();
}

std::vector<std::vector<uint32_t>> GroupByComponent(
    const std::vector<uint32_t>& labels) {
  uint32_t num = 0;
  for (uint32_t l : labels) num = std::max(num, l + 1);
  std::vector<std::vector<uint32_t>> groups(num);
  for (uint32_t x = 0; x < labels.size(); ++x) {
    groups[labels[x]].push_back(x);
  }
  return groups;
}

}  // namespace gter
