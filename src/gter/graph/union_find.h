#ifndef GTER_GRAPH_UNION_FIND_H_
#define GTER_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gter {

/// Disjoint-set forest with path halving and union by size. Used for
/// transitive closure of match decisions (cluster extraction, crowd
/// transitivity inference).
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of x's set.
  uint32_t Find(uint32_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  size_t SizeOf(uint32_t x);

  size_t num_components() const { return num_components_; }

  /// Dense component labels in [0, num_components), stable by smallest
  /// member.
  std::vector<uint32_t> ComponentLabels();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_components_;
};

}  // namespace gter

#endif  // GTER_GRAPH_UNION_FIND_H_
