#include "gter/graph/term_graph.h"

#include <algorithm>
#include <unordered_set>

#include "gter/common/status.h"

namespace gter {

TermGraph TermGraph::Build(const Dataset& dataset, size_t window_size) {
  GTER_CHECK(window_size >= 2);
  const size_t num_terms = dataset.vocabulary().size();
  // Collect unique undirected edges as packed 64-bit keys.
  std::unordered_set<uint64_t> edge_set;
  for (const Record& rec : dataset.records()) {
    const auto& toks = rec.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      size_t end = std::min(toks.size(), i + window_size);
      for (size_t j = i + 1; j < end; ++j) {
        TermId a = toks[i], b = toks[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        edge_set.insert((static_cast<uint64_t>(a) << 32) | b);
      }
    }
  }
  TermGraph g;
  std::vector<size_t> degree(num_terms, 0);
  for (uint64_t key : edge_set) {
    ++degree[key >> 32];
    ++degree[key & 0xFFFFFFFFULL];
  }
  g.offsets_.assign(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    g.offsets_[t + 1] = g.offsets_[t] + degree[t];
  }
  g.adjacency_.resize(g.offsets_[num_terms]);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (uint64_t key : edge_set) {
    TermId a = static_cast<TermId>(key >> 32);
    TermId b = static_cast<TermId>(key & 0xFFFFFFFFULL);
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  for (size_t t = 0; t < num_terms; ++t) {
    std::sort(g.adjacency_.begin() + g.offsets_[t],
              g.adjacency_.begin() + g.offsets_[t + 1]);
  }
  return g;
}

}  // namespace gter
