#include "gter/graph/union_find.h"

#include <numeric>

#include "gter/common/status.h"

namespace gter {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

uint32_t UnionFind::Find(uint32_t x) {
  GTER_CHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return true;
}

size_t UnionFind::SizeOf(uint32_t x) { return size_[Find(x)]; }

std::vector<uint32_t> UnionFind::ComponentLabels() {
  std::vector<uint32_t> labels(parent_.size());
  std::vector<uint32_t> root_label(parent_.size(),
                                   static_cast<uint32_t>(-1));
  uint32_t next = 0;
  for (uint32_t x = 0; x < parent_.size(); ++x) {
    uint32_t r = Find(x);
    if (root_label[r] == static_cast<uint32_t>(-1)) root_label[r] = next++;
    labels[x] = root_label[r];
  }
  return labels;
}

}  // namespace gter
