#ifndef GTER_GRAPH_TERM_GRAPH_H_
#define GTER_GRAPH_TERM_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gter/er/dataset.h"

namespace gter {

/// Undirected term co-occurrence graph of §III-B (TextRank / TW-IDF): nodes
/// are terms; two terms are connected when they co-occur within a
/// fixed-size sliding window in some record's token sequence. Edges are
/// unweighted (multiple co-occurrences collapse to one edge), matching the
/// TextRank graph the paper's PageRank baseline runs on.
class TermGraph {
 public:
  /// Builds the graph from every record of `dataset` with the given window
  /// size (number of consecutive tokens considered co-occurring; ≥ 2).
  static TermGraph Build(const Dataset& dataset, size_t window_size = 3);

  size_t num_terms() const { return offsets_.size() - 1; }
  size_t num_edges() const { return adjacency_.size() / 2; }

  /// Neighboring terms of t, sorted ascending.
  std::span<const TermId> Neighbors(TermId t) const {
    return {adjacency_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  size_t Degree(TermId t) const { return offsets_[t + 1] - offsets_[t]; }

 private:
  std::vector<size_t> offsets_;
  std::vector<TermId> adjacency_;
};

}  // namespace gter

#endif  // GTER_GRAPH_TERM_GRAPH_H_
