#include "gter/graph/dynamic_bipartite.h"

#include "gter/common/status.h"

namespace gter {

void DynamicBipartiteGraph::EnsureTerms(size_t num_terms) {
  if (num_terms <= term_pairs_.size()) return;
  term_pairs_.resize(num_terms);
  nt_.resize(num_terms, 0);
}

void DynamicBipartiteGraph::AddRecordTerms(std::span<const TermId> terms) {
  for (TermId t : terms) {
    GTER_CHECK(t < nt_.size());
    ++nt_[t];
  }
}

PairId DynamicBipartiteGraph::AddPair(std::span<const TermId> shared_terms) {
  GTER_CHECK(!shared_terms.empty());
  const PairId p = static_cast<PairId>(num_pairs());
  pair_terms_.insert(pair_terms_.end(), shared_terms.begin(),
                     shared_terms.end());
  pair_offsets_.push_back(pair_terms_.size());
  for (TermId t : shared_terms) {
    GTER_CHECK(t < term_pairs_.size());
    term_pairs_[t].push_back(p);
  }
  return p;
}

}  // namespace gter
