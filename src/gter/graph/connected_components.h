#ifndef GTER_GRAPH_CONNECTED_COMPONENTS_H_
#define GTER_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gter {

/// Connected components of an undirected graph given as an edge list over
/// nodes [0, n). Returns dense component labels (smallest-member order).
std::vector<uint32_t> ConnectedComponents(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

/// Groups node ids by component label: result[c] = sorted members of
/// component c.
std::vector<std::vector<uint32_t>> GroupByComponent(
    const std::vector<uint32_t>& labels);

}  // namespace gter

#endif  // GTER_GRAPH_CONNECTED_COMPONENTS_H_
