#include "gter/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "gter/common/logging.h"

namespace gter {
namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

}  // namespace

GterdServer::GterdServer(ResolutionService* service,
                         GterdServerOptions options, const ExecContext& ctx)
    : service_(service),
      options_(std::move(options)),
      base_ctx_(ctx),
      pool_(ctx.pool != nullptr ? ctx.pool : ThreadPool::Default()) {}

Result<std::unique_ptr<GterdServer>> GterdServer::Start(
    ResolutionService* service, GterdServerOptions options,
    const ExecContext& ctx) {
  std::unique_ptr<GterdServer> server(
      new GterdServer(service, std::move(options), ctx));
  GTER_RETURN_IF_ERROR(server->Init());
  server->loop_thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status GterdServer::Init() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

GterdServer::~GterdServer() { Stop(); }

void GterdServer::Stop() {
  if (stopped_) return;
  // Init() may have failed before the loop thread existed.
  if (loop_thread_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
    loop_thread_.join();
  }
  stopped_ = true;
  // The loop is gone: we are the only thread touching conns_. Cancel
  // whatever is still running, then wait for the workers to unwind before
  // closing the fds they signal through.
  for (auto& [id, conn] : conns_) {
    if (conn->session != nullptr) conn->session->CancelInFlight();
  }
  pool_->Wait(&requests_);
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.clear();
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

void GterdServer::Loop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      GTER_LOG(Error) << "gterd: epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptNew();
      } else if (id == kWakeId) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else {
        HandleConnEvent(id, events[i].events);
      }
    }
  }
}

void GterdServer::AcceptNew() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GTER_LOG(Warning) << "gterd: accept4: " << std::strerror(errno);
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = id;
    conn->session = std::make_unique<Session>(this, id);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      GTER_LOG(Warning) << "gterd: epoll_ctl(conn): " << std::strerror(errno);
      close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void GterdServer::HandleConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // already closed this wakeup
  Connection* conn = it->second.get();

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    conn->session->CancelInFlight();
    CloseConnection(conn_id);
    return;
  }

  if ((events & EPOLLIN) != 0 && !conn->closing) {
    char buf[16384];
    while (true) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->read_buffer.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        // Orderly disconnect. Anything still executing for this client is
        // abandoned work: trip its tokens so it unwinds as Cancelled.
        conn->session->CancelInFlight();
        CloseConnection(conn_id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->session->CancelInFlight();
      CloseConnection(conn_id);
      return;
    }
    if (!conn->session->ConsumeFrames(&conn->read_buffer,
                                      &conn->write_buffer)) {
      conn->closing = true;
      conn->read_buffer.clear();
    } else if (conn->read_buffer.size() > options_.max_frame_bytes) {
      // No newline within the frame budget: the stream cannot be re-synced.
      conn->write_buffer.append(FormatGterdError(
          JsonValue::MakeNull(),
          Status::InvalidArgument(
              "request frame exceeds " +
              std::to_string(options_.max_frame_bytes) + " bytes")));
      conn->closing = true;
      conn->read_buffer.clear();
    }
  }
  FlushWrites(conn);  // may erase the connection
}

void GterdServer::FlushWrites(Connection* conn) {
  while (!conn->write_buffer.empty()) {
    ssize_t n = send(conn->fd, conn->write_buffer.data(),
                     conn->write_buffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_buffer.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn->session->CancelInFlight();
    CloseConnection(conn->id);
    return;
  }
  const bool want_write = !conn->write_buffer.empty();
  if (want_write != conn->write_registered) {
    epoll_event ev{};
    ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->write_registered = want_write;
  }
  if (conn->closing && conn->write_buffer.empty()) {
    // Error frame (if any) is on the wire; in-flight work is moot.
    conn->session->CancelInFlight();
    CloseConnection(conn->id);
  }
}

void GterdServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  conns_.erase(it);
}

bool GterdServer::Session::ConsumeFrames(std::string* read_buffer,
                                         std::string* out) {
  size_t start = 0;
  bool keep_open = true;
  while (keep_open) {
    const size_t nl = read_buffer->find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(read_buffer->data() + start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;  // blank keep-alive lines are ignored
    if (line.size() > server_->options_.max_frame_bytes) {
      out->append(FormatGterdError(
          JsonValue::MakeNull(),
          Status::InvalidArgument(
              "request frame exceeds " +
              std::to_string(server_->options_.max_frame_bytes) + " bytes")));
      keep_open = false;
      break;
    }
    auto parsed = ParseGterdRequest(line);
    if (!parsed.ok()) {
      // A malformed frame is still a *framed* frame — answer with an error
      // and keep the connection; the stream is intact.
      out->append(FormatGterdError(JsonValue::MakeNull(), parsed.status()));
      continue;
    }
    auto state = std::make_shared<RequestState>();
    in_flight_.push_back(state);
    server_->Dispatch(conn_id_, std::move(parsed).value(), std::move(state));
  }
  read_buffer->erase(0, start);
  // Opportunistic prune so a long-lived connection's list stays bounded.
  std::erase_if(in_flight_, [](const std::shared_ptr<RequestState>& s) {
    return s->done.load(std::memory_order_acquire);
  });
  return keep_open;
}

void GterdServer::Session::CancelInFlight() {
  for (const auto& state : in_flight_) state->cancel.Cancel();
  in_flight_.clear();
}

void GterdServer::Dispatch(uint64_t conn_id, GterdRequest request,
                           std::shared_ptr<RequestState> state) {
  // Armed before queueing: the deadline covers time spent waiting for a
  // worker, so an overloaded server answers DeadlineExceeded instead of
  // serving stale work.
  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  if (deadline_ms > 0) state->cancel.SetTimeout(deadline_ms * 1e-3);
  Status submitted = pool_->Submit(
      &requests_,
      [this, conn_id, request = std::move(request), state]() mutable {
        ExecContext rctx = base_ctx_;
        rctx.cancel = &state->cancel;
        Result<JsonValue> result = service_->Handle(request, rctx);
        std::string response =
            result.ok()
                ? FormatGterdResponse(request.id, std::move(result).value())
                : FormatGterdError(request.id, result.status());
        state->done.store(true, std::memory_order_release);
        PostResponse(conn_id, std::move(response));
      });
  if (!submitted.ok()) {
    // Pool shutting down: the server is being torn down with it; the
    // connection will be closed without a response.
    state->done.store(true, std::memory_order_release);
  }
}

void GterdServer::PostResponse(uint64_t conn_id, std::string response) {
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.emplace_back(conn_id, std::move(response));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void GterdServer::DrainCompletions() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, response] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // client left before the answer
    it->second->write_buffer.append(response);
    FlushWrites(it->second.get());  // may erase the connection
  }
}

}  // namespace gter
