#include "gter/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "gter/common/logging.h"
#include "gter/common/prom.h"

namespace gter {
namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kMetricsListenId = 2;

/// Per-request trace buffer for slow-request capture: small — a request's
/// own spans, not a whole run's.
constexpr size_t kSlowTraceCapacity = 512;

/// An HTTP request head larger than this answers 431 and closes.
constexpr size_t kMaxHttpHeadBytes = 16384;

/// Sliding-histogram slot names; the last entry absorbs unknown methods.
constexpr const char* kMethodSlotNames[] = {
    "pair_score", "resolve",    "add_record", "stats",
    "debug_sleep", "debug_slow", "unknown",
};

size_t MethodSlot(const std::string& method) {
  for (size_t i = 0; i + 1 < std::size(kMethodSlotNames); ++i) {
    if (method == kMethodSlotNames[i]) return i;
  }
  return std::size(kMethodSlotNames) - 1;
}

/// Creates a non-blocking listening socket bound to `bind_address:port`,
/// returning the fd and the actually-bound port (resolves port 0).
Status BindAndListen(const std::string& bind_address, uint16_t port,
                     int* out_fd, uint16_t* out_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  *out_fd = fd;  // owned by the caller from here (closed by Stop)
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(fd, SOMAXCONN) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  *out_port = ntohs(addr.sin_port);
  return Status::OK();
}

}  // namespace

GterdServer::GterdServer(ResolutionService* service,
                         GterdServerOptions options, const ExecContext& ctx)
    : service_(service),
      options_(std::move(options)),
      base_ctx_(ctx),
      pool_(ctx.pool != nullptr ? ctx.pool : ThreadPool::Default()),
      start_time_(std::chrono::steady_clock::now()) {
  metrics_ = base_ctx_.metrics_or_ambient();
  if (metrics_ == nullptr) {
    // The observability listener and sliding latency histograms always
    // have a registry to land in, even when the embedding context carries
    // none (tests, minimal embedders).
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  base_ctx_.metrics = metrics_;  // request handlers record into the same one
  for (size_t i = 0; i < kNumMethodSlots; ++i) {
    const std::string base = std::string("server/") + kMethodSlotNames[i];
    queue_us_slidings_[i] = metrics_->Sliding(
        base + "/queue_us", options_.sliding_window_seconds);
    work_us_slidings_[i] = metrics_->Sliding(
        base + "/work_us", options_.sliding_window_seconds);
  }
}

Result<std::unique_ptr<GterdServer>> GterdServer::Start(
    ResolutionService* service, GterdServerOptions options,
    const ExecContext& ctx) {
  std::unique_ptr<GterdServer> server(
      new GterdServer(service, std::move(options), ctx));
  GTER_RETURN_IF_ERROR(server->Init());
  server->loop_thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status GterdServer::Init() {
  GTER_RETURN_IF_ERROR(
      BindAndListen(options_.bind_address, options_.port, &listen_fd_, &port_));
  if (options_.metrics_port >= 0) {
    GTER_RETURN_IF_ERROR(
        BindAndListen(options_.bind_address,
                      static_cast<uint16_t>(options_.metrics_port),
                      &metrics_listen_fd_, &metrics_port_));
  }
  if (!options_.access_log_path.empty()) {
    auto log = AccessLog::Open(options_.access_log_path);
    if (!log.ok()) return log.status();
    access_log_ = std::move(log).value();
  }

  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  if (metrics_listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.u64 = kMetricsListenId;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, metrics_listen_fd_, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(metrics): ") +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

GterdServer::~GterdServer() { Stop(); }

void GterdServer::Stop() {
  if (stopped_) return;
  // Init() may have failed before the loop thread existed.
  if (loop_thread_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
    loop_thread_.join();
  }
  stopped_ = true;
  // The loop is gone: we are the only thread touching conns_. Cancel
  // whatever is still running, then wait for the workers to unwind before
  // closing the fds they signal through.
  for (auto& [id, conn] : conns_) {
    if (conn->session != nullptr) conn->session->CancelInFlight();
  }
  pool_->Wait(&requests_);
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.clear();
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (metrics_listen_fd_ >= 0) close(metrics_listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = metrics_listen_fd_ = -1;
  // Last chance to see what was slow before the ring evaporates: one
  // summary line per captured request (`debug_slow` serves the full spans
  // while the daemon is up).
  std::lock_guard<std::mutex> lock(slow_mutex_);
  for (const SlowRequestRecord& rec : slow_ring_) {
    GTER_LOG(Info) << "gterd: slow request id=" << rec.request_id
                   << " method=" << rec.method << " status=" << rec.status
                   << " queue_us=" << rec.queue_us
                   << " work_us=" << rec.work_us
                   << " spans=" << rec.spans.size();
  }
}

void GterdServer::Loop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      GTER_LOG(Error) << "gterd: epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptNew(listen_fd_, /*http=*/false);
      } else if (id == kMetricsListenId) {
        AcceptNew(metrics_listen_fd_, /*http=*/true);
      } else if (id == kWakeId) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else {
        HandleConnEvent(id, events[i].events);
      }
    }
  }
}

void GterdServer::AcceptNew(int listen_fd, bool http) {
  while (true) {
    int fd = accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GTER_LOG(Warning) << "gterd: accept4: " << std::strerror(errno);
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = id;
    conn->http = http;
    if (!http) conn->session = std::make_unique<Session>(this, id);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      GTER_LOG(Warning) << "gterd: epoll_ctl(conn): " << std::strerror(errno);
      close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void GterdServer::HandleConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // already closed this wakeup
  Connection* conn = it->second.get();

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    if (conn->session != nullptr) conn->session->CancelInFlight();
    CloseConnection(conn_id);
    return;
  }

  if ((events & EPOLLIN) != 0 && !conn->closing) {
    char buf[16384];
    while (true) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->read_buffer.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        // Orderly disconnect. Anything still executing for this client is
        // abandoned work: trip its tokens so it unwinds as Cancelled.
        if (conn->session != nullptr) conn->session->CancelInFlight();
        CloseConnection(conn_id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (conn->session != nullptr) conn->session->CancelInFlight();
      CloseConnection(conn_id);
      return;
    }
    if (conn->http) {
      HandleHttp(conn);
    } else if (!conn->session->ConsumeFrames(&conn->read_buffer,
                                             &conn->write_buffer)) {
      conn->closing = true;
      conn->read_buffer.clear();
    } else if (conn->read_buffer.size() > options_.max_frame_bytes) {
      // No newline within the frame budget: the stream cannot be re-synced.
      conn->write_buffer.append(FormatGterdError(
          JsonValue::MakeNull(),
          Status::InvalidArgument(
              "request frame exceeds " +
              std::to_string(options_.max_frame_bytes) + " bytes")));
      conn->closing = true;
      conn->read_buffer.clear();
    }
  }
  FlushWrites(conn);  // may erase the connection
}

void GterdServer::HandleHttp(Connection* conn) {
  // Wait for the full request head (we never read a body: every endpoint
  // is a GET). Tolerate bare-LF clients.
  size_t head_end = conn->read_buffer.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    head_end = conn->read_buffer.find("\n\n");
  }
  if (head_end == std::string::npos) {
    if (conn->read_buffer.size() > kMaxHttpHeadBytes) {
      conn->write_buffer.append(
          "HTTP/1.0 431 Request Header Fields Too Large\r\n"
          "Connection: close\r\n\r\n");
      conn->closing = true;
      conn->read_buffer.clear();
    }
    return;
  }

  const size_t line_end = conn->read_buffer.find_first_of("\r\n");
  const std::string request_line = conn->read_buffer.substr(0, line_end);
  conn->read_buffer.clear();

  const size_t method_end = request_line.find(' ');
  std::string method;
  std::string path;
  if (method_end != std::string::npos) {
    method = request_line.substr(0, method_end);
    const size_t path_end = request_line.find(' ', method_end + 1);
    path = request_line.substr(method_end + 1,
                               path_end == std::string::npos
                                   ? std::string::npos
                                   : path_end - method_end - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
  }

  const auto respond = [conn](const char* status_line,
                              const char* content_type, std::string body) {
    conn->write_buffer.append("HTTP/1.0 ");
    conn->write_buffer.append(status_line);
    conn->write_buffer.append("\r\nContent-Type: ");
    conn->write_buffer.append(content_type);
    conn->write_buffer.append("\r\nContent-Length: " +
                              std::to_string(body.size()) +
                              "\r\nConnection: close\r\n\r\n");
    conn->write_buffer.append(body);
  };

  if (method != "GET") {
    respond("405 Method Not Allowed", "text/plain; charset=utf-8",
            "method not allowed\n");
  } else if (path == "/metrics") {
    metrics_->SetGauge(
        "server/uptime_s",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count());
    respond("200 OK", "text/plain; version=0.0.4; charset=utf-8",
            RenderPrometheusText(*metrics_));
  } else if (path == "/healthz") {
    respond("200 OK", "text/plain; charset=utf-8", "ok\n");
  } else if (path == "/varz") {
    respond("200 OK", "application/json", metrics_->ToJson());
  } else {
    respond("404 Not Found", "text/plain; charset=utf-8", "not found\n");
  }
  conn->closing = true;
}

void GterdServer::FlushWrites(Connection* conn) {
  while (!conn->write_buffer.empty()) {
    ssize_t n = send(conn->fd, conn->write_buffer.data(),
                     conn->write_buffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_buffer.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (conn->session != nullptr) conn->session->CancelInFlight();
    CloseConnection(conn->id);
    return;
  }
  const bool want_write = !conn->write_buffer.empty();
  if (want_write != conn->write_registered) {
    epoll_event ev{};
    ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->write_registered = want_write;
  }
  if (conn->closing && conn->write_buffer.empty()) {
    // Error frame (if any) is on the wire; in-flight work is moot.
    if (conn->session != nullptr) conn->session->CancelInFlight();
    CloseConnection(conn->id);
  }
}

void GterdServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  conns_.erase(it);
}

bool GterdServer::Session::ConsumeFrames(std::string* read_buffer,
                                         std::string* out) {
  size_t start = 0;
  bool keep_open = true;
  while (keep_open) {
    const size_t nl = read_buffer->find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(read_buffer->data() + start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;  // blank keep-alive lines are ignored
    if (line.size() > server_->options_.max_frame_bytes) {
      out->append(FormatGterdError(
          JsonValue::MakeNull(),
          Status::InvalidArgument(
              "request frame exceeds " +
              std::to_string(server_->options_.max_frame_bytes) + " bytes")));
      keep_open = false;
      break;
    }
    auto parsed = ParseGterdRequest(line);
    if (!parsed.ok()) {
      // A malformed frame is still a *framed* frame — answer with an error
      // and keep the connection; the stream is intact.
      out->append(FormatGterdError(JsonValue::MakeNull(), parsed.status()));
      continue;
    }
    auto state = std::make_shared<RequestState>();
    in_flight_.push_back(state);
    server_->Dispatch(conn_id_, std::move(parsed).value(), std::move(state),
                      line.size());
  }
  read_buffer->erase(0, start);
  // Opportunistic prune so a long-lived connection's list stays bounded.
  std::erase_if(in_flight_, [](const std::shared_ptr<RequestState>& s) {
    return s->done.load(std::memory_order_acquire);
  });
  return keep_open;
}

void GterdServer::Session::CancelInFlight() {
  for (const auto& state : in_flight_) state->cancel.Cancel();
  in_flight_.clear();
}

void GterdServer::Dispatch(uint64_t conn_id, GterdRequest request,
                           std::shared_ptr<RequestState> state,
                           uint64_t bytes_in) {
  // Identity and admission time are minted here — on the loop thread,
  // before queueing — so request ids are strictly increasing in admission
  // order and queue_us covers the full wait for a worker.
  state->request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  state->admit_ns = TraceRecorder::NowNs();
  state->bytes_in = bytes_in;
  // Armed before queueing: the deadline covers time spent waiting for a
  // worker, so an overloaded server answers DeadlineExceeded instead of
  // serving stale work.
  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  if (deadline_ms > 0) state->cancel.SetTimeout(deadline_ms * 1e-3);
  Status submitted = pool_->Submit(
      &requests_,
      [this, conn_id, request = std::move(request), state,
       deadline_ms]() mutable {
        const uint64_t work_start_ns = TraceRecorder::NowNs();
        ExecContext rctx = base_ctx_;
        rctx.cancel = &state->cancel;
        rctx.request_id = state->request_id;
        // With slow-request capture on, the request's spans land in its
        // own small recorder so a slow one can be dumped span-by-span.
        std::unique_ptr<TraceRecorder> request_trace;
        if (options_.slow_request_ms > 0) {
          request_trace = std::make_unique<TraceRecorder>(kSlowTraceCapacity);
          rctx.trace = request_trace.get();
        }
        Result<JsonValue> result = [&]() -> Result<JsonValue> {
          if (request.method == "debug_slow") {
            // Served by the server, not the service: the ring is ours.
            GTER_RETURN_IF_ERROR(rctx.CheckCancel());
            return DumpSlowRing();
          }
          return service_->Handle(request, rctx);
        }();
        const Status status =
            result.ok() ? Status::OK() : result.status();
        std::string response =
            result.ok()
                ? FormatGterdResponse(request.id, std::move(result).value())
                : FormatGterdError(request.id, result.status());
        ObserveRequest(request, *state, work_start_ns, TraceRecorder::NowNs(),
                       status, response.size(), deadline_ms,
                       request_trace.get());
        state->done.store(true, std::memory_order_release);
        PostResponse(conn_id, std::move(response));
      });
  if (!submitted.ok()) {
    // Pool shutting down: the server is being torn down with it; the
    // connection will be closed without a response.
    state->done.store(true, std::memory_order_release);
  }
}

void GterdServer::ObserveRequest(const GterdRequest& request,
                                 const RequestState& state,
                                 uint64_t work_start_ns, uint64_t done_ns,
                                 const Status& status, uint64_t bytes_out,
                                 int64_t deadline_ms,
                                 TraceRecorder* request_trace) {
  const size_t slot = MethodSlot(request.method);
  const double queue_us =
      static_cast<double>(work_start_ns - state.admit_ns) * 1e-3;
  const double work_us =
      static_cast<double>(done_ns - work_start_ns) * 1e-3;
  queue_us_slidings_[slot]->Record(queue_us);
  work_us_slidings_[slot]->Record(work_us);

  const std::string status_name =
      status.ok() ? "OK" : StatusCodeToString(status.code());

  if (access_log_ != nullptr) {
    AccessLog::Entry entry;
    entry.request_id = state.request_id;
    entry.method = request.method;
    entry.status = status_name;
    entry.bytes_in = state.bytes_in;
    entry.bytes_out = bytes_out;
    entry.queue_us = queue_us;
    entry.work_us = work_us;
    entry.deadline_ms = deadline_ms;
    if (deadline_ms > 0) {
      entry.slack_ms = static_cast<double>(deadline_ms) -
                       static_cast<double>(done_ns - state.admit_ns) * 1e-6;
    }
    const JsonValue* clusterer = request.params.Find("clusterer");
    if (clusterer != nullptr && clusterer->is_string()) {
      entry.clusterer = clusterer->string();
    }
    access_log_->Write(entry);
  }

  if (options_.slow_request_ms > 0 &&
      work_us > static_cast<double>(options_.slow_request_ms) * 1e3) {
    SlowRequestRecord rec;
    rec.request_id = state.request_id;
    rec.method = request.method;
    rec.status = status_name;
    rec.queue_us = queue_us;
    rec.work_us = work_us;
    if (request_trace != nullptr) rec.spans = request_trace->Snapshot();
    std::lock_guard<std::mutex> lock(slow_mutex_);
    if (slow_ring_.size() >= kSlowRingCapacity) slow_ring_.pop_front();
    slow_ring_.push_back(std::move(rec));
  }
}

JsonValue GterdServer::DumpSlowRing() {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  JsonValue out = JsonValue::MakeObject();
  out.Set("threshold_ms", JsonValue::MakeNumber(
                              static_cast<double>(options_.slow_request_ms)));
  out.Set("capacity",
          JsonValue::MakeNumber(static_cast<double>(kSlowRingCapacity)));
  JsonValue slow = JsonValue::MakeArray();
  for (const SlowRequestRecord& rec : slow_ring_) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("request_id",
              JsonValue::MakeNumber(static_cast<double>(rec.request_id)));
    entry.Set("method", JsonValue::MakeString(rec.method));
    entry.Set("status", JsonValue::MakeString(rec.status));
    entry.Set("queue_us", JsonValue::MakeNumber(rec.queue_us));
    entry.Set("work_us", JsonValue::MakeNumber(rec.work_us));
    // Span starts are emitted relative to the request's first span, so
    // the dump is readable without steady-clock context.
    uint64_t base_ns = 0;
    for (const TraceEvent& span : rec.spans) {
      if (base_ns == 0 || span.start_ns < base_ns) base_ns = span.start_ns;
    }
    JsonValue spans = JsonValue::MakeArray();
    for (const TraceEvent& span : rec.spans) {
      JsonValue s = JsonValue::MakeObject();
      s.Set("name", JsonValue::MakeString(span.name));
      s.Set("cat", JsonValue::MakeString(span.category));
      s.Set("start_us", JsonValue::MakeNumber(
                            static_cast<double>(span.start_ns - base_ns) *
                            1e-3));
      s.Set("dur_us", JsonValue::MakeNumber(
                          static_cast<double>(span.duration_ns) * 1e-3));
      spans.Append(std::move(s));
    }
    entry.Set("spans", std::move(spans));
    slow.Append(std::move(entry));
  }
  out.Set("slow", std::move(slow));
  return out;
}

void GterdServer::PostResponse(uint64_t conn_id, std::string response) {
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.emplace_back(conn_id, std::move(response));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void GterdServer::DrainCompletions() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, response] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // client left before the answer
    it->second->write_buffer.append(response);
    FlushWrites(it->second.get());  // may erase the connection
  }
}

}  // namespace gter
