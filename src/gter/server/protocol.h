#ifndef GTER_SERVER_PROTOCOL_H_
#define GTER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "gter/common/json.h"
#include "gter/common/status.h"

namespace gter {

/// The gterd wire protocol (DESIGN.md §5): newline-delimited JSON over
/// TCP. One request per line, one response line per request; responses
/// carry the request's `id` back, so a client may pipeline requests and
/// match responses out of order.
///
/// Request frame:
///   {"id": <any JSON value>, "method": "<name>", "params": {...},
///    "deadline_ms": <positive integer, optional>}
/// Response frames:
///   {"id": <echoed>, "ok": true, "result": {...}}
///   {"id": <echoed or null>, "ok": false,
///    "error": {"code": "<StatusCodeToString name>", "message": "..."}}

/// One parsed request frame.
struct GterdRequest {
  /// Echoed verbatim in the response; null when the client sent none.
  JsonValue id;
  std::string method;
  /// Method parameters; an empty object when the frame had none.
  JsonValue params = JsonValue::MakeObject();
  /// Per-request deadline in milliseconds; 0 means "use the server
  /// default". Armed on a CancelToken when the request is admitted, so it
  /// covers queue time as well as execution.
  int64_t deadline_ms = 0;
};

/// Parses one request line. InvalidArgument on malformed JSON, a
/// non-object frame, a missing/non-string `method`, a non-object
/// `params`, or a non-integral/negative `deadline_ms`.
Result<GterdRequest> ParseGterdRequest(std::string_view line);

/// Success response frame, newline-terminated.
std::string FormatGterdResponse(const JsonValue& id, JsonValue result);

/// Error response frame, newline-terminated. The wire error code is
/// StatusCodeToString(status.code()) — the stable names shared with the
/// rest of the library ("InvalidArgument", "DeadlineExceeded", ...).
std::string FormatGterdError(const JsonValue& id, const Status& status);

}  // namespace gter

#endif  // GTER_SERVER_PROTOCOL_H_
