#include "gter/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gter {
namespace {

/// Inverse of StatusCodeToString for the wire error codes; unknown names
/// map to kInternal so a garbled frame is still an error.
StatusCode StatusCodeFromString(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    const auto code = static_cast<StatusCode>(c);
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

GterdClient::~GterdClient() { Close(); }

GterdClient::GterdClient(GterdClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      buffer_(std::move(other.buffer_)) {}

GterdClient& GterdClient::operator=(GterdClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void GterdClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Result<GterdClient> GterdClient::Connect(const std::string& host,
                                         uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(StatusCode::kIOError,
                  "connect " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(errno));
    close(fd);
    return status;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  GterdClient client;
  client.fd_ = fd;
  return client;
}

Status GterdClient::WriteAll(std::string_view data) {
  while (!data.empty()) {
    ssize_t n = send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status GterdClient::ReadLine(std::string* line) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::OK();
    }
    char chunk[16384];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Status GterdClient::SendRaw(std::string_view line) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string framed(line);
  framed.push_back('\n');
  return WriteAll(framed);
}

Result<JsonValue> GterdClient::ReadResponseFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string line;
  GTER_RETURN_IF_ERROR(ReadLine(&line));
  return JsonValue::Parse(line);
}

Result<std::string> GterdClient::HttpGet(const std::string& host,
                                         uint16_t port,
                                         const std::string& path) {
  auto connected = Connect(host, port);
  if (!connected.ok()) return connected.status();
  GterdClient client = std::move(connected).value();
  GTER_RETURN_IF_ERROR(client.WriteAll("GET " + path +
                                       " HTTP/1.0\r\n"
                                       "Host: " +
                                       host + "\r\n\r\n"));
  // HTTP/1.0 with Connection: close — the response is everything until EOF.
  std::string response;
  char chunk[16384];
  while (true) {
    ssize_t n = recv(client.fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      response.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  size_t header_end = response.find("\r\n\r\n");
  size_t body_start = header_end + 4;
  if (header_end == std::string::npos) {
    header_end = response.find("\n\n");
    body_start = header_end + 2;
  }
  if (header_end == std::string::npos) {
    return Status::IOError("malformed HTTP response (no header terminator)");
  }
  const size_t line_end = response.find_first_of("\r\n");
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::IOError("HTTP GET " + path + ": " + status_line);
  }
  return response.substr(body_start);
}

Result<JsonValue> GterdClient::Call(const std::string& method,
                                    JsonValue params, int64_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const uint64_t id = next_id_++;
  JsonValue frame = JsonValue::MakeObject();
  frame.Set("id", JsonValue::MakeNumber(static_cast<double>(id)));
  frame.Set("method", JsonValue::MakeString(method));
  frame.Set("params", std::move(params));
  if (deadline_ms > 0) {
    frame.Set("deadline_ms",
              JsonValue::MakeNumber(static_cast<double>(deadline_ms)));
  }
  std::string wire = frame.Serialize();
  wire.push_back('\n');
  GTER_RETURN_IF_ERROR(WriteAll(wire));

  // The server answers in completion order, so with pipelining a frame for
  // another id could arrive first; this client is strictly call/response
  // per instance, but skipping mismatched ids keeps it robust anyway.
  while (true) {
    auto frame_result = ReadResponseFrame();
    if (!frame_result.ok()) return frame_result.status();
    const JsonValue& response = frame_result.value();
    if (!response.is_object()) {
      return Status::IOError("malformed response frame: not an object");
    }
    const JsonValue* rid = response.Find("id");
    if (rid == nullptr || !rid->is_number() ||
        rid->number() != static_cast<double>(id)) {
      continue;
    }
    const JsonValue* ok = response.Find("ok");
    if (ok == nullptr || !ok->is_bool()) {
      return Status::IOError("malformed response frame: missing 'ok'");
    }
    if (ok->boolean()) {
      const JsonValue* result = response.Find("result");
      return result != nullptr ? *result : JsonValue::MakeNull();
    }
    const JsonValue* error = response.Find("error");
    if (error == nullptr || !error->is_object()) {
      return Status::IOError("malformed error frame: missing 'error'");
    }
    const JsonValue* code = error->Find("code");
    const JsonValue* message = error->Find("message");
    return Status(
        code != nullptr && code->is_string()
            ? StatusCodeFromString(code->string())
            : StatusCode::kInternal,
        message != nullptr && message->is_string() ? message->string() : "");
  }
}

}  // namespace gter
