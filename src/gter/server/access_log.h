#ifndef GTER_SERVER_ACCESS_LOG_H_
#define GTER_SERVER_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "gter/common/status.h"

namespace gter {

/// Structured per-request access log for gterd (`--access_log`): one
/// NDJSON line per completed request, flushed as written so a crashed or
/// killed daemon loses at most the line being formatted. Writes are
/// serialized by a mutex — the log is written once per request from pool
/// workers, far off any hot path.
///
/// Line schema (fields in this order; `deadline_ms`/`slack_ms` appear
/// only when the request carried a deadline, `clusterer` only when the
/// request selected one):
///   {"ts_ms": <unix millis>, "request_id": <uint>, "method": "...",
///    "status": "OK|DeadlineExceeded|...", "bytes_in": <uint>,
///    "bytes_out": <uint>, "queue_us": <float>, "work_us": <float>,
///    "deadline_ms": <int>, "slack_ms": <float>, "clusterer": "..."}
class AccessLog {
 public:
  /// One completed request's log fields.
  struct Entry {
    uint64_t request_id = 0;
    std::string method;
    /// Wire status name ("OK" on success — StatusCodeToString vocabulary).
    std::string status;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    double queue_us = 0.0;
    double work_us = 0.0;
    /// Effective deadline; 0 = none (drops deadline_ms/slack_ms fields).
    int64_t deadline_ms = 0;
    /// Remaining budget at completion (negative = finished past it).
    double slack_ms = 0.0;
    /// Clustering endgame requested by the client; empty = absent.
    std::string clusterer;
  };

  /// Opens `path` in append mode (the daemon-restart-friendly choice).
  static Result<std::unique_ptr<AccessLog>> Open(const std::string& path);

  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Appends one line and flushes. Thread-safe.
  void Write(const Entry& entry);

 private:
  explicit AccessLog(std::FILE* file) : file_(file) {}

  std::mutex mutex_;
  std::FILE* file_;
};

}  // namespace gter

#endif  // GTER_SERVER_ACCESS_LOG_H_
