#ifndef GTER_SERVER_CLIENT_H_
#define GTER_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "gter/common/json.h"
#include "gter/common/status.h"

namespace gter {

/// Blocking NDJSON client for gterd. One TCP connection; requests get
/// sequential integer ids. Not thread-safe — one client per thread (the
/// load generator opens one per simulated connection).
class GterdClient {
 public:
  GterdClient() = default;
  ~GterdClient();

  GterdClient(GterdClient&& other) noexcept;
  GterdClient& operator=(GterdClient&& other) noexcept;
  GterdClient(const GterdClient&) = delete;
  GterdClient& operator=(const GterdClient&) = delete;

  static Result<GterdClient> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Issues `method(params)` and blocks for the matching response.
  /// `deadline_ms > 0` attaches a per-request deadline. A transport
  /// failure returns IOError; a server error response comes back as a
  /// Status carrying the server's code and message (so a tripped deadline
  /// is observable as StatusCode::kDeadlineExceeded).
  Result<JsonValue> Call(const std::string& method, JsonValue params,
                         int64_t deadline_ms = 0);

  /// Protocol-test hooks: send an arbitrary line (newline appended) and
  /// read one raw response frame.
  Status SendRaw(std::string_view line);
  Result<JsonValue> ReadResponseFrame();

  /// One-shot HTTP/1.0 GET against the server's observability listener
  /// (DESIGN.md §4c): connects, issues `GET <path>`, reads until the peer
  /// closes, and returns the response *body*. Any status other than
  /// 200 OK is an error carrying the status line. Used by bench_loadgen
  /// and the tests to scrape /metrics; not a general HTTP client.
  static Result<std::string> HttpGet(const std::string& host, uint16_t port,
                                     const std::string& path);

 private:
  Status WriteAll(std::string_view data);
  /// Reads one newline-terminated line into `*line` (without the newline).
  Status ReadLine(std::string* line);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace gter

#endif  // GTER_SERVER_CLIENT_H_
