#include "gter/server/protocol.h"

#include <cmath>

namespace gter {

Result<GterdRequest> ParseGterdRequest(std::string_view line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return parsed.status();
  JsonValue& frame = parsed.value();
  if (!frame.is_object()) {
    return Status::InvalidArgument("request frame must be a JSON object");
  }
  GterdRequest request;
  if (const JsonValue* id = frame.Find("id")) request.id = *id;
  const JsonValue* method = frame.Find("method");
  if (method == nullptr || !method->is_string()) {
    return Status::InvalidArgument("request needs a string 'method'");
  }
  request.method = method->string();
  if (const JsonValue* params = frame.Find("params")) {
    if (!params->is_object()) {
      return Status::InvalidArgument("'params' must be an object");
    }
    request.params = *params;
  }
  if (const JsonValue* deadline = frame.Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->number() < 0 ||
        deadline->number() != std::floor(deadline->number())) {
      return Status::InvalidArgument(
          "'deadline_ms' must be a non-negative integer");
    }
    request.deadline_ms = static_cast<int64_t>(deadline->number());
  }
  return request;
}

std::string FormatGterdResponse(const JsonValue& id, JsonValue result) {
  JsonValue frame = JsonValue::MakeObject();
  frame.Set("id", id);
  frame.Set("ok", JsonValue::MakeBool(true));
  frame.Set("result", std::move(result));
  std::string out = frame.Serialize();
  out.push_back('\n');
  return out;
}

std::string FormatGterdError(const JsonValue& id, const Status& status) {
  JsonValue error = JsonValue::MakeObject();
  error.Set("code", JsonValue::MakeString(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::MakeString(status.message()));
  JsonValue frame = JsonValue::MakeObject();
  frame.Set("id", id);
  frame.Set("ok", JsonValue::MakeBool(false));
  frame.Set("error", std::move(error));
  std::string out = frame.Serialize();
  out.push_back('\n');
  return out;
}

}  // namespace gter
