#ifndef GTER_SERVER_SERVICE_H_
#define GTER_SERVER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/common/json.h"
#include "gter/core/fusion.h"
#include "gter/core/resolver_state.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/server/protocol.h"

namespace gter {

/// Options for building a ResolutionService.
struct ResolutionServiceOptions {
  /// Fusion configuration for the startup training run.
  FusionConfig fusion;
  /// Tokenizer applied to query/ingested text; must match the one the
  /// dataset was built with so query terms intern identically.
  TokenizerOptions tokenizer;
  /// Serve from the incremental ResolverState engine (DESIGN.md §4g)
  /// instead of a frozen fusion run: training becomes a ResolverState
  /// batch build and add_record becomes a real ingest — the record joins
  /// the candidate space, ITER re-converges over the dirty region under
  /// the request's context, and the response reports the resolved
  /// cluster. `resolver` (not `fusion`) then governs eta/Pt/iter knobs.
  bool incremental = false;
  ResolverStateOptions resolver;
};

/// The long-lived resolution model behind gterd: a dataset, the fusion
/// pipeline's learned term weights and match decisions (computed once at
/// startup), the clique (cluster) structure those matches imply, and an
/// inverted index for online scoring. Request handlers are thread-safe:
/// reads (pair_score, resolve, stats) take a shared lock, add_record takes
/// an exclusive one.
///
/// Online scoring uses the fusion model's own similarity: s(q, r) =
/// Σ_{t ∈ q ∩ r} x_t over the learned term weights — the same quantity
/// ITER assigns to candidate pairs, evaluated against arbitrary query
/// text through the inverted index in O(Σ_t |postings(t)|).
///
/// add_record has two behaviours. In the default (batch-trained) mode it
/// ingests a new record into the vocabulary, the inverted index, and a
/// fresh singleton clique without re-running fusion — newly interned
/// terms carry zero weight until the next training run; the record is
/// still immediately visible to resolve/pair_score through the terms it
/// shares with the trained vocabulary. In incremental mode
/// (`options.incremental`) add_record is a full ingest into the
/// ResolverState engine: O(neighborhood) structural update plus a
/// dirty-region re-ITER under the request's deadline, after which the
/// response reports the cluster the record actually resolved into.
class ResolutionService {
 public:
  /// Builds the service: takes ownership of `dataset` (already
  /// preprocessed) and runs the fusion pipeline on it under `ctx`.
  /// Propagates the pipeline's error (including Cancelled /
  /// DeadlineExceeded) on failure.
  static Result<std::unique_ptr<ResolutionService>> Create(
      Dataset dataset, ResolutionServiceOptions options,
      const ExecContext& ctx = DefaultExecContext());

  /// Dispatches one parsed request. Called from worker threads; `ctx`
  /// carries the per-request CancelToken (deadline) and observability
  /// sinks. Handler errors come back as statuses, which the protocol
  /// layer maps onto wire error codes:
  ///   unknown method            -> NotFound
  ///   bad/missing params        -> InvalidArgument
  ///   record id out of range    -> OutOfRange
  ///   tripped deadline/cancel   -> DeadlineExceeded / Cancelled
  ///
  /// Methods: pair_score(a, b), resolve(text[, top_k][, clusterer]),
  /// add_record(text[, source]), stats(), and debug_sleep(ms) — a
  /// diagnostic that idles cooperatively, polling cancellation every
  /// millisecond (what the deadline/disconnect tests lean on).
  ///
  /// resolve's optional `clusterer` selects a clustering endgame by
  /// registry name: the trained probabilities are re-clustered under the
  /// request's ExecContext (so per-request deadlines fire inside the run)
  /// and the answered clique comes from that fresh partition. An unknown
  /// name is InvalidArgument; without the param the partition computed at
  /// training time is served.
  Result<JsonValue> Handle(const GterdRequest& request,
                           const ExecContext& ctx);

  size_t num_records() const;

 private:
  ResolutionService(Dataset dataset, ResolutionServiceOptions options);

  /// Runs fusion and builds the serving indexes (called once by Create).
  Status Train(const ExecContext& ctx);

  Result<JsonValue> PairScore(const JsonValue& params,
                              const ExecContext& ctx) const;
  Result<JsonValue> Resolve(const JsonValue& params,
                            const ExecContext& ctx) const;
  Result<JsonValue> AddRecord(const JsonValue& params, const ExecContext& ctx);
  /// Lifetime counters plus `uptime_s` and — when the context's registry
  /// carries the server's `server/<method>/{queue,work}_us` sliding
  /// histograms — a `live` object of windowed per-method latency
  /// percentiles (schema in DESIGN.md §5c).
  JsonValue Stats(const ExecContext& ctx) const;

  /// Σ_{t ∈ a ∩ b} x_t over two sorted term lists (mu_ held).
  double SharedTermWeight(const std::vector<TermId>& a,
                          const std::vector<TermId>& b) const;

  // Mode-dispatching views over the model (mu_ held): incremental mode
  // serves the ResolverState's live vectors, batch mode the frozen
  // fusion-trained members. Handlers read through these only.
  const PairSpace& PairsView() const {
    return state_ ? state_->pairs() : pairs_;
  }
  const std::vector<double>& WeightsView() const {
    return state_ ? state_->term_weights() : term_weights_;
  }
  const std::vector<double>& ScoresView() const {
    return state_ ? state_->pair_scores() : pair_scores_;
  }
  const std::vector<double>& ProbabilityView() const {
    return state_ ? state_->pair_probability() : pair_probability_;
  }
  const std::vector<bool>& MatchesView() const {
    return state_ ? state_->matches() : matches_;
  }
  const std::vector<uint32_t>& ClusterOfView() const {
    return state_ ? state_->cluster_of() : cluster_of_;
  }
  const std::vector<std::vector<RecordId>>& ClusterMembersView() const {
    return state_ ? state_->cluster_members() : cluster_members_;
  }
  const std::vector<std::vector<RecordId>>& InvertedView() const {
    return state_ ? state_->inverted_index() : inverted_;
  }
  size_t MatchedCountView() const {
    return state_ ? state_->matched_count() : matched_count_;
  }
  double Eta() const {
    return state_ ? options_.resolver.eta : options_.fusion.eta;
  }

  mutable std::shared_mutex mu_;
  Dataset dataset_;
  ResolutionServiceOptions options_;

  /// The incremental engine (set iff options_.incremental). Guarded by
  /// mu_: ingest mutates under the exclusive lock, reads go through the
  /// views under shared locks.
  std::unique_ptr<ResolverState> state_;

  // The batch-trained model (guarded by mu_; term_weights_ is resized,
  // zero padded, when add_record grows the vocabulary). Unused in
  // incremental mode — the views above dispatch to state_ instead.
  std::vector<double> term_weights_;
  PairSpace pairs_;
  std::vector<double> pair_scores_;
  std::vector<double> pair_probability_;
  std::vector<bool> matches_;
  size_t matched_count_ = 0;
  double train_seconds_ = 0.0;
  /// Service birth (training start); `stats` serves the elapsed time as
  /// `uptime_s`.
  std::chrono::steady_clock::time_point start_time_;

  // Clique structure and the online-scoring indexes.
  std::vector<uint32_t> cluster_of_;                // by RecordId
  std::vector<std::vector<RecordId>> cluster_members_;  // by cluster id
  std::vector<std::vector<RecordId>> inverted_;     // by TermId, sorted
  std::vector<uint32_t> source_of_;                 // by RecordId

  // Request counters for stats (atomic: bumped outside the lock).
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> records_added_{0};
};

}  // namespace gter

#endif  // GTER_SERVER_SERVICE_H_
