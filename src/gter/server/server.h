#ifndef GTER_SERVER_SERVER_H_
#define GTER_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/server/service.h"

namespace gter {

/// Options for GterdServer::Start.
struct GterdServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() — the test/bench self-hosting path).
  uint16_t port = 0;
  /// Address to bind. The daemon is a trusted-network component; the
  /// default keeps it loopback-only.
  std::string bind_address = "127.0.0.1";
  /// A request line longer than this closes the connection (after an
  /// InvalidArgument error frame): the line is unframeable, so the stream
  /// cannot be resynchronized.
  size_t max_frame_bytes = 1 << 20;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 means no deadline.
  int64_t default_deadline_ms = 0;
};

/// The gterd network front end: one epoll event-loop thread owning all
/// sockets, with request execution handed to a ThreadPool.
///
/// Structure (DESIGN.md §5):
///  * `Connection` — socket-level state: the fd and its read/write byte
///    buffers. Touched only by the event-loop thread.
///  * `Session` — protocol-level state riding on a connection: splits the
///    read buffer into newline-delimited frames, parses them, admits
///    requests, and tracks the CancelTokens of requests still in flight so
///    a dropped connection cancels its work.
///  * Workers never touch a Connection: a finished request posts its
///    serialized response to a completion queue and signals the loop via
///    an eventfd; the loop copies it into the connection's write buffer.
///
/// Deadlines: a request's CancelToken is armed when the request is
/// admitted (before it is queued), so `deadline_ms` covers queue time as
/// well as execution, and a request scheduled after its deadline answers
/// DeadlineExceeded rather than being silently dropped.
class GterdServer {
 public:
  /// Binds, listens, and starts the event-loop thread. `service` must
  /// outlive the server, as must everything `ctx` points at; requests run
  /// on `ctx.pool` (the process-default pool when null) and inherit the
  /// context's observability sinks.
  static Result<std::unique_ptr<GterdServer>> Start(
      ResolutionService* service, GterdServerOptions options,
      const ExecContext& ctx = DefaultExecContext());

  /// Stops the loop, cancels in-flight requests, waits for workers, and
  /// closes every socket. Idempotent; also run by the destructor.
  void Stop();

  ~GterdServer();

  GterdServer(const GterdServer&) = delete;
  GterdServer& operator=(const GterdServer&) = delete;

  /// The bound port (resolves the ephemeral-port case).
  uint16_t port() const { return port_; }

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-request shared state: the cancel token lives here so it outlives
  /// both the owning Session (connection may drop mid-request) and the
  /// worker (session may cancel after completion, harmlessly).
  struct RequestState {
    CancelToken cancel;
    std::atomic<bool> done{false};
  };

  class Session {
   public:
    Session(GterdServer* server, uint64_t conn_id)
        : server_(server), conn_id_(conn_id) {}

    /// Consumes every complete frame in `*read_buffer`, appending
    /// immediate (parse-error) responses to `*out` and dispatching valid
    /// requests. Returns false when the connection must close after its
    /// write buffer drains (unframeable oversized line).
    bool ConsumeFrames(std::string* read_buffer, std::string* out);

    /// Trips the cancel token of every request still in flight (client
    /// disconnected or server stopping).
    void CancelInFlight();

   private:
    GterdServer* server_;
    uint64_t conn_id_;
    std::vector<std::shared_ptr<RequestState>> in_flight_;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string read_buffer;
    std::string write_buffer;
    /// EPOLLOUT currently registered (write buffer was not drainable).
    bool write_registered = false;
    /// Close once the write buffer drains; stop reading.
    bool closing = false;
    std::unique_ptr<Session> session;
  };

  GterdServer(ResolutionService* service, GterdServerOptions options,
              const ExecContext& ctx);

  Status Init();
  void Loop();
  void AcceptNew();
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  /// send() until EAGAIN or empty; (de)registers EPOLLOUT as needed and
  /// closes `closing` connections whose buffer drained.
  void FlushWrites(Connection* conn);
  void CloseConnection(uint64_t conn_id);

  /// Arms the deadline and queues the request on the pool.
  void Dispatch(uint64_t conn_id, GterdRequest request,
                std::shared_ptr<RequestState> state);
  /// Worker-side: enqueue a serialized response and wake the loop.
  void PostResponse(uint64_t conn_id, std::string response);
  /// Loop-side: move queued responses into their connections' write
  /// buffers.
  void DrainCompletions();

  ResolutionService* service_;
  GterdServerOptions options_;
  ExecContext base_ctx_;
  ThreadPool* pool_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  // Loop-thread-only (Stop() touches it after joining the loop).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = wake eventfd

  TaskGroup requests_;
  std::mutex completion_mutex_;
  std::vector<std::pair<uint64_t, std::string>> completions_;

  std::atomic<uint64_t> connections_accepted_{0};

  friend class Session;
};

}  // namespace gter

#endif  // GTER_SERVER_SERVER_H_
