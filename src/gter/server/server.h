#ifndef GTER_SERVER_SERVER_H_
#define GTER_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gter/common/exec_context.h"
#include "gter/common/metrics.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"
#include "gter/common/trace.h"
#include "gter/server/access_log.h"
#include "gter/server/service.h"

namespace gter {

/// Options for GterdServer::Start.
struct GterdServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() — the test/bench self-hosting path).
  uint16_t port = 0;
  /// Address to bind. The daemon is a trusted-network component; the
  /// default keeps it loopback-only.
  std::string bind_address = "127.0.0.1";
  /// A request line longer than this closes the connection (after an
  /// InvalidArgument error frame): the line is unframeable, so the stream
  /// cannot be resynchronized.
  size_t max_frame_bytes = 1 << 20;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 means no deadline.
  int64_t default_deadline_ms = 0;
  /// Observability listener port: when >= 0 a second listener on the same
  /// epoll loop serves HTTP/1.0 GETs for `/metrics` (Prometheus text
  /// exposition), `/healthz`, and `/varz` (registry ToJson). 0 picks an
  /// ephemeral port (read back with metrics_port()); -1 disables.
  int metrics_port = -1;
  /// NDJSON access-log path (one line per completed request, appended and
  /// flushed); empty disables.
  std::string access_log_path;
  /// Requests whose work time exceeds this land in a bounded in-memory
  /// ring with their trace spans, dumped by the `debug_slow` method and
  /// logged at shutdown; 0 disables slow-request capture.
  int64_t slow_request_ms = 0;
  /// Window covered by the per-method `server/<method>/{queue,work}_us`
  /// sliding histograms (live percentiles in `/metrics` and `stats`).
  double sliding_window_seconds = 60.0;
};

/// One slow request captured for `debug_slow` (work time exceeded
/// `slow_request_ms`): identity, timing, outcome, and the request's trace
/// spans (recorded into a per-request recorder, so the spans are the
/// request's own).
struct SlowRequestRecord {
  uint64_t request_id = 0;
  std::string method;
  std::string status;
  double queue_us = 0.0;
  double work_us = 0.0;
  std::vector<TraceEvent> spans;
};

/// The gterd network front end: one epoll event-loop thread owning all
/// sockets, with request execution handed to a ThreadPool.
///
/// Structure (DESIGN.md §5):
///  * `Connection` — socket-level state: the fd and its read/write byte
///    buffers. Touched only by the event-loop thread.
///  * `Session` — protocol-level state riding on a connection: splits the
///    read buffer into newline-delimited frames, parses them, admits
///    requests, and tracks the CancelTokens of requests still in flight so
///    a dropped connection cancels its work.
///  * Workers never touch a Connection: a finished request posts its
///    serialized response to a completion queue and signals the loop via
///    an eventfd; the loop copies it into the connection's write buffer.
///
/// Deadlines: a request's CancelToken is armed when the request is
/// admitted (before it is queued), so `deadline_ms` covers queue time as
/// well as execution, and a request scheduled after its deadline answers
/// DeadlineExceeded rather than being silently dropped.
class GterdServer {
 public:
  /// Binds, listens, and starts the event-loop thread. `service` must
  /// outlive the server, as must everything `ctx` points at; requests run
  /// on `ctx.pool` (the process-default pool when null) and inherit the
  /// context's observability sinks.
  static Result<std::unique_ptr<GterdServer>> Start(
      ResolutionService* service, GterdServerOptions options,
      const ExecContext& ctx = DefaultExecContext());

  /// Stops the loop, cancels in-flight requests, waits for workers, and
  /// closes every socket. Idempotent; also run by the destructor.
  void Stop();

  ~GterdServer();

  GterdServer(const GterdServer&) = delete;
  GterdServer& operator=(const GterdServer&) = delete;

  /// The bound port (resolves the ephemeral-port case).
  uint16_t port() const { return port_; }

  /// The bound observability port (0 when the listener is disabled).
  uint16_t metrics_port() const { return metrics_port_; }

  /// Connections accepted over the server's lifetime (both listeners).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-request shared state: the cancel token lives here so it outlives
  /// both the owning Session (connection may drop mid-request) and the
  /// worker (session may cancel after completion, harmlessly). Identity
  /// and admission facts ride along for the access log.
  struct RequestState {
    CancelToken cancel;
    std::atomic<bool> done{false};
    uint64_t request_id = 0;
    uint64_t admit_ns = 0;   // TraceRecorder::NowNs() at admission
    uint64_t bytes_in = 0;   // request frame size on the wire
  };

  class Session {
   public:
    Session(GterdServer* server, uint64_t conn_id)
        : server_(server), conn_id_(conn_id) {}

    /// Consumes every complete frame in `*read_buffer`, appending
    /// immediate (parse-error) responses to `*out` and dispatching valid
    /// requests. Returns false when the connection must close after its
    /// write buffer drains (unframeable oversized line).
    bool ConsumeFrames(std::string* read_buffer, std::string* out);

    /// Trips the cancel token of every request still in flight (client
    /// disconnected or server stopping).
    void CancelInFlight();

   private:
    GterdServer* server_;
    uint64_t conn_id_;
    std::vector<std::shared_ptr<RequestState>> in_flight_;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string read_buffer;
    std::string write_buffer;
    /// EPOLLOUT currently registered (write buffer was not drainable).
    bool write_registered = false;
    /// Close once the write buffer drains; stop reading.
    bool closing = false;
    /// Accepted on the observability listener: speaks HTTP/1.0, has no
    /// Session, closes after one response.
    bool http = false;
    std::unique_ptr<Session> session;
  };

  GterdServer(ResolutionService* service, GterdServerOptions options,
              const ExecContext& ctx);

  Status Init();
  void Loop();
  void AcceptNew(int listen_fd, bool http);
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  /// Serves one buffered HTTP/1.0 GET (/metrics, /healthz, /varz) and
  /// marks the connection closing; waits for more bytes when the request
  /// head is still incomplete.
  void HandleHttp(Connection* conn);
  /// send() until EAGAIN or empty; (de)registers EPOLLOUT as needed and
  /// closes `closing` connections whose buffer drained.
  void FlushWrites(Connection* conn);
  void CloseConnection(uint64_t conn_id);

  /// Mints the request id, arms the deadline, and queues the request on
  /// the pool. `bytes_in` is the wire size of the request frame.
  void Dispatch(uint64_t conn_id, GterdRequest request,
                std::shared_ptr<RequestState> state, uint64_t bytes_in);
  /// Worker-side epilogue: sliding latency histograms, access-log line,
  /// slow-request capture.
  void ObserveRequest(const GterdRequest& request, const RequestState& state,
                      uint64_t work_start_ns, uint64_t done_ns,
                      const Status& status, uint64_t bytes_out,
                      int64_t deadline_ms, TraceRecorder* request_trace);
  /// Serves the bounded slow-request ring as the `debug_slow` result.
  JsonValue DumpSlowRing();
  /// Worker-side: enqueue a serialized response and wake the loop.
  void PostResponse(uint64_t conn_id, std::string response);
  /// Loop-side: move queued responses into their connections' write
  /// buffers.
  void DrainCompletions();

  /// Methods with dedicated sliding latency histograms; every other
  /// method shares the trailing "unknown" slot.
  static constexpr size_t kNumMethodSlots = 7;

  ResolutionService* service_;
  GterdServerOptions options_;
  ExecContext base_ctx_;
  ThreadPool* pool_;

  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  // Loop-thread-only (Stop() touches it after joining the loop).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 3;  // 0 = listen, 1 = wake eventfd, 2 = metrics

  TaskGroup requests_;
  std::mutex completion_mutex_;
  std::vector<std::pair<uint64_t, std::string>> completions_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> next_request_id_{0};
  std::chrono::steady_clock::time_point start_time_;

  /// The registry behind `/metrics`, `/varz`, and the sliding latency
  /// histograms: the context's registry when it has one, else an owned
  /// private one (so the observability listener always has something to
  /// serve).
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  /// Per-method-slot sliding histograms, resolved once at Init so the
  /// request epilogue records without name lookups.
  std::array<SlidingHistogram*, kNumMethodSlots> queue_us_slidings_{};
  std::array<SlidingHistogram*, kNumMethodSlots> work_us_slidings_{};

  std::unique_ptr<AccessLog> access_log_;

  /// Bounded ring of recent slow requests (guarded by slow_mutex_).
  static constexpr size_t kSlowRingCapacity = 32;
  std::mutex slow_mutex_;
  std::deque<SlowRequestRecord> slow_ring_;

  friend class Session;
};

}  // namespace gter

#endif  // GTER_SERVER_SERVER_H_
