#include "gter/server/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_map>

#include "gter/common/metrics.h"
#include "gter/common/timer.h"
#include "gter/common/trace.h"
#include "gter/core/clusterer.h"
#include "gter/text/tokenizer.h"

namespace gter {
namespace {

// ScopedTimer/trace names must be string literals (the sinks store the
// pointer), so the per-method span name goes through this table.
const char* MethodTimerName(const std::string& method) {
  if (method == "pair_score") return "server/pair_score";
  if (method == "resolve") return "server/resolve";
  if (method == "add_record") return "server/add_record";
  if (method == "stats") return "server/stats";
  if (method == "debug_sleep") return "server/debug_sleep";
  return "server/unknown_method";
}

Result<uint32_t> GetUint32Param(const JsonValue& params, const char* key) {
  const JsonValue* v = params.Find(key);
  if (v == nullptr || !v->is_number() ||
      v->number() != std::floor(v->number()) || v->number() < 0 ||
      v->number() > static_cast<double>(
                        std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument(std::string("param '") + key +
                                   "' must be an unsigned integer");
  }
  return static_cast<uint32_t>(v->number());
}

Result<std::string> GetStringParam(const JsonValue& params, const char* key) {
  const JsonValue* v = params.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(std::string("param '") + key +
                                   "' must be a string");
  }
  return v->string();
}

}  // namespace

ResolutionService::ResolutionService(Dataset dataset,
                                     ResolutionServiceOptions options)
    : dataset_(std::move(dataset)),
      options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()) {
  // Ingested records and query text must tokenize the way the training
  // corpus did.
  dataset_.set_tokenizer_options(options_.tokenizer);
}

Result<std::unique_ptr<ResolutionService>> ResolutionService::Create(
    Dataset dataset, ResolutionServiceOptions options, const ExecContext& ctx) {
  std::unique_ptr<ResolutionService> service(
      new ResolutionService(std::move(dataset), std::move(options)));
  GTER_RETURN_IF_ERROR(service->Train(ctx));
  return service;
}

Status ResolutionService::Train(const ExecContext& ctx) {
  if (options_.incremental) {
    // Incremental mode: the startup "training" is a ResolverState batch
    // build over the loaded dataset; every later add_record extends it.
    Stopwatch watch;
    state_ = std::make_unique<ResolverState>(&dataset_, options_.resolver);
    GTER_RETURN_IF_ERROR(state_->BuildBatch(ctx));
    train_seconds_ = watch.ElapsedSeconds();
    source_of_.clear();
    source_of_.reserve(dataset_.size());
    for (const Record& r : dataset_.records()) source_of_.push_back(r.source);
    return Status::OK();
  }
  FusionPipeline pipeline(dataset_, options_.fusion);
  Result<FusionResult> run = pipeline.Run(ctx);
  if (!run.ok()) return run.status();
  FusionResult result = std::move(run).value();

  term_weights_ = std::move(result.term_weights);
  term_weights_.resize(dataset_.vocabulary().size(), 0.0);
  pairs_ = pipeline.pairs();
  pair_scores_ = std::move(result.pair_scores);
  pair_probability_ = std::move(result.pair_probability);
  matches_ = std::move(result.matches);
  train_seconds_ = result.total_seconds;
  matched_count_ = 0;
  for (bool m : matches_) matched_count_ += m;

  // The entity partition comes from the pipeline's configured clustering
  // endgame (connected components by default — the historical closure).
  cluster_of_ = std::move(result.cluster_of);
  uint32_t num_clusters = 0;
  for (uint32_t c : cluster_of_) num_clusters = std::max(num_clusters, c + 1);
  cluster_members_.assign(num_clusters, {});
  for (RecordId r = 0; r < cluster_of_.size(); ++r) {
    cluster_members_[cluster_of_[r]].push_back(r);
  }
  inverted_ = dataset_.BuildInvertedIndex();
  inverted_.resize(dataset_.vocabulary().size());
  source_of_.clear();
  source_of_.reserve(dataset_.size());
  for (const Record& r : dataset_.records()) source_of_.push_back(r.source);
  return Status::OK();
}

size_t ResolutionService::num_records() const {
  std::shared_lock lock(mu_);
  return dataset_.size();
}

Result<JsonValue> ResolutionService::Handle(const GterdRequest& request,
                                            const ExecContext& ctx) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  ScopedTimer timer(ctx.metrics_or_ambient(), ctx.trace_or_ambient(),
                    MethodTimerName(request.method));
  Result<JsonValue> result = [&]() -> Result<JsonValue> {
    // Covers deadline-expired-while-queued: a request admitted before its
    // deadline but scheduled after it answers DeadlineExceeded here.
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    if (request.method == "pair_score") return PairScore(request.params, ctx);
    if (request.method == "resolve") return Resolve(request.params, ctx);
    if (request.method == "add_record") {
      return AddRecord(request.params, ctx);
    }
    if (request.method == "stats") return Stats(ctx);
    if (request.method == "debug_sleep") {
      auto ms = GetUint32Param(request.params, "ms");
      if (!ms.ok()) return ms.status();
      // Cooperative idle: poll cancellation every millisecond so a
      // deadline or a dropped connection unwinds promptly.
      const auto end = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms.value());
      while (std::chrono::steady_clock::now() < end) {
        GTER_RETURN_IF_ERROR(ctx.CheckCancel());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      JsonValue out = JsonValue::MakeObject();
      out.Set("slept_ms", JsonValue::MakeNumber(ms.value()));
      return out;
    }
    return Status::NotFound("unknown method '" + request.method + "'");
  }();
  if (!result.ok()) requests_failed_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

double ResolutionService::SharedTermWeight(const std::vector<TermId>& a,
                                           const std::vector<TermId>& b) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      sum += WeightsView()[a[i]];
      ++i;
      ++j;
    }
  }
  return sum;
}

Result<JsonValue> ResolutionService::PairScore(const JsonValue& params,
                                               const ExecContext& ctx) const {
  auto a = GetUint32Param(params, "a");
  if (!a.ok()) return a.status();
  auto b = GetUint32Param(params, "b");
  if (!b.ok()) return b.status();
  GTER_RETURN_IF_ERROR(ctx.CheckCancel());

  std::shared_lock lock(mu_);
  if (a.value() >= dataset_.size() || b.value() >= dataset_.size()) {
    return Status::OutOfRange("record id out of range (dataset has " +
                              std::to_string(dataset_.size()) + " records)");
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("a", JsonValue::MakeNumber(a.value()));
  out.Set("b", JsonValue::MakeNumber(b.value()));
  PairId p = PairsView().Find(a.value(), b.value());
  if (p != kInvalidPairId) {
    // Candidate pair: serve the model's score verbatim (live in
    // incremental mode, fusion-trained otherwise).
    out.Set("score", JsonValue::MakeNumber(ScoresView()[p]));
    out.Set("probability", JsonValue::MakeNumber(ProbabilityView()[p]));
    out.Set("match", JsonValue::MakeBool(MatchesView()[p]));
    out.Set("in_candidate_space", JsonValue::MakeBool(true));
  } else {
    // Outside the candidate space (no shared term at training time, or a
    // record ingested after training): score online from term weights.
    out.Set("score",
            JsonValue::MakeNumber(SharedTermWeight(
                dataset_.record(a.value()).terms,
                dataset_.record(b.value()).terms)));
    out.Set("probability", JsonValue::MakeNull());
    out.Set("match", JsonValue::MakeBool(false));
    out.Set("in_candidate_space", JsonValue::MakeBool(false));
  }
  return out;
}

Result<JsonValue> ResolutionService::Resolve(const JsonValue& params,
                                             const ExecContext& ctx) const {
  auto text = GetStringParam(params, "text");
  if (!text.ok()) return text.status();
  size_t top_k = 1;
  if (params.Find("top_k") != nullptr) {
    auto k = GetUint32Param(params, "top_k");
    if (!k.ok()) return k.status();
    if (k.value() == 0 || k.value() > 1000) {
      return Status::InvalidArgument("param 'top_k' must be in [1, 1000]");
    }
    top_k = k.value();
  }
  // Optional clustering-endgame override, validated before any work so an
  // unknown name answers InvalidArgument even for queries with no matches.
  std::optional<ClustererKind> endgame;
  if (params.Find("clusterer") != nullptr) {
    auto name = GetStringParam(params, "clusterer");
    if (!name.ok()) return name.status();
    auto kind = ParseClustererKind(name.value());
    if (!kind.ok()) return kind.status();
    endgame = kind.value();
  }

  std::shared_lock lock(mu_);

  // Re-cluster the trained probabilities under the request's context: the
  // clusterer polls `ctx`, so a per-request deadline fires mid-run and the
  // status propagates out as DeadlineExceeded. Records ingested after
  // training have no candidate pairs and come out as singletons.
  std::vector<uint32_t> fresh_cluster_of;
  if (endgame.has_value()) {
    ClusterProblem problem;
    problem.num_records = dataset_.size();
    problem.pairs = &PairsView();
    problem.pair_probability = &ProbabilityView();
    problem.eta = Eta();
    if (dataset_.num_sources() > 1) problem.source_of = &source_of_;
    Result<Clustering> fresh =
        MakeClusterer(*endgame, options_.fusion.clusterer_options)
            ->Cluster(problem, ctx);
    if (!fresh.ok()) return fresh.status();
    fresh_cluster_of = std::move(fresh).value().cluster_of;
  }
  // Query terms: tokenize like the corpus, keep the sorted unique ids that
  // exist in the trained vocabulary.
  std::vector<TermId> query_terms;
  for (const std::string& token : Tokenize(text.value(), options_.tokenizer)) {
    TermId t = dataset_.vocabulary().Lookup(token);
    if (t != kInvalidTermId) query_terms.push_back(t);
  }
  std::sort(query_terms.begin(), query_terms.end());
  query_terms.erase(std::unique(query_terms.begin(), query_terms.end()),
                    query_terms.end());

  // Accumulate s(q, r) = Σ_{t shared} x_t over the inverted index, plus
  // the raw overlap count. Zero-weight terms (singletons never reinforced
  // by a candidate pair) still nominate candidates: their postings are
  // short by construction, and an exact-text query must find its record
  // even when every distinctive term is a singleton.
  struct Candidate {
    double score = 0.0;
    uint32_t overlap = 0;
  };
  std::unordered_map<RecordId, Candidate> scores;
  size_t postings_since_poll = 0;
  for (TermId t : query_terms) {
    GTER_RETURN_IF_ERROR(ctx.CheckCancel());
    const double w = WeightsView()[t];
    for (RecordId r : InvertedView()[t]) {
      Candidate& c = scores[r];
      c.score += w;
      ++c.overlap;
      if (++postings_since_poll >= 4096) {
        postings_since_poll = 0;
        GTER_RETURN_IF_ERROR(ctx.CheckCancel());
      }
    }
  }

  // Deterministic ranking: learned score descending, then term overlap
  // descending (separates zero-score candidates), then record id.
  struct Ranked {
    double score;
    uint32_t overlap;
    RecordId record;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(scores.size());
  for (const auto& [r, c] : scores) {
    ranked.push_back({c.score, c.overlap, r});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& x, const Ranked& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.overlap != y.overlap) return x.overlap > y.overlap;
    return x.record < y.record;
  });
  if (ranked.size() > top_k) ranked.resize(top_k);

  JsonValue out = JsonValue::MakeObject();
  out.Set("query_terms", JsonValue::MakeNumber(query_terms.size()));
  out.Set("num_candidates", JsonValue::MakeNumber(scores.size()));
  JsonValue top = JsonValue::MakeArray();
  for (const Ranked& entry_data : ranked) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("record", JsonValue::MakeNumber(entry_data.record));
    entry.Set("score", JsonValue::MakeNumber(entry_data.score));
    entry.Set("overlap", JsonValue::MakeNumber(entry_data.overlap));
    top.Append(std::move(entry));
  }
  out.Set("top", std::move(top));
  if (endgame.has_value()) {
    out.Set("clusterer",
            JsonValue::MakeString(ClustererKindName(*endgame)));
  }
  if (ranked.empty()) {
    out.Set("best", JsonValue::MakeNull());
    out.Set("clique", JsonValue::MakeArray());
    return out;
  }
  const RecordId best = ranked.front().record;
  // A record can lack a cluster label only in incremental mode, when a
  // cancelled ingest left the decision pass pending: serve it as a
  // singleton until the next converge labels it.
  const std::vector<uint32_t>& labels =
      endgame.has_value() ? fresh_cluster_of : ClusterOfView();
  JsonValue best_obj = JsonValue::MakeObject();
  best_obj.Set("record", JsonValue::MakeNumber(best));
  best_obj.Set("score", JsonValue::MakeNumber(ranked.front().score));
  JsonValue clique = JsonValue::MakeArray();
  if (best >= labels.size()) {
    best_obj.Set("cluster", JsonValue::MakeNull());
    clique.Append(JsonValue::MakeNumber(best));
  } else {
    const uint32_t best_cluster = labels[best];
    best_obj.Set("cluster", JsonValue::MakeNumber(best_cluster));
    // The matching clique: every record resolved to the same entity as
    // the best match (including the best match itself).
    if (endgame.has_value()) {
      for (RecordId r = 0; r < labels.size(); ++r) {
        if (labels[r] == best_cluster) {
          clique.Append(JsonValue::MakeNumber(r));
        }
      }
    } else {
      for (RecordId member : ClusterMembersView()[best_cluster]) {
        clique.Append(JsonValue::MakeNumber(member));
      }
    }
  }
  best_obj.Set("text", JsonValue::MakeString(dataset_.record(best).raw_text));
  out.Set("best", std::move(best_obj));
  out.Set("clique", std::move(clique));
  return out;
}

Result<JsonValue> ResolutionService::AddRecord(const JsonValue& params,
                                               const ExecContext& ctx) {
  auto text = GetStringParam(params, "text");
  if (!text.ok()) return text.status();
  uint32_t source = 0;
  if (params.Find("source") != nullptr) {
    auto s = GetUint32Param(params, "source");
    if (!s.ok()) return s.status();
    source = s.value();
  }

  std::unique_lock lock(mu_);
  if (source >= dataset_.num_sources()) {
    return Status::OutOfRange("source " + std::to_string(source) +
                              " out of range (dataset has " +
                              std::to_string(dataset_.num_sources()) +
                              " sources)");
  }
  JsonValue out = JsonValue::MakeObject();
  if (state_ != nullptr) {
    // Incremental mode: a real ingest — O(neighborhood) structural update
    // plus a dirty-region re-ITER under the request's deadline. The
    // response reports the cluster the record resolved into.
    Result<IngestStats> ingest = state_->Ingest(source, text.value(), ctx);
    if (!ingest.ok()) return ingest.status();
    const IngestStats& stats = ingest.value();
    source_of_.push_back(source);
    records_added_.fetch_add(1, std::memory_order_relaxed);
    out.Set("record", JsonValue::MakeNumber(stats.record));
    out.Set("cluster", JsonValue::MakeNumber(stats.cluster));
    out.Set("cluster_size", JsonValue::MakeNumber(stats.cluster_size));
    out.Set("new_terms", JsonValue::MakeNumber(stats.new_terms));
    out.Set("new_pairs", JsonValue::MakeNumber(stats.new_pairs));
    out.Set("sweeps", JsonValue::MakeNumber(stats.sweeps));
  } else {
    const size_t vocab_before = dataset_.vocabulary().size();
    RecordId id = dataset_.AddRecord(source, text.value());
    // Terms interned by this record get zero weight until the next
    // training run; the record scores through the terms it shares with
    // the trained vocabulary.
    term_weights_.resize(dataset_.vocabulary().size(), 0.0);
    inverted_.resize(dataset_.vocabulary().size());
    for (TermId t : dataset_.record(id).terms) {
      inverted_[t].push_back(id);  // id is the largest, so order is kept
    }
    const uint32_t cluster = static_cast<uint32_t>(cluster_members_.size());
    cluster_of_.push_back(cluster);
    cluster_members_.push_back({id});
    source_of_.push_back(source);
    records_added_.fetch_add(1, std::memory_order_relaxed);
    out.Set("record", JsonValue::MakeNumber(id));
    out.Set("cluster", JsonValue::MakeNumber(cluster));
    out.Set("cluster_size", JsonValue::MakeNumber(1));
    out.Set("new_terms", JsonValue::MakeNumber(dataset_.vocabulary().size() -
                                               vocab_before));
  }
  // Post-ingest sizes, so a streaming client tracks dataset growth without
  // a stats round-trip.
  out.Set("records", JsonValue::MakeNumber(dataset_.size()));
  out.Set("vocabulary_terms",
          JsonValue::MakeNumber(dataset_.vocabulary().size()));
  return out;
}

namespace {

/// Percentile triple for one sliding-histogram snapshot.
JsonValue PercentilesJson(const Histogram& h) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("p50", JsonValue::MakeNumber(h.Quantile(0.50)));
  out.Set("p95", JsonValue::MakeNumber(h.Quantile(0.95)));
  out.Set("p99", JsonValue::MakeNumber(h.Quantile(0.99)));
  return out;
}

}  // namespace

JsonValue ResolutionService::Stats(const ExecContext& ctx) const {
  std::shared_lock lock(mu_);
  JsonValue out = JsonValue::MakeObject();
  out.Set("uptime_s",
          JsonValue::MakeNumber(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    start_time_)
                                    .count()));
  out.Set("records", JsonValue::MakeNumber(dataset_.size()));
  out.Set("vocabulary_terms",
          JsonValue::MakeNumber(dataset_.vocabulary().size()));
  out.Set("candidate_pairs", JsonValue::MakeNumber(PairsView().size()));
  out.Set("matched_pairs", JsonValue::MakeNumber(MatchedCountView()));
  out.Set("cliques", JsonValue::MakeNumber(ClusterMembersView().size()));
  out.Set("train_seconds", JsonValue::MakeNumber(train_seconds_));
  out.Set("incremental", JsonValue::MakeBool(state_ != nullptr));
  if (state_ != nullptr) {
    // Ingest health of the incremental engine (DESIGN.md §4g). The same
    // counters flow into the request-context MetricsRegistry, so gterd's
    // /metrics exposes them to Prometheus as ingest_* series.
    JsonValue ingest = JsonValue::MakeObject();
    ingest.Set("records_ingested",
               JsonValue::MakeNumber(state_->records_ingested()));
    ingest.Set("dirty_reiter_runs",
               JsonValue::MakeNumber(state_->dirty_reiter_runs()));
    ingest.Set("full_resweeps",
               JsonValue::MakeNumber(state_->full_resweeps()));
    ingest.Set("last_converge_sweeps",
               JsonValue::MakeNumber(state_->last_converge_sweeps()));
    ingest.Set("pending_dirty",
               JsonValue::MakeBool(state_->has_pending_dirty()));
    ingest.Set("state_version", JsonValue::MakeNumber(state_->version()));
    out.Set("ingest", std::move(ingest));
  }
  out.Set("records_added", JsonValue::MakeNumber(records_added_.load(
                               std::memory_order_relaxed)));
  out.Set("requests_total", JsonValue::MakeNumber(requests_total_.load(
                                std::memory_order_relaxed)));
  out.Set("requests_failed", JsonValue::MakeNumber(requests_failed_.load(
                                 std::memory_order_relaxed)));
  // Live per-method latency percentiles over the server's sliding window
  // (the same snapshots `/metrics` exposes). The server installs its
  // registry in every request context, so this resolves to the sliding
  // histograms its dispatch epilogue records into; a bare service (unit
  // tests, embedders without a server) just emits an empty object.
  MetricsRegistry* registry = ctx.metrics_or_ambient();
  JsonValue live = JsonValue::MakeObject();
  if (registry != nullptr) {
    static constexpr const char* kMethods[] = {
        "pair_score", "resolve",    "add_record", "stats",
        "debug_sleep", "debug_slow", "unknown",
    };
    for (const char* method : kMethods) {
      const std::string base = std::string("server/") + method;
      const Histogram queue = registry->SlidingSnapshot(base + "/queue_us");
      const Histogram work = registry->SlidingSnapshot(base + "/work_us");
      if (queue.count == 0 && work.count == 0) continue;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("count", JsonValue::MakeNumber(
                             static_cast<double>(work.count)));
      entry.Set("queue_us", PercentilesJson(queue));
      entry.Set("work_us", PercentilesJson(work));
      live.Set(method, std::move(entry));
    }
  }
  out.Set("live", std::move(live));
  return out;
}

}  // namespace gter
