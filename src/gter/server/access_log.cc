#include "gter/server/access_log.h"

#include <chrono>
#include <cstring>

namespace gter {
namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendMicros(std::string* out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  *out += buf;
}

}  // namespace

Result<std::unique_ptr<AccessLog>> AccessLog::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("cannot open access log '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<AccessLog>(new AccessLog(f));
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fclose(file_);
}

void AccessLog::Write(const Entry& entry) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const int64_t ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();

  std::string line = "{\"ts_ms\": " + std::to_string(ts_ms) +
                     ", \"request_id\": " + std::to_string(entry.request_id) +
                     ", \"method\": \"";
  AppendEscaped(&line, entry.method);
  line += "\", \"status\": \"";
  AppendEscaped(&line, entry.status);
  line += "\", \"bytes_in\": " + std::to_string(entry.bytes_in) +
          ", \"bytes_out\": " + std::to_string(entry.bytes_out) +
          ", \"queue_us\": ";
  AppendMicros(&line, entry.queue_us);
  line += ", \"work_us\": ";
  AppendMicros(&line, entry.work_us);
  if (entry.deadline_ms > 0) {
    line += ", \"deadline_ms\": " + std::to_string(entry.deadline_ms) +
            ", \"slack_ms\": ";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", entry.slack_ms);
    line += buf;
  }
  if (!entry.clusterer.empty()) {
    line += ", \"clusterer\": \"";
    AppendEscaped(&line, entry.clusterer);
    line += "\"";
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace gter
