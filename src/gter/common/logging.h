#ifndef GTER_COMMON_LOGGING_H_
#define GTER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gter {

/// Log severity, ordered. Messages below the active level are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity emitted to stderr. Default is kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Parses a `--log_level` flag value (debug|info|warning|warn|error,
/// case-insensitive). Returns false (and leaves `*out` alone) for anything
/// else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

namespace internal {

/// Stream-style single-message logger; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GTER_LOG(severity)                                        \
  ::gter::internal::LogMessage(::gter::LogLevel::k##severity,     \
                               __FILE__, __LINE__)

}  // namespace gter

#endif  // GTER_COMMON_LOGGING_H_
