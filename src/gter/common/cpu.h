#ifndef GTER_COMMON_CPU_H_
#define GTER_COMMON_CPU_H_

#include <string>
#include <string_view>

namespace gter {

class MetricsRegistry;
class TraceRecorder;

/// Runtime CPU feature detection and SIMD dispatch control (see DESIGN.md
/// §"SIMD dispatch & determinism contract").
///
/// Every vectorized kernel in the compute core (packed GEMM, masked CSR
/// product, ITER gather sweeps, bit-parallel Levenshtein) keeps its scalar
/// twin compiled in and selects an implementation at call time from the
/// process-wide `ActiveSimdLevel()`. The scalar path is the determinism
/// reference: forcing `--simd=scalar` reproduces the exact pre-SIMD
/// numerics, and the differential tests (ctest label `simd`) pin each
/// dispatched kernel against it.

/// CPUID-reported ISA features relevant to the compute core. `sse2` is the
/// x86-64 baseline; non-x86 builds report everything false. The avx512*
/// flags are only reported true when the OS saves the full ZMM/opmask
/// state (XCR0 bits 5-7), mirroring the YMM check for avx/avx2.
struct CpuFeatures {
  bool sse2 = false;
  bool sse42 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512dq = false;
  bool avx512vl = false;
  bool avx512vpopcntdq = false;
};

/// Detected features of the executing CPU (cached after the first call).
const CpuFeatures& DetectCpuFeatures();

/// Human-readable "+"-joined feature list, e.g. "sse2+sse4.2+avx+fma+avx2"
/// — the value emitted as trace metadata and printed by the CLI.
std::string CpuFeatureString();

/// Dispatch tiers, ordered: a level is usable iff every lower level is.
/// kAvx2 implies FMA (the packed GEMM microkernel needs both). kAvx512
/// requires the F+BW+DQ+VL+VPOPCNTDQ feature set the *_avx512.cc TUs are
/// compiled against — a host with only avx512f (e.g. Skylake-X without
/// VPOPCNTDQ) clamps to kAvx2 rather than risking an illegal instruction
/// in a kernel tail.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Highest level this binary can run: the minimum of what the CPU reports
/// and what the build compiled in (GTER_HAVE_AVX2 / GTER_HAVE_AVX512).
/// Cached.
SimdLevel DetectSimdLevel();

/// The process-wide level every dispatched kernel consults. Starts at
/// `DetectSimdLevel()`; `SetSimdLevel` overrides it (clamped to the
/// detected maximum, so requesting avx512 on an avx2-only machine silently
/// degrades instead of crashing on an illegal instruction).
SimdLevel ActiveSimdLevel();
void SetSimdLevel(SimdLevel level);

/// Parses "scalar" | "avx2" | "avx512" | "auto" (auto → DetectSimdLevel()).
/// Returns false on anything else.
bool ParseSimdLevel(std::string_view text, SimdLevel* level);

/// Canonical flag spelling of `level` ("scalar", "avx2", "avx512").
const char* SimdLevelName(SimdLevel level);

/// RAII override of the active level for a scope — the harness the
/// differential tests and the per-level bench variants use to force one
/// path. Restores the previous level on destruction. Like the level itself
/// this is process-global; install from the coordinating thread only.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

/// Records which compute path this run executed on: detected features and
/// the active level as gauges (`cpu/avx2`, `cpu/fma`, `simd/level`, ... —
/// 0/1 flags, level as its enum value) into `metrics`, and as "M"
/// process-label metadata (`simd=avx2 cpu=sse2+...`) into `trace`. Either
/// sink may be null. The CLI and every bench binary call this right after
/// installing their registry/recorder, so run reports and Perfetto traces
/// say which path produced them.
void EmitCpuInfo(MetricsRegistry* metrics, TraceRecorder* trace);

}  // namespace gter

#endif  // GTER_COMMON_CPU_H_
