#include "gter/common/cpu.h"

#include <atomic>

#include "gter/common/metrics.h"
#include "gter/common/trace.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define GTER_CPU_X86 1
#include <cpuid.h>
#endif

namespace gter {
namespace {

#if GTER_CPU_X86
CpuFeatures DetectViaCpuid() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.sse2 = (edx & (1u << 26)) != 0;
    f.sse42 = (ecx & (1u << 20)) != 0;
    f.avx = (ecx & (1u << 28)) != 0;
    f.fma = (ecx & (1u << 12)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
    f.avx512dq = (ebx & (1u << 17)) != 0;
    f.avx512bw = (ebx & (1u << 30)) != 0;
    f.avx512vl = (ebx & (1u << 31)) != 0;
    f.avx512vpopcntdq = (ecx & (1u << 14)) != 0;
  }
  // AVX/AVX2 registers are only usable when the OS saves the YMM state
  // (XSAVE/OSXSAVE + XCR0 bits 1-2); without that, executing a VEX
  // instruction faults even though CPUID advertises it. AVX-512 further
  // needs the opmask/ZMM_Hi256/Hi16_ZMM state (XCR0 bits 5-7).
  const bool osxsave = [&] {
    unsigned int a = 0, b = 0, c = 0, d = 0;
    if (__get_cpuid(1, &a, &b, &c, &d) == 0) return false;
    return (c & (1u << 27)) != 0;
  }();
  unsigned int xcr0_lo = 0, xcr0_hi = 0;
  if (osxsave) {
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  }
  const bool ymm_enabled = osxsave && (xcr0_lo & 0x6) == 0x6;
  const bool zmm_enabled = ymm_enabled && (xcr0_lo & 0xe0) == 0xe0;
  if (!ymm_enabled) {
    f.avx = f.fma = f.avx2 = false;
  }
  if (!zmm_enabled) {
    f.avx512f = f.avx512dq = f.avx512bw = f.avx512vl = f.avx512vpopcntdq =
        false;
  }
  return f;
}
#endif  // GTER_CPU_X86

/// The active level. Relaxed loads are enough: kernels read the level once
/// at entry on the calling thread, and the install points (flag parsing,
/// ScopedSimdLevel in tests/bench) happen-before the work they configure.
std::atomic<int> g_active_level{-1};  // -1 = not yet initialized

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
#if GTER_CPU_X86
  static const CpuFeatures features = DetectViaCpuid();
#else
  static const CpuFeatures features = {};
#endif
  return features;
}

std::string CpuFeatureString() {
  const CpuFeatures& f = DetectCpuFeatures();
  std::string out;
  auto append = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  append(f.sse2, "sse2");
  append(f.sse42, "sse4.2");
  append(f.avx, "avx");
  append(f.fma, "fma");
  append(f.avx2, "avx2");
  append(f.avx512f, "avx512f");
  append(f.avx512bw, "avx512bw");
  append(f.avx512dq, "avx512dq");
  append(f.avx512vl, "avx512vl");
  append(f.avx512vpopcntdq, "avx512vpopcntdq");
  if (out.empty()) out = "scalar-only";
  return out;
}

SimdLevel DetectSimdLevel() {
#if GTER_HAVE_AVX2 || GTER_HAVE_AVX512
  const CpuFeatures& f = DetectCpuFeatures();
#if GTER_HAVE_AVX512
  // The avx512 TUs use F (gather/scatter, 8×double math), BW (byte
  // compares in the string kernels), DQ/VL (mask loads and 256-bit mixes),
  // and VPOPCNTDQ (the Levenshtein score flush); all five must be present.
  if (f.avx2 && f.fma && f.avx512f && f.avx512bw && f.avx512dq &&
      f.avx512vl && f.avx512vpopcntdq) {
    return SimdLevel::kAvx512;
  }
#endif
#if GTER_HAVE_AVX2
  if (f.avx2 && f.fma) return SimdLevel::kAvx2;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectSimdLevel());
    // Racing initializers write the same value, so no CAS needed.
    g_active_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

void SetSimdLevel(SimdLevel level) {
  if (level > DetectSimdLevel()) level = DetectSimdLevel();
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool ParseSimdLevel(std::string_view text, SimdLevel* level) {
  if (text == "scalar") {
    *level = SimdLevel::kScalar;
    return true;
  }
  if (text == "avx2") {
    *level = SimdLevel::kAvx2;
    return true;
  }
  if (text == "avx512") {
    *level = SimdLevel::kAvx512;
    return true;
  }
  if (text == "auto") {
    *level = DetectSimdLevel();
    return true;
  }
  return false;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level)
    : previous_(ActiveSimdLevel()) {
  SetSimdLevel(level);
}

ScopedSimdLevel::~ScopedSimdLevel() { SetSimdLevel(previous_); }

void EmitCpuInfo(MetricsRegistry* metrics, TraceRecorder* trace) {
  const CpuFeatures& f = DetectCpuFeatures();
  const SimdLevel level = ActiveSimdLevel();
  if (metrics != nullptr) {
    metrics->SetGauge("cpu/sse2", f.sse2 ? 1.0 : 0.0);
    metrics->SetGauge("cpu/sse42", f.sse42 ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx", f.avx ? 1.0 : 0.0);
    metrics->SetGauge("cpu/fma", f.fma ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx2", f.avx2 ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx512f", f.avx512f ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx512bw", f.avx512bw ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx512dq", f.avx512dq ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx512vl", f.avx512vl ? 1.0 : 0.0);
    metrics->SetGauge("cpu/avx512vpopcntdq", f.avx512vpopcntdq ? 1.0 : 0.0);
    metrics->SetGauge("simd/level", static_cast<double>(level));
  }
  if (trace != nullptr) {
    trace->AddProcessLabel(std::string("simd=") + SimdLevelName(level));
    trace->AddProcessLabel("cpu=" + CpuFeatureString());
  }
}

}  // namespace gter
