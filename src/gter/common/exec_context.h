#ifndef GTER_COMMON_EXEC_CONTEXT_H_
#define GTER_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

#include "gter/common/cpu.h"
#include "gter/common/status.h"

namespace gter {

class MetricsRegistry;
class ThreadPool;
class TraceRecorder;

/// Cooperative cancellation flag with an optional monotonic deadline
/// (see DESIGN.md §4e).
///
/// One token is shared between a controller (a SIGINT handler, a serving
/// timeout, a test) and any number of pipeline threads. Stages poll it at
/// natural work boundaries — per ITER sweep, per RSS pair, per GEMM row
/// block, per fusion round, per clustering restart — and unwind with
/// `Status::Cancelled` / `Status::DeadlineExceeded` when it has tripped.
/// Polling never changes what a stage computes: an uncancelled run is
/// byte-for-byte identical to one executed without a token.
///
/// All state is in std::atomics, so every method is thread-safe, and
/// `Cancel()` in particular is async-signal-safe (a single relaxed store —
/// callable from a SIGINT handler).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token. Idempotent, async-signal-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a monotonic deadline; the token trips on the first poll at or
  /// after `deadline`.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
  }

  /// Arms a deadline `seconds` from now.
  void SetTimeout(double seconds) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(
                    static_cast<int64_t>(seconds * 1e9)));
  }

  /// Test hook: trips the token on the (n+1)-th poll from now — the next
  /// `n` polls still pass. `CancelAfterPolls(0)` trips the very next poll.
  /// Drives the randomized cancel-point property tests.
  void CancelAfterPolls(int64_t n) {
    polls_left_.store(n, std::memory_order_relaxed);
    hook_armed_.store(true, std::memory_order_relaxed);
  }

  /// Polls the token: checks the flag, the poll-countdown hook, and the
  /// deadline (the clock is only read when a deadline is armed). Returns
  /// true once tripped.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (hook_armed_.load(std::memory_order_relaxed) &&
        polls_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
                .count() >= deadline) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Polls and converts: OK while running, `DeadlineExceeded` when the
  /// armed deadline tripped the token, `Cancelled` otherwise.
  Status Check() const {
    if (!cancelled()) return Status::OK();
    if (deadline_hit_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::Cancelled("cancelled");
  }

  /// Rearms a tripped token for a fresh run (cancel-then-rerun tests, CLI
  /// reuse). Not safe concurrently with polls.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_hit_.store(false, std::memory_order_relaxed);
    hook_armed_.store(false, std::memory_order_relaxed);
    polls_left_.store(-1, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> hook_armed_{false};
  mutable std::atomic<int64_t> polls_left_{-1};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

/// True for the two codes a tripped CancelToken produces — the "stop was
/// requested" outcomes, as opposed to real failures.
inline bool IsCancellation(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Execution context for one pipeline run: worker pool, observability
/// sinks, compute-kernel level, and cancellation — everything that used to
/// be smeared across per-stage options structs and process-global installs.
///
/// Plain aggregate; cheap to copy. All fields default to "ambient": a null
/// pool means sequential execution, null metrics/trace fall back to the
/// installed thread-local/process-global sinks, an unset simd level means
/// the process-global `ActiveSimdLevel()`, and a null cancel token makes
/// every poll a single pointer test (the zero-cost uncancellable path).
///
/// Stage entry points take `const ExecContext& = DefaultExecContext()`;
/// options structs carry only algorithm parameters.
struct ExecContext {
  ThreadPool* pool = nullptr;
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  std::optional<SimdLevel> simd;
  CancelToken* cancel = nullptr;

  /// Serving-side request id minted at admission (0 outside a server
  /// request). Rides the context so handlers, access-log lines, and
  /// slow-request trace dumps all agree on the id without re-plumbing.
  uint64_t request_id = 0;

  /// One cancellation poll: false (and zero work beyond a pointer test)
  /// when no token is attached.
  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }

  /// Poll-and-convert for `GTER_RETURN_IF_ERROR(ctx.CheckCancel())` at
  /// stage boundaries.
  Status CheckCancel() const {
    return cancel != nullptr ? cancel->Check() : Status::OK();
  }

  /// Explicit registry if set, else the thread-local installed one, else
  /// nullptr. Resolve once at stage entry (pool workers do not inherit the
  /// thread-local install).
  MetricsRegistry* metrics_or_ambient() const;

  /// Explicit recorder if set, else the process-global installed one.
  TraceRecorder* trace_or_ambient() const;

  /// Explicit level if set, else the process-global active level. Resolve
  /// once at kernel-dispatch time.
  SimdLevel simd_level() const;

  /// Context carrying only a worker pool — the common test/bench shape.
  static ExecContext WithPool(ThreadPool* pool) {
    ExecContext ctx;
    ctx.pool = pool;
    return ctx;
  }

  /// Context carrying only a cancel token.
  static ExecContext WithCancel(CancelToken* token) {
    ExecContext ctx;
    ctx.cancel = token;
    return ctx;
  }
};

/// The ambient no-op context: sequential, ambient observability, active
/// SIMD level, not cancellable. Default argument of every stage entry
/// point.
const ExecContext& DefaultExecContext();

}  // namespace gter

#endif  // GTER_COMMON_EXEC_CONTEXT_H_
