#ifndef GTER_COMMON_PROM_H_
#define GTER_COMMON_PROM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gter/common/metrics.h"

namespace gter {

/// Prometheus text-exposition (format 0.0.4) rendering of a
/// MetricsRegistry, plus the scrape-side parsing helpers bench_loadgen
/// and the tests use to read percentiles back out of `/metrics`.
///
/// Mapping from registry sections to Prometheus families:
///   counters           → `counter`  (one sample)
///   gauges             → `gauge`    (one sample)
///   timers             → two `counter` families: `<name>_count` and
///                        `<name>_seconds_total`
///   histograms+sliding → `histogram`: cumulative `<name>_bucket{le=...}`
///                        (sparse, ascending, `+Inf` == `_count`),
///                        `<name>_sum`, `<name>_count`
///
/// Internal slugs (`server/resolve/work_us`) become Prometheus names by
/// `PromSanitizeName` with a registry-wide prefix (default `gter_`). A
/// post-sanitization collision gets a numeric suffix plus an explanatory
/// comment line — `tools/check_metrics_names.sh` lints the declared slug
/// set so this never fires in practice.

/// Maps one internal metric slug to a valid Prometheus metric name:
/// `/` → `_`, any character outside `[a-zA-Z0-9_:]` → `_`, and a leading
/// digit gets a `_` prepended. The result matches
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` for any non-empty input.
std::string PromSanitizeName(std::string_view name);

/// Renders every metric in `registry` (sliding histograms as windowed
/// snapshots) as Prometheus text exposition. Each family is emitted as
/// `# HELP`, `# TYPE`, then its samples; families appear in sorted
/// section/name order, so output is deterministic for a given state.
std::string RenderPrometheusText(const MetricsRegistry& registry,
                                 std::string_view prefix = "gter_");

/// One histogram family parsed back out of exposition text.
struct PromParsedHistogram {
  /// Ascending cumulative (upper_bound, cumulative_count) pairs; the
  /// final `+Inf` bucket is represented with an infinite upper bound.
  std::vector<std::pair<double, uint64_t>> cumulative;
  double sum = 0.0;
  uint64_t count = 0;
};

/// Extracts histogram family `name` (the full exposed name, prefix
/// included) from exposition `text`. Returns false when the family is
/// absent or malformed.
bool FindPromHistogram(std::string_view text, std::string_view name,
                       PromParsedHistogram* out);

/// Estimated q-quantile from a parsed cumulative histogram, linearly
/// interpolated inside the bucket holding the q·count-th observation
/// (the scrape-side mirror of `Histogram::Quantile`, minus the min/max
/// envelope — exposition text does not carry one). Returns 0 when empty.
double PromHistogramQuantile(const PromParsedHistogram& h, double q);

}  // namespace gter

#endif  // GTER_COMMON_PROM_H_
