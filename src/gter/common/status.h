#ifndef GTER_COMMON_STATUS_H_
#define GTER_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace gter {

/// Error category for a failed operation. Mirrors the coarse categories used
/// by RocksDB/Arrow style status objects; library code never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holder of either a value of type T or an error Status. Accessing the
/// value of an errored Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (precondition violations), not for recoverable failures.
#define GTER_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::gter::internal::CheckFailed(__FILE__, __LINE__, #cond, "");  \
    }                                                                \
  } while (0)

/// Aborts with the status message when `status_expr` is not OK.
#define GTER_CHECK_OK(status_expr)                                        \
  do {                                                                    \
    ::gter::Status _gter_s = (status_expr);                               \
    if (!_gter_s.ok()) {                                                  \
      ::gter::internal::CheckFailed(__FILE__, __LINE__, #status_expr,     \
                                    _gter_s.ToString());                  \
    }                                                                     \
  } while (0)

/// Propagates a non-OK status to the caller.
#define GTER_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::gter::Status _gter_s = (expr);        \
    if (!_gter_s.ok()) return _gter_s;      \
  } while (0)

}  // namespace gter

#endif  // GTER_COMMON_STATUS_H_
