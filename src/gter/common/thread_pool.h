#ifndef GTER_COMMON_THREAD_POOL_H_
#define GTER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "gter/common/status.h"

namespace gter {

class ThreadPool;

/// Completion handle for a batch of related tasks.
///
/// Each group carries its own pending-task counter, so waiting on one group
/// never blocks on tasks submitted by other callers. Groups are cheap
/// stack-allocated objects; the usual pattern is
///
///   TaskGroup group;
///   pool->Submit(&group, [] { ... });
///   pool->Submit(&group, [] { ... });
///   pool->Wait(&group);
///
/// A TaskGroup must outlive its last submitted task (Wait() before it goes
/// out of scope). Groups are not reusable across pools, but may be reused
/// for successive batches on the same pool after Wait() returns.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class ThreadPool;
  // Guarded by the owning pool's mutex.
  size_t pending_ = 0;
};

/// Fixed-size worker pool with task-group completion semantics.
///
/// The paper's CliqueRank implementation leaned on Eigen's multi-threaded
/// GEMM on a 32-core Xeon; this pool is the substrate our from-scratch GEMM,
/// masked multiply, RSS walks, and ITER sweeps use for the same purpose.
///
/// Threading model (see DESIGN.md §"Threading model"):
///  * Every task belongs to a TaskGroup; `Wait(&group)` blocks until that
///    group's tasks — and only that group's tasks — have finished.
///  * A thread blocked in `Wait()` helps drain the shared queue instead of
///    sleeping while work is available. This makes `Wait()` safe to call
///    from inside a worker task: nested `ParallelFor` cannot deadlock
///    because the waiter executes queued tasks (its own group's or
///    others') until its group completes.
///  * Concurrent `ParallelFor` calls from different threads are independent:
///    each waits on its own group, never on the union of all in-flight work.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task into `group`. Tasks must not throw. Returns
  /// FailedPrecondition (and drops the task) if the pool is shutting down —
  /// submitting to a destructing pool is rejected, not fatal, so shutdown
  /// races degrade to lost work the caller can observe instead of a crash.
  Status Submit(TaskGroup* group, std::function<void()> task);

  /// Enqueues a task into the pool-wide default group (legacy interface;
  /// prefer an explicit TaskGroup). Same shutdown semantics as above.
  Status Submit(std::function<void()> task);

  /// Blocks until every task submitted to `group` has finished. Helps drain
  /// the queue while waiting, so this is safe to call from a worker thread.
  void Wait(TaskGroup* group);

  /// Blocks until the pool-wide default group is empty (legacy interface).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit). Size = hardware concurrency.
  static ThreadPool* Default();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void WorkerLoop();
  /// Pops and runs one task. `lock` must be held; it is released while the
  /// task runs and re-acquired before returning.
  void RunOneTask(std::unique_lock<std::mutex>* lock);

  std::vector<std::thread> workers_;
  std::deque<Task> tasks_;
  std::mutex mutex_;
  /// Signaled on: new task, group completion, shutdown. Workers and waiting
  /// helpers share it; completion events are rare enough that the shared
  /// condvar beats per-group condvars in allocation and fairness.
  std::condition_variable wakeup_;
  TaskGroup default_group_;
  bool shutting_down_ = false;
};

/// Splits [begin, end) into contiguous chunks of at least `grain` items and
/// runs `fn(chunk_begin, chunk_end)` across `pool`. Blocks until complete.
/// Runs inline when the range is small or the pool has one thread.
///
/// Safe to call concurrently from multiple threads sharing one pool, and
/// recursively from inside `fn` (the blocked caller drains queued chunks).
/// Chunk boundaries depend only on (begin, end, grain, num_threads), so any
/// `fn` whose chunks are independent yields thread-count-independent
/// results as long as each index's computation is self-contained.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace gter

#endif  // GTER_COMMON_THREAD_POOL_H_
