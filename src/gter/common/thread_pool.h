#ifndef GTER_COMMON_THREAD_POOL_H_
#define GTER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gter {

/// Fixed-size worker pool with a blocking `Wait()` barrier.
///
/// The paper's CliqueRank implementation leaned on Eigen's multi-threaded
/// GEMM on a 32-core Xeon; this pool is the substrate our from-scratch GEMM
/// and masked multiply use for the same purpose. On a single-core host the
/// pool degrades gracefully to near-sequential execution.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit). Size = hardware concurrency.
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [begin, end) into contiguous chunks of at least `grain` items and
/// runs `fn(chunk_begin, chunk_end)` across `pool`. Blocks until complete.
/// Runs inline when the range is small or the pool has one thread.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace gter

#endif  // GTER_COMMON_THREAD_POOL_H_
