#include "gter/common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "gter/common/parse_number.h"

namespace gter {

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  GTER_CHECK(kind_ == Kind::kObject);
  object_[std::move(key)] = std::move(value);
  return *this;
}

void JsonValue::Append(JsonValue value) {
  GTER_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

bool JsonValue::boolean() const {
  GTER_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::number() const {
  GTER_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::string() const {
  GTER_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  GTER_CHECK(kind_ == Kind::kArray);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object() const {
  GTER_CHECK(kind_ == Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

/// Recursive-descent parser over the input view. Depth-limited so a
/// pathological input cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    GTER_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any gter emitter and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind_ = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipSpace();
        std::string key;
        GTER_RETURN_IF_ERROR(ParseString(&key));
        if (!Consume(':')) return Error("expected ':'");
        JsonValue child;
        GTER_RETURN_IF_ERROR(ParseValue(&child, depth + 1));
        out->object_[std::move(key)] = std::move(child);
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind_ = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JsonValue child;
        GTER_RETURN_IF_ERROR(ParseValue(&child, depth + 1));
        out->array_.push_back(std::move(child));
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    // Number: delegate validation to strtod on the candidate span.
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) return Error("unexpected character");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

namespace {

void AppendJsonEscaped(std::string* out, const std::string& text) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

// Doubles up to 2^53 hold integers exactly; inside that range an integral
// value prints as a plain integer (ids, counts) rather than 4.0e+00.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";  // JSON has no inf/nan
    return;
  }
  if (value == std::floor(value) && std::fabs(value) <= kMaxExactInteger) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    *out += buf;
    return;
  }
  *out += FormatDouble(value);
}

}  // namespace

void JsonValue::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendJsonNumber(out, number_);
      break;
    case Kind::kString:
      AppendJsonEscaped(out, string_);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonEscaped(out, key);
        out->push_back(':');
        v.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  JsonValue value;
  Status s = JsonParser(text).Parse(&value);
  if (!s.ok()) return s;
  return value;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("error reading '" + path + "'");
  }
  return contents;
}

}  // namespace gter
