#ifndef GTER_COMMON_COMMON_FLAGS_H_
#define GTER_COMMON_COMMON_FLAGS_H_

#include <memory>
#include <string>

#include "gter/common/flags.h"
#include "gter/common/status.h"
#include "gter/common/thread_pool.h"

namespace gter {

/// The flag vocabulary every pipeline binary shares (gter_cli, the bench
/// suite, the examples):
///
///   --threads      worker threads (0 = all cores, 1 = serial)
///   --simd         compute-kernel level: scalar | avx2 | auto
///   --metrics_out  pipeline metrics JSON dump path
///   --trace_out    Chrome/Perfetto trace-event JSON dump path
///   --log_level    minimum log severity
///
/// Register with AddCommonStageFlags, then call ApplyCommonStageFlags after
/// FlagSet::Parse to validate and install --log_level and --simd process-
/// wide. Registered here once so help strings and semantics cannot drift
/// between binaries.

/// Registers only --log_level (for subcommands that take no stage flags).
void AddLogLevelFlag(FlagSet* flags);

/// Validates and installs a parsed --log_level; empty leaves the level
/// unchanged. Returns InvalidArgument on an unknown severity name.
Status ApplyLogLevelFlag(const FlagSet& flags);

/// Registers --threads/--simd/--metrics_out/--trace_out/--log_level.
void AddCommonStageFlags(FlagSet* flags);

/// Validates and installs --log_level and --simd from a parsed FlagSet.
/// --threads/--metrics_out/--trace_out are read by the caller (MakePool,
/// the observability scope) rather than installed globally.
Status ApplyCommonStageFlags(const FlagSet& flags);

/// Pool for a --threads value, or nullptr for threads == 1 — the
/// sequential path, which every stage treats as the no-pool ExecContext.
/// threads <= 0 means all hardware cores.
std::unique_ptr<ThreadPool> MakeThreadPool(int64_t threads);

/// Equals-form consumer for binaries that forward the rest of argv to
/// another parser (bench_micro hands argv to google-benchmark). Recognizes
/// --log_level=/--simd= (applied immediately) and --metrics_out=/
/// --trace_out= (captured into the out-params). Returns true when `arg`
/// was one of ours; on a recognized flag with a bad value, returns true
/// and sets *error.
bool ConsumeCommonStageFlag(const char* arg, std::string* metrics_out,
                            std::string* trace_out, Status* error);

}  // namespace gter

#endif  // GTER_COMMON_COMMON_FLAGS_H_
