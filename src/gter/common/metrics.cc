#include "gter/common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gter {
namespace {

thread_local MetricsRegistry* tls_current_registry = nullptr;

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Bucket index for a value: floor(log2(v)) shifted so 1.0 lands at
/// kBucketOfOne, clamped to the array. frexp avoids a log call.
size_t BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive (and NaN) → lowest bucket
  int exp = 0;
  std::frexp(value, &exp);  // value = m·2^exp, m ∈ [0.5, 1)
  long idx = static_cast<long>(exp) - 1 + Histogram::kBucketOfOne;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(Histogram::kNumBuckets)) {
    return Histogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan literals
    *out += value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendHistogramJson(std::string* o, const Histogram& h) {
  *o += "{\"count\": ";
  AppendUint(o, h.count);
  *o += ", \"sum\": ";
  AppendDouble(o, h.sum);
  if (h.count > 0) {
    *o += ", \"min\": ";
    AppendDouble(o, h.min);
    *o += ", \"max\": ";
    AppendDouble(o, h.max);
    *o += ", \"p50\": ";
    AppendDouble(o, h.Quantile(0.50));
    *o += ", \"p95\": ";
    AppendDouble(o, h.Quantile(0.95));
    *o += ", \"p99\": ";
    AppendDouble(o, h.Quantile(0.99));
  }
  *o += ", \"buckets\": [";
  bool first = true;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;  // sparse emission
    if (!first) *o += ", ";
    first = false;
    *o += "{\"le\": ";
    AppendDouble(o, Histogram::BucketUpperBound(i));
    *o += ", \"count\": ";
    AppendUint(o, h.buckets[i]);
    *o += "}";
  }
  *o += "]}";
}

/// Emits `"name": <value>` sequences for one section.
template <typename Map, typename EmitValue>
void AppendSection(std::string* out, const char* section, const Map& map,
                   EmitValue emit_value) {
  *out += "  \"";
  *out += section;
  *out += "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) *out += ',';
    first = false;
    *out += "\n    \"";
    AppendEscaped(out, name);
    *out += "\": ";
    emit_value(out, value);
  }
  *out += first ? "}" : "\n  }";
}

}  // namespace

void Histogram::Observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  ++buckets[BucketIndex(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

double Histogram::BucketUpperBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - kBucketOfOne + 1);
}

double Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - kBucketOfOne);
}

double Histogram::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Walk the buckets to the one containing the q·count-th observation and
  // interpolate linearly inside it: for observations spread uniformly
  // within a bucket this is exact, and in general the error is bounded by
  // the bucket's width (a factor of 2 on log-scale buckets).
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= target) {
      const double fraction = (target - cumulative) / in_bucket;
      // Interpolate over the bucket span clamped to the recorded
      // [min, max] envelope. Raw bucket bounds only lie outside the data
      // in the first/last populated bucket, where interpolating over the
      // full power-of-two span used to push the estimate past min/max
      // and flat-clamp it there; the clamped span keeps the estimate
      // exact for uniformly-spread observations.
      const double lo = std::max(BucketLowerBound(i), min);
      const double hi = std::min(BucketUpperBound(i), max);
      if (hi <= lo) return lo;
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max;  // unreachable for a consistent histogram
}

SlidingHistogram::SlidingHistogram(double window_seconds)
    : window_seconds_(window_seconds > 0.0 ? window_seconds : 60.0),
      slot_ns_(static_cast<uint64_t>(window_seconds_ * 1e9 /
                                     static_cast<double>(kNumSlots))) {
  if (slot_ns_ == 0) slot_ns_ = 1;
  for (Slot& slot : slots_) {
    slot.min.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    slot.max.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
  }
}

void SlidingHistogram::Record(double value) {
  RecordAt(value, SteadyNowNs());
}

void SlidingHistogram::RecordAt(double value, uint64_t now_ns) {
  const uint64_t epoch = now_ns / slot_ns_;
  Slot& slot = slots_[epoch % kNumSlots];
  uint64_t seen = slot.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // The slot's previous tenancy has lapsed. One recorder wins the CAS
    // and recycles it; losers (and recorders racing the reset) proceed
    // into the slot immediately — a bounded number of observations at the
    // rotation edge may be dropped or mis-binned, which monitoring
    // tolerates in exchange for a lock-free record path.
    if (slot.epoch.compare_exchange_strong(seen, epoch,
                                           std::memory_order_acq_rel)) {
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      slot.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      for (auto& bucket : slot.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
  slot.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  double cur = slot.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.min.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
  }
  cur = slot.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.max.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
  }
}

Histogram SlidingHistogram::Snapshot() const {
  return SnapshotAt(SteadyNowNs());
}

Histogram SlidingHistogram::SnapshotAt(uint64_t now_ns) const {
  const uint64_t current_epoch = now_ns / slot_ns_;
  const uint64_t oldest_epoch =
      current_epoch >= kNumSlots - 1 ? current_epoch - (kNumSlots - 1) : 0;
  Histogram merged;
  for (const Slot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest_epoch || epoch > current_epoch) continue;
    Histogram part;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      part.buckets[i] = slot.buckets[i].load(std::memory_order_relaxed);
      part.count += part.buckets[i];
    }
    if (part.count == 0) continue;
    part.sum = slot.sum.load(std::memory_order_relaxed);
    part.min = slot.min.load(std::memory_order_relaxed);
    part.max = slot.max.load(std::memory_order_relaxed);
    // A reset racing this read can tear min/max/sum; re-derive a sane
    // envelope from the bucket array (which count was derived from) so
    // Quantile()'s clamping invariants hold for every snapshot.
    if (!std::isfinite(part.min) || !std::isfinite(part.max) ||
        part.min > part.max) {
      size_t first = Histogram::kNumBuckets;
      size_t last = 0;
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        if (part.buckets[i] == 0) continue;
        if (first == Histogram::kNumBuckets) first = i;
        last = i;
      }
      part.min = Histogram::BucketLowerBound(first);
      part.max = Histogram::BucketUpperBound(last);
    }
    if (!std::isfinite(part.sum)) {
      part.sum = part.min * static_cast<double>(part.count);
    }
    merged.Merge(part);
  }
  return merged;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::DeclareCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.emplace(std::string(name), 0);
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::MergeHistogram(std::string_view name,
                                     const Histogram& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Merge(local);
}

void MetricsRegistry::RecordTime(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  ++it->second.count;
  it->second.seconds += seconds;
}

SlidingHistogram* MetricsRegistry::Sliding(std::string_view name,
                                           double window_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sliding_.find(name);
  if (it == sliding_.end()) {
    it = sliding_
             .emplace(std::string(name),
                      std::make_unique<SlidingHistogram>(window_seconds))
             .first;
  }
  return it->second.get();
}

Histogram MetricsRegistry::SlidingSnapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sliding_.find(name);
  return it == sliding_.end() ? Histogram{} : it->second->Snapshot();
}

uint64_t MetricsRegistry::Counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::Timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

Histogram MetricsRegistry::HistogramOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, uint64_t, std::less<>> MetricsRegistry::CountersSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, double, std::less<>> MetricsRegistry::GaugesSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

std::map<std::string, TimerStat, std::less<>> MetricsRegistry::TimersSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_;
}

std::map<std::string, Histogram, std::less<>>
MetricsRegistry::HistogramsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_;
}

std::map<std::string, Histogram, std::less<>>
MetricsRegistry::SlidingSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Histogram, std::less<>> out;
  for (const auto& [name, sliding] : sliding_) {
    out.emplace(name, sliding->Snapshot());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  AppendSection(&out, "counters", counters_,
                [](std::string* o, uint64_t v) { AppendUint(o, v); });
  out += ",\n";
  AppendSection(&out, "gauges", gauges_,
                [](std::string* o, double v) { AppendDouble(o, v); });
  out += ",\n";
  AppendSection(&out, "timers", timers_,
                [](std::string* o, const TimerStat& t) {
                  *o += "{\"count\": ";
                  AppendUint(o, t.count);
                  *o += ", \"seconds\": ";
                  AppendDouble(o, t.seconds);
                  *o += "}";
                });
  out += ",\n";
  AppendSection(&out, "histograms", histograms_, AppendHistogramJson);
  if (!sliding_.empty()) {
    // Windowed snapshots — present only when a server declared sliding
    // histograms, so batch-run metrics JSON keeps its historical schema
    // (run_report's FromJson skips unknown sections either way).
    std::map<std::string, Histogram, std::less<>> snapshots;
    for (const auto& [name, sliding] : sliding_) {
      snapshots.emplace(name, sliding->Snapshot());
    }
    out += ",\n";
    AppendSection(&out, "sliding", snapshots, AppendHistogramJson);
  }
  out += "\n}\n";
  return out;
}

MetricsRegistry* MetricsRegistry::Current() { return tls_current_registry; }

ScopedMetricsInstall::ScopedMetricsInstall(MetricsRegistry* registry)
    : previous_(tls_current_registry) {
  tls_current_registry = registry;
}

ScopedMetricsInstall::~ScopedMetricsInstall() {
  tls_current_registry = previous_;
}

Status WriteMetricsJson(const std::string& path,
                        const MetricsRegistry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics output '" + path + "'");
  }
  std::string json = registry.ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to metrics output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace gter
