#include "gter/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gter {
namespace {

thread_local MetricsRegistry* tls_current_registry = nullptr;

/// Bucket index for a value: floor(log2(v)) shifted so 1.0 lands at
/// kBucketOfOne, clamped to the array. frexp avoids a log call.
size_t BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive (and NaN) → lowest bucket
  int exp = 0;
  std::frexp(value, &exp);  // value = m·2^exp, m ∈ [0.5, 1)
  long idx = static_cast<long>(exp) - 1 + Histogram::kBucketOfOne;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(Histogram::kNumBuckets)) {
    return Histogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan literals
    *out += value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

/// Emits `"name": <value>` sequences for one section.
template <typename Map, typename EmitValue>
void AppendSection(std::string* out, const char* section, const Map& map,
                   EmitValue emit_value) {
  *out += "  \"";
  *out += section;
  *out += "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) *out += ',';
    first = false;
    *out += "\n    \"";
    AppendEscaped(out, name);
    *out += "\": ";
    emit_value(out, value);
  }
  *out += first ? "}" : "\n  }";
}

}  // namespace

void Histogram::Observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  ++buckets[BucketIndex(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

double Histogram::BucketUpperBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - kBucketOfOne + 1);
}

double Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - kBucketOfOne);
}

double Histogram::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Walk the buckets to the one containing the q·count-th observation and
  // interpolate linearly inside it: for observations spread uniformly
  // within a bucket this is exact, and in general the error is bounded by
  // the bucket's width (a factor of 2 on log-scale buckets).
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= target) {
      const double fraction = (target - cumulative) / in_bucket;
      const double lo = BucketLowerBound(i);
      const double hi = BucketUpperBound(i);
      const double estimate = lo + fraction * (hi - lo);
      // The exact envelope beats the bucket bounds at the extremes.
      return std::min(std::max(estimate, min), max);
    }
    cumulative += in_bucket;
  }
  return max;  // unreachable for a consistent histogram
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::DeclareCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.emplace(std::string(name), 0);
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::MergeHistogram(std::string_view name,
                                     const Histogram& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Merge(local);
}

void MetricsRegistry::RecordTime(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  ++it->second.count;
  it->second.seconds += seconds;
}

uint64_t MetricsRegistry::Counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::Timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

Histogram MetricsRegistry::HistogramOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  AppendSection(&out, "counters", counters_,
                [](std::string* o, uint64_t v) { AppendUint(o, v); });
  out += ",\n";
  AppendSection(&out, "gauges", gauges_,
                [](std::string* o, double v) { AppendDouble(o, v); });
  out += ",\n";
  AppendSection(&out, "timers", timers_,
                [](std::string* o, const TimerStat& t) {
                  *o += "{\"count\": ";
                  AppendUint(o, t.count);
                  *o += ", \"seconds\": ";
                  AppendDouble(o, t.seconds);
                  *o += "}";
                });
  out += ",\n";
  AppendSection(&out, "histograms", histograms_,
                [](std::string* o, const Histogram& h) {
                  *o += "{\"count\": ";
                  AppendUint(o, h.count);
                  *o += ", \"sum\": ";
                  AppendDouble(o, h.sum);
                  if (h.count > 0) {
                    *o += ", \"min\": ";
                    AppendDouble(o, h.min);
                    *o += ", \"max\": ";
                    AppendDouble(o, h.max);
                    *o += ", \"p50\": ";
                    AppendDouble(o, h.Quantile(0.50));
                    *o += ", \"p95\": ";
                    AppendDouble(o, h.Quantile(0.95));
                    *o += ", \"p99\": ";
                    AppendDouble(o, h.Quantile(0.99));
                  }
                  *o += ", \"buckets\": [";
                  bool first = true;
                  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
                    if (h.buckets[i] == 0) continue;  // sparse emission
                    if (!first) *o += ", ";
                    first = false;
                    *o += "{\"le\": ";
                    AppendDouble(o, Histogram::BucketUpperBound(i));
                    *o += ", \"count\": ";
                    AppendUint(o, h.buckets[i]);
                    *o += "}";
                  }
                  *o += "]}";
                });
  out += "\n}\n";
  return out;
}

MetricsRegistry* MetricsRegistry::Current() { return tls_current_registry; }

ScopedMetricsInstall::ScopedMetricsInstall(MetricsRegistry* registry)
    : previous_(tls_current_registry) {
  tls_current_registry = registry;
}

ScopedMetricsInstall::~ScopedMetricsInstall() {
  tls_current_registry = previous_;
}

Status WriteMetricsJson(const std::string& path,
                        const MetricsRegistry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics output '" + path + "'");
  }
  std::string json = registry.ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to metrics output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace gter
