#ifndef GTER_COMMON_FLAGS_H_
#define GTER_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "gter/common/status.h"

namespace gter {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepted syntaxes: `--name=value`, `--name value`, and `--bool_flag`
/// (implies true). Unknown flags are an error; positional arguments are
/// collected in `positional()`. A bare `--` ends flag parsing — every
/// later argument is positional even when it starts with "--". Numeric
/// values are parsed strictly (full consumption, overflow is an error).
class FlagSet {
 public:
  /// Registers a flag with its default value. `help` is shown by Usage().
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv (skipping argv[0]). Returns InvalidArgument on unknown
  /// flags or malformed values.
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable flag table.
  std::string Usage() const;

 private:
  using Value = std::variant<int64_t, double, bool, std::string>;
  struct Flag {
    Value value;
    std::string help;
  };

  Status SetFromString(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gter

#endif  // GTER_COMMON_FLAGS_H_
