// AVX-512 twins of the gather-reduce primitives: 8-wide gathers with the
// same two-accumulator-chain structure as the AVX2 TU. Compiled with the
// full -mavx512{f,bw,dq,vl,vpopcntdq} set and only reached after the CPUID
// + XCR0 check in cpu.cc admits SimdLevel::kAvx512.

#include "gter/common/simd_ops.h"

#if GTER_HAVE_AVX512

#include <immintrin.h>

namespace gter {
namespace internal {

namespace {

/// Fixed-order horizontal sum of one 8-lane accumulator: fold the high
/// 256-bit half onto the low half, then reuse the AVX2 lane order
/// ((l0+l2)+(l1+l3)) on the folded 4-lane vector. Like the AVX2 twin the
/// order is a pure function of the vector, never of the call site.
inline double HorizontalSum(__m512d v) {
  __m256d lo = _mm512_castpd512_pd256(v);
  __m256d hi = _mm512_extractf64x4_pd(v, 1);
  __m256d fold = _mm256_add_pd(lo, hi);
  __m128d lo128 = _mm256_castpd256_pd128(fold);
  __m128d hi128 = _mm256_extractf128_pd(fold, 1);
  __m128d pair = _mm_add_pd(lo128, hi128);
  __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

}  // namespace

double IndexedSumAvx512(const double* values, const uint32_t* idx, size_t n) {
  // Two independent chains of 8-wide gathers (16 elements per iteration)
  // hide gather latency; combine order (acc0+acc1, lanes, scalar tail) is
  // fixed, so the result is deterministic for a given input.
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i + 8));
    acc0 = _mm512_add_pd(acc0, _mm512_i32gather_pd(i0, values, 8));
    acc1 = _mm512_add_pd(acc1, _mm512_i32gather_pd(i1, values, 8));
  }
  if (i + 8 <= n) {
    __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    acc0 = _mm512_add_pd(acc0, _mm512_i32gather_pd(i0, values, 8));
    i += 8;
  }
  double acc = HorizontalSum(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += values[idx[i]];
  return acc;
}

double IndexedWeightedSumAvx512(const double* weights, const double* values,
                                const uint32_t* idx, size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i + 8));
    acc0 = _mm512_fmadd_pd(_mm512_i32gather_pd(i0, weights, 8),
                           _mm512_i32gather_pd(i0, values, 8), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_i32gather_pd(i1, weights, 8),
                           _mm512_i32gather_pd(i1, values, 8), acc1);
  }
  if (i + 8 <= n) {
    __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    acc0 = _mm512_fmadd_pd(_mm512_i32gather_pd(i0, weights, 8),
                           _mm512_i32gather_pd(i0, values, 8), acc0);
    i += 8;
  }
  double acc = HorizontalSum(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += weights[idx[i]] * values[idx[i]];
  return acc;
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX512
