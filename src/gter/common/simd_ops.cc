#include "gter/common/simd_ops.h"

namespace gter {

double IndexedSumScalar(const double* values, const uint32_t* idx, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += values[idx[i]];
  return acc;
}

double IndexedWeightedSumScalar(const double* weights, const double* values,
                                const uint32_t* idx, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += weights[idx[i]] * values[idx[i]];
  return acc;
}

IndexedSumFn ResolveIndexedSum(SimdLevel level) {
#if GTER_HAVE_AVX512
  if (level >= SimdLevel::kAvx512) return internal::IndexedSumAvx512;
#endif
#if GTER_HAVE_AVX2
  if (level >= SimdLevel::kAvx2) return internal::IndexedSumAvx2;
#else
  (void)level;
#endif
  return IndexedSumScalar;
}

IndexedWeightedSumFn ResolveIndexedWeightedSum(SimdLevel level) {
#if GTER_HAVE_AVX512
  if (level >= SimdLevel::kAvx512) return internal::IndexedWeightedSumAvx512;
#endif
#if GTER_HAVE_AVX2
  if (level >= SimdLevel::kAvx2) return internal::IndexedWeightedSumAvx2;
#else
  (void)level;
#endif
  return IndexedWeightedSumScalar;
}

double IndexedSum(const double* values, const uint32_t* idx, size_t n) {
  return ResolveIndexedSum(ActiveSimdLevel())(values, idx, n);
}

double IndexedWeightedSum(const double* weights, const double* values,
                          const uint32_t* idx, size_t n) {
  return ResolveIndexedWeightedSum(ActiveSimdLevel())(weights, values, idx, n);
}

}  // namespace gter
