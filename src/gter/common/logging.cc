#include "gter/common/logging.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace gter {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// Small process-local thread id (1 = first thread to log), stable for the
/// thread's lifetime and readable next to the trace's per-thread tracks —
/// unlike the opaque pthread handle.
uint64_t ThisThreadLogId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// UTC wall time as ISO-8601 with milliseconds: 2026-08-05T12:34:56.789Z.
void FormatTimestamp(char (&buf)[128]) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000) % 1000);
}

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(AsciiLower(c));
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    char timestamp[128];
    FormatTimestamp(timestamp);
    stream_ << "[" << timestamp << " " << LevelName(level_) << " "
            << ThisThreadLogId() << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace gter
