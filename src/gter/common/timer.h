#ifndef GTER_COMMON_TIMER_H_
#define GTER_COMMON_TIMER_H_

#include <chrono>

namespace gter {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// Table III / Table V timing instrumentation.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gter

#endif  // GTER_COMMON_TIMER_H_
