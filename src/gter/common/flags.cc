#include "gter/common/flags.h"

#include <sstream>

#include "gter/common/parse_number.h"

namespace gter {

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}

Status FlagSet::SetFromString(const std::string& name,
                              const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Value& v = it->second.value;
  if (std::holds_alternative<int64_t>(v)) {
    // Checked parse: "99999999999999999999999" is an error, not a silent
    // clamp to INT64_MAX (strtoll's ERANGE behaviour).
    auto parsed = ParseInt64(text);
    if (!parsed.ok()) {
      return Status::InvalidArgument("flag --" + name +
                                     " expects an integer, got '" + text + "'");
    }
    v = parsed.value();
  } else if (std::holds_alternative<double>(v)) {
    auto parsed = ParseDouble(text);
    if (!parsed.ok()) {
      return Status::InvalidArgument("flag --" + name +
                                     " expects a number, got '" + text + "'");
    }
    v = parsed.value();
  } else if (std::holds_alternative<bool>(v)) {
    if (text == "true" || text == "1") {
      v = true;
    } else if (text == "false" || text == "0") {
      v = false;
    } else {
      return Status::InvalidArgument("flag --" + name +
                                     " expects true/false, got '" + text + "'");
    }
  } else {
    v = text;
  }
  return Status::OK();
}

Status FlagSet::Parse(int argc, char** argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done) {
      positional_.push_back(arg);
      continue;
    }
    // `--` ends flag parsing: everything after it is positional, so
    // positional arguments that themselves start with "--" (paths, raw
    // request lines) are representable.
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      GTER_RETURN_IF_ERROR(SetFromString(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (std::holds_alternative<bool>(it->second.value)) {
      it->second.value = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " requires a value");
    }
    GTER_RETURN_IF_ERROR(SetFromString(arg, argv[++i]));
  }
  return Status::OK();
}

int64_t FlagSet::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  GTER_CHECK(it != flags_.end());
  return std::get<int64_t>(it->second.value);
}

double FlagSet::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  GTER_CHECK(it != flags_.end());
  return std::get<double>(it->second.value);
}

bool FlagSet::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  GTER_CHECK(it != flags_.end());
  return std::get<bool>(it->second.value);
}

const std::string& FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  GTER_CHECK(it != flags_.end());
  return std::get<std::string>(it->second.value);
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  " << flag.help << " (default: ";
    std::visit(
        [&os](const auto& v) {
          if constexpr (std::is_same_v<std::decay_t<decltype(v)>, bool>) {
            os << (v ? "true" : "false");
          } else {
            os << v;
          }
        },
        flag.value);
    os << ")\n";
  }
  return os.str();
}

}  // namespace gter
