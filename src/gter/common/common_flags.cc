#include "gter/common/common_flags.h"

#include <cstring>

#include "gter/common/cpu.h"
#include "gter/common/logging.h"

namespace gter {

void AddLogLevelFlag(FlagSet* flags) {
  flags->AddString("log_level", "",
                   "minimum log severity (debug|info|warning|error)");
}

Status ApplyLogLevelFlag(const FlagSet& flags) {
  const std::string& text = flags.GetString("log_level");
  if (text.empty()) return Status::OK();
  LogLevel level;
  if (!ParseLogLevel(text, &level)) {
    return Status::InvalidArgument("unknown --log_level '" + text + "'");
  }
  SetLogLevel(level);
  return Status::OK();
}

void AddCommonStageFlags(FlagSet* flags) {
  flags->AddInt("threads", 1, "worker threads (0 = all cores, 1 = serial)");
  flags->AddString("simd", "auto",
                   "compute kernels: scalar | avx2 | avx512 | auto (scalar = "
                   "the determinism reference path; requests above the host's "
                   "capability clamp down)");
  flags->AddString("metrics_out", "",
                   "output: pipeline metrics JSON (optional)");
  flags->AddString("trace_out", "",
                   "output: Chrome/Perfetto trace-event JSON (optional)");
  AddLogLevelFlag(flags);
}

Status ApplyCommonStageFlags(const FlagSet& flags) {
  GTER_RETURN_IF_ERROR(ApplyLogLevelFlag(flags));
  SimdLevel level;
  if (!ParseSimdLevel(flags.GetString("simd"), &level)) {
    return Status::InvalidArgument("unknown --simd '" +
                                   flags.GetString("simd") + "'");
  }
  SetSimdLevel(level);
  return Status::OK();
}

std::unique_ptr<ThreadPool> MakeThreadPool(int64_t threads) {
  if (threads == 1) return nullptr;
  return std::make_unique<ThreadPool>(
      threads <= 0 ? 0 : static_cast<size_t>(threads));
}

bool ConsumeCommonStageFlag(const char* arg, std::string* metrics_out,
                            std::string* trace_out, Status* error) {
  if (std::strncmp(arg, "--metrics_out=", 14) == 0) {
    *metrics_out = arg + 14;
    return true;
  }
  if (std::strncmp(arg, "--trace_out=", 12) == 0) {
    *trace_out = arg + 12;
    return true;
  }
  if (std::strncmp(arg, "--log_level=", 12) == 0) {
    LogLevel level;
    if (!ParseLogLevel(arg + 12, &level)) {
      *error = Status::InvalidArgument(std::string("unknown --log_level '") +
                                       (arg + 12) + "'");
    } else {
      SetLogLevel(level);
    }
    return true;
  }
  if (std::strncmp(arg, "--simd=", 7) == 0) {
    SimdLevel level;
    if (!ParseSimdLevel(arg + 7, &level)) {
      *error = Status::InvalidArgument(std::string("unknown --simd '") +
                                       (arg + 7) + "'");
    } else {
      SetSimdLevel(level);
    }
    return true;
  }
  return false;
}

}  // namespace gter
