#include "gter/common/thread_pool.h"

#include <algorithm>
#include <string>
#include <utility>

#include "gter/common/logging.h"
#include "gter/common/trace.h"

namespace gter {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      // Named track per worker in any trace recorded while this pool lives.
      SetCurrentThreadTraceName("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wakeup_.notify_all();
  for (auto& w : workers_) w.join();
}

Status ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  GTER_CHECK(group != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      GTER_LOG(Warning) << "ThreadPool::Submit after shutdown; task dropped";
      return Status::FailedPrecondition(
          "ThreadPool is shutting down; task rejected");
    }
    tasks_.push_back({std::move(task), group});
    ++group->pending_;
  }
  wakeup_.notify_all();
  return Status::OK();
}

Status ThreadPool::Submit(std::function<void()> task) {
  return Submit(&default_group_, std::move(task));
}

void ThreadPool::RunOneTask(std::unique_lock<std::mutex>* lock) {
  Task task = std::move(tasks_.front());
  tasks_.pop_front();
  lock->unlock();
  {
    GTER_TRACE_SPAN("pool/task", "pool");
    task.fn();
  }
  lock->lock();
  if (--task.group->pending_ == 0) wakeup_.notify_all();
}

void ThreadPool::Wait(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (group->pending_ > 0) {
    if (!tasks_.empty()) {
      // Help drain the queue instead of sleeping: the task we run may be
      // ours or another group's, but either way the pool makes progress and
      // a worker blocked here (nested ParallelFor) cannot deadlock.
      RunOneTask(&lock);
    } else {
      // Our remaining tasks are running on other threads; sleep until a
      // completion or a new task to steal arrives.
      wakeup_.wait(lock, [this, group] {
        return group->pending_ == 0 || !tasks_.empty();
      });
    }
  }
}

void ThreadPool::Wait() { Wait(&default_group_); }

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wakeup_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
    if (tasks_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    RunOneTask(&lock);
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  GTER_CHECK(begin <= end);
  if (begin == end) return;
  if (grain == 0) grain = 1;
  size_t span = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || span <= grain) {
    fn(begin, end);
    return;
  }
  size_t num_chunks =
      std::min((span + grain - 1) / grain, pool->num_threads() * 4);
  size_t chunk = (span + num_chunks - 1) / num_chunks;
  TaskGroup group;
  for (size_t lo = begin; lo < end; lo += chunk) {
    size_t hi = std::min(lo + chunk, end);
    if (!pool->Submit(&group, [&fn, lo, hi] { fn(lo, hi); }).ok()) {
      // Pool is shutting down; finish the chunk inline so the range is
      // still fully covered.
      fn(lo, hi);
    }
  }
  pool->Wait(&group);
}

}  // namespace gter
