#include "gter/common/thread_pool.h"

#include <algorithm>

#include "gter/common/status.h"

namespace gter {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GTER_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  GTER_CHECK(begin <= end);
  if (begin == end) return;
  if (grain == 0) grain = 1;
  size_t span = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || span <= grain) {
    fn(begin, end);
    return;
  }
  size_t num_chunks =
      std::min((span + grain - 1) / grain, pool->num_threads() * 4);
  size_t chunk = (span + num_chunks - 1) / num_chunks;
  for (size_t lo = begin; lo < end; lo += chunk) {
    size_t hi = std::min(lo + chunk, end);
    pool->Submit([fn, lo, hi] { fn(lo, hi); });
  }
  pool->Wait();
}

}  // namespace gter
