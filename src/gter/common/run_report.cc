#include "gter/common/run_report.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "gter/common/metrics.h"

namespace gter {
namespace {

/// Bucket index whose upper bound is `le` (inverse of
/// Histogram::BucketUpperBound): le = 2^(i - kBucketOfOne + 1), and
/// frexp(2^k) yields exponent k+1.
size_t BucketIndexForUpperBound(double le) {
  int exp = 0;
  std::frexp(le, &exp);
  long idx = static_cast<long>(exp) + Histogram::kBucketOfOne - 2;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(Histogram::kNumBuckets)) {
    return Histogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

/// Rebuilds percentiles from the sparse bucket list for dumps written
/// before percentiles were emitted inline.
void ReconstructPercentiles(const JsonValue& hist_json, HistogramSummary* h) {
  const JsonValue* buckets = hist_json.Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return;
  Histogram rebuilt;
  rebuilt.count = h->count;
  rebuilt.sum = h->sum;
  rebuilt.min = h->min;
  rebuilt.max = h->max;
  for (const JsonValue& b : buckets->array()) {
    if (!b.is_object()) continue;
    const double le = b.NumberOr("le", 0.0);
    const double n = b.NumberOr("count", 0.0);
    if (le <= 0.0 || n <= 0.0) continue;
    rebuilt.buckets[BucketIndexForUpperBound(le)] +=
        static_cast<uint64_t>(n);
  }
  h->p50 = rebuilt.Quantile(0.50);
  h->p95 = rebuilt.Quantile(0.95);
  h->p99 = rebuilt.Quantile(0.99);
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

/// Seconds rendered with a unit that keeps 3-4 significant digits.
std::string FormatSeconds(double seconds) {
  char buf[32];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("metrics document is not a JSON object");
  }
  MetricsSnapshot snapshot;

  if (const JsonValue* counters = root.Find("counters")) {
    if (!counters->is_object()) {
      return Status::InvalidArgument("\"counters\" is not an object");
    }
    for (const auto& [name, value] : counters->object()) {
      if (!value.is_number()) continue;
      snapshot.counters[name] = static_cast<uint64_t>(value.number());
    }
  }

  if (const JsonValue* gauges = root.Find("gauges")) {
    if (!gauges->is_object()) {
      return Status::InvalidArgument("\"gauges\" is not an object");
    }
    for (const auto& [name, value] : gauges->object()) {
      if (!value.is_number()) continue;
      snapshot.gauges[name] = value.number();
    }
  }

  if (const JsonValue* timers = root.Find("timers")) {
    if (!timers->is_object()) {
      return Status::InvalidArgument("\"timers\" is not an object");
    }
    for (const auto& [name, value] : timers->object()) {
      if (!value.is_object()) continue;
      TimerSummary t;
      t.count = static_cast<uint64_t>(value.NumberOr("count", 0.0));
      t.seconds = value.NumberOr("seconds", 0.0);
      snapshot.timers[name] = t;
    }
  }

  if (const JsonValue* histograms = root.Find("histograms")) {
    if (!histograms->is_object()) {
      return Status::InvalidArgument("\"histograms\" is not an object");
    }
    for (const auto& [name, value] : histograms->object()) {
      if (!value.is_object()) continue;
      HistogramSummary h;
      h.count = static_cast<uint64_t>(value.NumberOr("count", 0.0));
      h.sum = value.NumberOr("sum", 0.0);
      h.min = value.NumberOr("min", 0.0);
      h.max = value.NumberOr("max", 0.0);
      if (value.Find("p50") != nullptr) {
        h.p50 = value.NumberOr("p50", 0.0);
        h.p95 = value.NumberOr("p95", 0.0);
        h.p99 = value.NumberOr("p99", 0.0);
      } else if (h.count > 0) {
        ReconstructPercentiles(value, &h);
      }
      snapshot.histograms[name] = h;
    }
  }

  return snapshot;
}

Result<MetricsSnapshot> MetricsSnapshot::Load(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  Result<JsonValue> doc = JsonValue::Parse(text.value());
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().message());
  }
  return FromJson(doc.value());
}

std::string FormatRunReport(const MetricsSnapshot& snapshot) {
  std::string out;

  // Timers ranked by total wall time; percent relative to the largest
  // total, which for a pipeline run is the whole-run stage.
  std::vector<std::pair<std::string, TimerSummary>> timers(
      snapshot.timers.begin(), snapshot.timers.end());
  std::sort(timers.begin(), timers.end(), [](const auto& a, const auto& b) {
    if (a.second.seconds != b.second.seconds) {
      return a.second.seconds > b.second.seconds;
    }
    return a.first < b.first;
  });
  double denom = 0.0;
  for (const auto& [name, t] : timers) denom = std::max(denom, t.seconds);

  out += "timers (by total wall time)\n";
  if (timers.empty()) {
    out += "  (none)\n";
  } else {
    AppendF(&out, "  %-32s %10s %8s %12s %12s\n", "stage", "calls", "%run",
            "total", "mean/call");
    for (const auto& [name, t] : timers) {
      const double pct = denom > 0.0 ? 100.0 * t.seconds / denom : 0.0;
      AppendF(&out, "  %-32s %10llu %7.1f%% %12s %12s\n", name.c_str(),
              static_cast<unsigned long long>(t.count), pct,
              FormatSeconds(t.seconds).c_str(),
              FormatSeconds(t.MeanSeconds()).c_str());
    }
  }

  out += "\ncounters\n";
  if (snapshot.counters.empty()) {
    out += "  (none)\n";
  } else {
    for (const auto& [name, value] : snapshot.counters) {
      AppendF(&out, "  %-32s %14llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
    }
  }

  out += "\ngauges\n";
  if (snapshot.gauges.empty()) {
    out += "  (none)\n";
  } else {
    for (const auto& [name, value] : snapshot.gauges) {
      AppendF(&out, "  %-32s %14.6g\n", name.c_str(), value);
    }
  }

  out += "\nhistograms\n";
  if (snapshot.histograms.empty()) {
    out += "  (none)\n";
  } else {
    AppendF(&out, "  %-32s %10s %12s %12s %12s %12s\n", "name", "count",
            "p50", "p95", "p99", "max");
    for (const auto& [name, h] : snapshot.histograms) {
      AppendF(&out, "  %-32s %10llu %12.6g %12.6g %12.6g %12.6g\n",
              name.c_str(), static_cast<unsigned long long>(h.count), h.p50,
              h.p95, h.p99, h.max);
    }
  }

  return out;
}

PerfDiffResult DiffSnapshots(const MetricsSnapshot& baseline,
                             const MetricsSnapshot& candidate,
                             const PerfDiffOptions& options) {
  PerfDiffResult result;
  std::string& out = result.report;

  AppendF(&out,
          "perf diff (mean seconds per call; regression threshold +%.0f%%, "
          "baseline floor %s)\n",
          options.regress_ratio * 100.0,
          FormatSeconds(options.min_seconds).c_str());
  AppendF(&out, "  %-32s %12s %12s %9s  %s\n", "stage", "baseline",
          "candidate", "delta", "verdict");

  for (const auto& [name, base] : baseline.timers) {
    auto it = candidate.timers.find(name);
    if (it == candidate.timers.end()) {
      AppendF(&out, "  %-32s %12s %12s %9s  missing in candidate\n",
              name.c_str(), FormatSeconds(base.MeanSeconds()).c_str(), "-",
              "-");
      continue;
    }
    const double base_mean = base.MeanSeconds();
    const double cand_mean = it->second.MeanSeconds();
    const double ratio =
        base_mean > 0.0 ? (cand_mean - base_mean) / base_mean : 0.0;
    const bool gated = base_mean >= options.min_seconds;
    const bool regressed = gated && ratio > options.regress_ratio;
    const char* verdict = regressed          ? "REGRESSED"
                          : !gated           ? "ok (below floor)"
                          : ratio < -options.regress_ratio ? "improved"
                                             : "ok";
    AppendF(&out, "  %-32s %12s %12s %+8.1f%%  %s\n", name.c_str(),
            FormatSeconds(base_mean).c_str(), FormatSeconds(cand_mean).c_str(),
            ratio * 100.0, verdict);
    if (regressed) result.regressions.push_back(name);
  }

  for (const auto& [name, cand] : candidate.timers) {
    if (baseline.timers.count(name) != 0) continue;
    AppendF(&out, "  %-32s %12s %12s %9s  new in candidate\n", name.c_str(),
            "-", FormatSeconds(cand.MeanSeconds()).c_str(), "-");
  }

  if (result.regressions.empty()) {
    out += "verdict: PASS (no timer regressed)\n";
  } else {
    AppendF(&out, "verdict: FAIL (%zu timer%s regressed)\n",
            result.regressions.size(),
            result.regressions.size() == 1 ? "" : "s");
  }
  return result;
}

}  // namespace gter
