#include "gter/common/random.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GTER_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GTER_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::OpenUniformDouble() {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return u;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = OpenUniformDouble();
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  GTER_CHECK(n > 0);
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    if (acc >= target) return k;
  }
  return n;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GTER_CHECK(k <= n);
  // Floyd's algorithm: expected O(k) insertions, exact distribution.
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    if (std::find(result.begin(), result.end(), t) == result.end()) {
      result.push_back(t);
    } else {
      result.push_back(j);
    }
  }
  return result;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Derive a child seed from (seed, stream_id) via two SplitMix64 rounds.
  uint64_t mix = seed_ ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  uint64_t s = mix;
  (void)SplitMix64(&s);
  return Rng(SplitMix64(&s));
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  GTER_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace gter
