#ifndef GTER_COMMON_RUN_REPORT_H_
#define GTER_COMMON_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gter/common/json.h"
#include "gter/common/status.h"

namespace gter {

/// Run-report / perf-regression layer over `--metrics_out` dumps (the
/// `gter_cli report` subcommand). One file → human-readable per-stage
/// breakdown; two files → A-vs-B diff with regression thresholds, the CI
/// perf gate (`tools/perf_gate.sh`).

/// One timer parsed back from a metrics dump.
struct TimerSummary {
  uint64_t count = 0;
  double seconds = 0.0;

  /// Mean seconds per recorded call — the quantity the perf gate compares,
  /// so adaptive benchmark iteration counts don't skew the diff.
  double MeanSeconds() const {
    return count == 0 ? 0.0 : seconds / static_cast<double>(count);
  }
};

/// One histogram parsed back from a metrics dump. Percentiles come from the
/// dump when present (current writers emit them) and are otherwise
/// reconstructed from the sparse `le` buckets.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// A `--metrics_out` file parsed back into typed sections.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerSummary> timers;
  std::map<std::string, HistogramSummary> histograms;

  /// Parses a metrics JSON document (the shape `MetricsRegistry::ToJson`
  /// writes). Unknown sections and members are ignored, so older and newer
  /// dumps both load.
  static Result<MetricsSnapshot> FromJson(const JsonValue& root);

  /// Reads and parses one `--metrics_out` file.
  static Result<MetricsSnapshot> Load(const std::string& path);
};

/// Human-readable per-stage breakdown of one run: timers ranked by total
/// wall time with percent-of-run, then counters, gauges, and histogram
/// percentiles. The percent column is relative to the largest timer total
/// (for a pipeline run that is the whole-run `fusion/total` stage).
std::string FormatRunReport(const MetricsSnapshot& snapshot);

/// Thresholds for the A-vs-B perf diff.
struct PerfDiffOptions {
  /// A timer regresses when its mean per-call seconds grows by more than
  /// this fraction over the baseline (0.10 = +10%).
  double regress_ratio = 0.10;
  /// Timers whose baseline mean is below this floor are reported but never
  /// gate — they sit in clock-noise territory.
  double min_seconds = 1e-4;
};

/// Outcome of diffing two snapshots.
struct PerfDiffResult {
  /// Full diff table plus verdict lines, ready to print.
  std::string report;
  /// Names of timers that regressed past the threshold (empty = gate
  /// passes). Missing-in-candidate timers never regress; timers new in the
  /// candidate are listed in the report only.
  std::vector<std::string> regressions;
};

/// Compares candidate against baseline timer-by-timer on mean per-call
/// seconds.
PerfDiffResult DiffSnapshots(const MetricsSnapshot& baseline,
                             const MetricsSnapshot& candidate,
                             const PerfDiffOptions& options);

}  // namespace gter

#endif  // GTER_COMMON_RUN_REPORT_H_
