#include "gter/common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace gter {

namespace internal {

/// One thread's span buffer. Only the owning thread writes `events` and
/// `count`; readers (export) take the published prefix [0, count) after an
/// acquire load, so no lock is ever held while recording.
struct TraceThreadLog {
  explicit TraceThreadLog(size_t capacity) : events(capacity) {}

  uint32_t tid = 0;
  std::string name;  // fixed at registration
  std::vector<TraceEvent> events;  // capacity fixed up front, never resized
  std::atomic<size_t> count{0};
  std::atomic<uint64_t> dropped{0};
};

}  // namespace internal

namespace {

using internal::TraceThreadLog;

std::atomic<TraceRecorder*> g_current_recorder{nullptr};
std::atomic<uint64_t> g_next_recorder_id{1};

/// Thread-name registered by SetCurrentThreadTraceName before the thread's
/// first span. Function-local static avoids init-order issues.
std::string& TlsThreadName() {
  thread_local std::string name;
  return name;
}

/// Per-thread cache of the buffer registered with recorder `recorder_id`.
/// Keyed by the process-unique recorder id (not the pointer), so a new
/// recorder at a recycled address can never alias a stale cache entry.
struct TlsLogCache {
  uint64_t recorder_id = 0;
  TraceThreadLog* log = nullptr;
};
thread_local TlsLogCache tls_log_cache;

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Microseconds with sub-ns-rounding stability: trace viewers take "ts"
/// and "dur" as (fractional) microseconds.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity_per_thread)
    : capacity_per_thread_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(NowNs()) {}

TraceRecorder::~TraceRecorder() = default;

TraceThreadLog* TraceRecorder::LogForThisThread() {
  if (tls_log_cache.recorder_id == id_) return tls_log_cache.log;
  std::lock_guard<std::mutex> lock(logs_mutex_);
  auto log = std::make_unique<TraceThreadLog>(capacity_per_thread_);
  log->tid = static_cast<uint32_t>(logs_.size());
  log->name = TlsThreadName();
  if (log->name.empty()) log->name = "thread-" + std::to_string(log->tid);
  TraceThreadLog* raw = log.get();
  logs_.push_back(std::move(log));
  tls_log_cache = {id_, raw};
  return raw;
}

void TraceRecorder::RecordSpan(const char* name, const char* category,
                               uint64_t start_ns, uint64_t duration_ns,
                               TraceArg arg0, TraceArg arg1) {
  TraceThreadLog* log = LogForThisThread();
  size_t n = log->count.load(std::memory_order_relaxed);
  if (n >= log->events.size()) {
    log->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = log->events[n];
  e.name = name;
  e.category = category;
  e.start_ns = start_ns;
  e.duration_ns = duration_ns;
  e.arg0 = arg0;
  e.arg1 = arg1;
  log->count.store(n + 1, std::memory_order_release);
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(logs_mutex_);
  size_t total = 0;
  for (const auto& log : logs_) {
    total += log->count.load(std::memory_order_acquire);
  }
  return total;
}

void TraceRecorder::AddProcessLabel(std::string label) {
  std::lock_guard<std::mutex> lock(logs_mutex_);
  process_labels_.push_back(std::move(label));
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(logs_mutex_);
  uint64_t total = 0;
  for (const auto& log : logs_) {
    total += log->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string TraceRecorder::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(logs_mutex_);
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };

  comma();
  out +=
      "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"gter\"}}";

  if (!process_labels_.empty()) {
    // Chrome's process_labels metadata takes one comma-joined string.
    comma();
    out +=
        "{\"ph\": \"M\", \"name\": \"process_labels\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"labels\": \"";
    for (size_t i = 0; i < process_labels_.size(); ++i) {
      if (i != 0) out += ", ";
      AppendEscaped(&out, process_labels_[i]);
    }
    out += "\"}}";
  }

  for (const auto& log : logs_) {
    comma();
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": ";
    out += std::to_string(log->tid);
    out += ", \"args\": {\"name\": \"";
    AppendEscaped(&out, log->name);
    out += "\"}}";
  }

  for (const auto& log : logs_) {
    const size_t n = log->count.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& e = log->events[i];
      comma();
      out += "{\"ph\": \"X\", \"name\": \"";
      AppendEscaped(&out, e.name);
      out += "\", \"cat\": \"";
      AppendEscaped(&out, e.category);
      out += "\", \"pid\": 1, \"tid\": ";
      out += std::to_string(log->tid);
      out += ", \"ts\": ";
      // Spans are recorded after construction, but a concurrent writer's
      // clock read may race the epoch read; clamp instead of underflowing.
      AppendMicros(&out, e.start_ns >= epoch_ns_ ? e.start_ns - epoch_ns_ : 0);
      out += ", \"dur\": ";
      AppendMicros(&out, e.duration_ns);
      if (e.arg0.key != nullptr || e.arg1.key != nullptr) {
        out += ", \"args\": {";
        bool first_arg = true;
        for (const TraceArg* arg : {&e.arg0, &e.arg1}) {
          if (arg->key == nullptr) continue;
          if (!first_arg) out += ", ";
          first_arg = false;
          out += "\"";
          AppendEscaped(&out, arg->key);
          out += "\": ";
          AppendDouble(&out, arg->value);
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n]\n}\n";
  return out;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(logs_mutex_);
  std::vector<TraceEvent> out;
  for (const auto& log : logs_) {
    const size_t n = log->count.load(std::memory_order_acquire);
    out.insert(out.end(), log->events.begin(), log->events.begin() + n);
  }
  return out;
}

TraceRecorder* TraceRecorder::Current() {
  return g_current_recorder.load(std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTraceInstall::ScopedTraceInstall(TraceRecorder* recorder)
    : previous_(g_current_recorder.load(std::memory_order_relaxed)) {
  g_current_recorder.store(recorder, std::memory_order_release);
}

ScopedTraceInstall::~ScopedTraceInstall() {
  g_current_recorder.store(previous_, std::memory_order_release);
}

void SetCurrentThreadTraceName(std::string name) {
  TlsThreadName() = std::move(name);
}

Status WriteTraceJson(const std::string& path,
                      const TraceRecorder& recorder) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output '" + path + "'");
  }
  std::string json = recorder.ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace gter
