// AVX2 twins of the gather-reduce primitives. This translation unit is the
// only place the simd_ops kernels use VEX instructions; it is compiled with
// -mavx2 -mfma and only ever called after the CPUID check in cpu.cc, so the
// rest of the library keeps the project-wide baseline ISA.

#include "gter/common/simd_ops.h"

#if GTER_HAVE_AVX2

#include <immintrin.h>

namespace gter {
namespace internal {

namespace {

/// Lane-0..3 + lane-4..7 style horizontal sum of one accumulator vector:
/// ((v0+v2) + (v1+v3)) — fixed order, independent of call site.
inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d pair = _mm_add_pd(lo, hi);          // {v0+v2, v1+v3}
  __m128d swap = _mm_unpackhi_pd(pair, pair);  // {v1+v3, v1+v3}
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

}  // namespace

double IndexedSumAvx2(const double* values, const uint32_t* idx, size_t n) {
  // Two independent accumulator chains hide gather latency; the combine
  // order (acc0+acc1, then lanes, then the scalar tail) is fixed, so the
  // result is deterministic for a given input.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(values, i0, 8));
    acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(values, i1, 8));
  }
  if (i + 4 <= n) {
    __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(values, i0, 8));
    i += 4;
  }
  double acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += values[idx[i]];
  return acc;
}

double IndexedWeightedSumAvx2(const double* weights, const double* values,
                              const uint32_t* idx, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i + 4));
    acc0 = _mm256_fmadd_pd(_mm256_i32gather_pd(weights, i0, 8),
                           _mm256_i32gather_pd(values, i0, 8), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_i32gather_pd(weights, i1, 8),
                           _mm256_i32gather_pd(values, i1, 8), acc1);
  }
  if (i + 4 <= n) {
    __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc0 = _mm256_fmadd_pd(_mm256_i32gather_pd(weights, i0, 8),
                           _mm256_i32gather_pd(values, i0, 8), acc0);
    i += 4;
  }
  double acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += weights[idx[i]] * values[idx[i]];
  return acc;
}

}  // namespace internal
}  // namespace gter

#endif  // GTER_HAVE_AVX2
