#ifndef GTER_COMMON_METRICS_H_
#define GTER_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "gter/common/status.h"
#include "gter/common/trace.h"

namespace gter {

/// Pipeline-wide observability substrate (see DESIGN.md §"Observability").
///
/// A `MetricsRegistry` collects named counters, gauges, log-scale
/// histograms, and aggregated stage timers from every pipeline stage that
/// was handed one — either explicitly through the `metrics` field of a
/// stage's options struct, or implicitly through the thread-local registry
/// installed by `ScopedMetricsInstall` (the path the CLI and the bench
/// harness use).
///
/// Contract: with no registry installed anywhere, every instrumentation
/// point collapses to one null-pointer test — no clock reads, no locks, no
/// allocation — so the hot paths keep their uninstrumented cost.
///
/// Naming convention: lowercase `stage/metric` slugs (`rss/walks_run`,
/// `cliquerank/gemm`). Counters count events, gauges record last-observed
/// magnitudes (bytes, sizes), timers aggregate {count, seconds} per stage
/// name, histograms bucket value distributions by powers of two.

/// Aggregated wall time of one named stage.
struct TimerStat {
  uint64_t count = 0;
  double seconds = 0.0;
};

/// Log-scale (base-2 bucket) histogram accumulator. Cheap value type:
/// stages build one per worker chunk lock-free and merge it into the
/// registry once per chunk.
struct Histogram {
  /// Buckets span 2^-32 .. 2^32: bucket i counts values in
  /// [2^(i-33), 2^(i-32)); bucket 0 additionally absorbs v ≤ 2^-32 (and
  /// non-positive values), the last bucket absorbs v ≥ 2^32.
  static constexpr size_t kNumBuckets = 64;
  /// floor(log2) offset mapping value 1.0 to bucket 32.
  static constexpr int kBucketOfOne = 32;

  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // valid when count > 0
  double max = 0.0;  // valid when count > 0
  std::array<uint64_t, kNumBuckets> buckets{};

  void Observe(double value);
  void Merge(const Histogram& other);

  /// Estimated q-quantile (q in [0, 1]), by linear interpolation inside
  /// the log-scale bucket holding the q·count-th observation, with the
  /// interpolation span clamped to the exact [min, max] envelope — so
  /// single-valued histograms are exact, values uniform across one bucket
  /// interpolate exactly instead of flat-clamping at the envelope edge,
  /// and the estimation error is bounded by one bucket's width.
  /// Returns 0 when the histogram is empty.
  double Quantile(double q) const;

  /// Exclusive upper bound of bucket `i` (2^(i-32)).
  static double BucketUpperBound(size_t i);

  /// Inclusive lower bound of bucket `i` (2^(i-33); bucket 0 starts at 0
  /// because it also absorbs non-positive values).
  static double BucketLowerBound(size_t i);
};

/// Sliding-window log-scale histogram: a ring of `kNumSlots` epoch-rotated
/// sub-histograms covering `window_seconds` of wall time in total, so a
/// snapshot reflects only recent observations (live serving percentiles)
/// while old slots are recycled in place.
///
/// The record path is lock-free: plain atomic adds into the slot owned by
/// the current epoch, plus one CAS to claim a slot whose epoch has lapsed
/// (the winner zeroes it). Observations racing a rotation may land in the
/// slot being recycled and be dropped — a bounded, monitoring-acceptable
/// loss at slot boundaries only. Snapshots derive each slot's count from
/// its bucket array (never a separately-torn counter), so the Prometheus
/// invariant `+Inf bucket == _count` holds for every snapshot.
///
/// `RecordAt`/`SnapshotAt` take an explicit steady-clock timestamp — the
/// production path (`Record`/`Snapshot`) reads the clock once; tests
/// inject timestamps to drive rotation deterministically.
class SlidingHistogram {
 public:
  /// Number of ring slots; each spans window_seconds / kNumSlots.
  static constexpr size_t kNumSlots = 8;

  explicit SlidingHistogram(double window_seconds = 60.0);
  SlidingHistogram(const SlidingHistogram&) = delete;
  SlidingHistogram& operator=(const SlidingHistogram&) = delete;

  /// Records one observation at the current steady-clock time.
  void Record(double value);

  /// Records one observation as of steady-clock time `now_ns` (test hook;
  /// timestamps must be non-decreasing across threads for exact windows).
  void RecordAt(double value, uint64_t now_ns);

  /// Merges every slot still inside the window into one plain Histogram.
  Histogram Snapshot() const;

  /// Snapshot as of steady-clock time `now_ns` (test hook).
  Histogram SnapshotAt(uint64_t now_ns) const;

  double window_seconds() const { return window_seconds_; }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
  };

  double window_seconds_;
  uint64_t slot_ns_;
  std::array<Slot, kNumSlots> slots_;
};

/// Thread-safe metrics registry. All methods may be called concurrently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to counter `name`, creating it at zero first.
  void AddCounter(std::string_view name, uint64_t delta = 1);

  /// Ensures counter `name` exists (at zero) so emitted JSON has a stable
  /// schema even for stages that did not run.
  void DeclareCounter(std::string_view name);

  /// Sets gauge `name` to `value` (last write wins).
  void SetGauge(std::string_view name, double value);

  /// Records one observation into log-scale histogram `name`.
  void Observe(std::string_view name, double value);

  /// Merges a locally-accumulated histogram into `name` under one lock —
  /// the bulk path for per-chunk accumulation in parallel loops.
  void MergeHistogram(std::string_view name, const Histogram& local);

  /// Adds one completed timing of stage `name` (ScopedTimer's sink).
  void RecordTime(std::string_view name, double seconds);

  /// Create-or-get the sliding histogram `name` (the pointer is stable
  /// for the registry's lifetime; recording through it is lock-free).
  /// `window_seconds` applies only on first creation.
  SlidingHistogram* Sliding(std::string_view name,
                            double window_seconds = 60.0);

  /// Point reads (zero / empty when the metric was never touched).
  uint64_t Counter(std::string_view name) const;
  double Gauge(std::string_view name) const;
  TimerStat Timer(std::string_view name) const;
  Histogram HistogramOf(std::string_view name) const;

  /// Windowed snapshot of sliding histogram `name` (empty when absent).
  Histogram SlidingSnapshot(std::string_view name) const;

  /// Whole-section snapshots for exposition writers (Prometheus, /varz):
  /// copies taken under the registry lock; sliding histograms are
  /// materialized as plain windowed Histograms.
  std::map<std::string, uint64_t, std::less<>> CountersSnapshot() const;
  std::map<std::string, double, std::less<>> GaugesSnapshot() const;
  std::map<std::string, TimerStat, std::less<>> TimersSnapshot() const;
  std::map<std::string, Histogram, std::less<>> HistogramsSnapshot() const;
  std::map<std::string, Histogram, std::less<>> SlidingSnapshots() const;

  /// Serializes every metric as a JSON object with top-level sections
  /// "counters", "gauges", "timers", "histograms" and — when any sliding
  /// histogram exists — "sliding" (windowed snapshots, same schema as
  /// "histograms"). Keys are sorted, so the output is deterministic for a
  /// given state.
  std::string ToJson() const;

  /// The registry installed on this thread by `ScopedMetricsInstall`, or
  /// nullptr. Stages resolve this once at entry (on the calling thread —
  /// pool workers do not inherit it) when their options carry no explicit
  /// registry.
  static MetricsRegistry* Current();

 private:
  friend class ScopedMetricsInstall;

  mutable std::mutex mutex_;
  // std::map keeps ToJson() key order deterministic; std::less<> enables
  // string_view lookups without temporary strings.
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  // unique_ptr keeps Sliding()'s returned pointers stable across inserts.
  std::map<std::string, std::unique_ptr<SlidingHistogram>, std::less<>>
      sliding_;
};

/// Installs `registry` as the thread-local current registry for the
/// lifetime of the object; restores the previous one on destruction.
class ScopedMetricsInstall {
 public:
  explicit ScopedMetricsInstall(MetricsRegistry* registry);
  ~ScopedMetricsInstall();

  ScopedMetricsInstall(const ScopedMetricsInstall&) = delete;
  ScopedMetricsInstall& operator=(const ScopedMetricsInstall&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Explicit registry (from an options struct) if set, else the installed
/// thread-local one, else nullptr. The standard stage-entry resolution.
inline MetricsRegistry* ResolveMetrics(MetricsRegistry* explicit_registry) {
  return explicit_registry != nullptr ? explicit_registry
                                      : MetricsRegistry::Current();
}

/// RAII stage timer with two sinks: records elapsed wall time into
/// `registry` under `name`, and — when a `TraceRecorder` is installed —
/// emits the same interval as a trace span (category "stage", optional
/// numeric args), off a single shared pair of clock reads so metrics and
/// traces can never disagree on a stage boundary. With a null registry
/// and no recorder, constructor and destructor are a pointer test plus
/// one relaxed atomic load each — no clock is read.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, const char* name,
              TraceArg arg0 = TraceArg{}, TraceArg arg1 = TraceArg{})
      : ScopedTimer(registry, TraceRecorder::Current(), name, arg0, arg1) {}

  /// Explicit-recorder overload for context-carried sinks (ExecContext):
  /// both sinks are resolved by the caller, no thread-local/global reads.
  ScopedTimer(MetricsRegistry* registry, TraceRecorder* recorder,
              const char* name, TraceArg arg0 = TraceArg{},
              TraceArg arg1 = TraceArg{})
      : registry_(registry),
        recorder_(recorder),
        name_(name),
        arg0_(arg0),
        arg1_(arg1) {
    if (registry_ != nullptr || recorder_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() {
    if (registry_ == nullptr && recorder_ == nullptr) return;
    const Clock::time_point end = Clock::now();  // one read, both sinks
    if (registry_ != nullptr) {
      registry_->RecordTime(
          name_, std::chrono::duration<double>(end - start_).count());
    }
    if (recorder_ != nullptr) {
      const uint64_t start_ns = ToNs(start_);
      recorder_->RecordSpan(name_, "stage", start_ns, ToNs(end) - start_ns,
                            arg0_, arg1_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  static uint64_t ToNs(Clock::time_point t) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
  }
  MetricsRegistry* registry_;
  TraceRecorder* recorder_;
  const char* name_;
  TraceArg arg0_;
  TraceArg arg1_;
  Clock::time_point start_;
};

/// Writes `registry.ToJson()` to `path` (the CLI/bench `--metrics_out`
/// sink).
Status WriteMetricsJson(const std::string& path,
                        const MetricsRegistry& registry);

#define GTER_METRICS_CONCAT_INNER(a, b) a##b
#define GTER_METRICS_CONCAT(a, b) GTER_METRICS_CONCAT_INNER(a, b)

/// Times the enclosing scope into the thread-local current registry (a
/// no-op when none is installed). After the name, optional TraceArgs are
/// attached to the emitted trace span.
#define GTER_TRACE_SCOPE(...)                                       \
  ::gter::ScopedTimer GTER_METRICS_CONCAT(gter_trace_, __LINE__)(   \
      ::gter::MetricsRegistry::Current(), __VA_ARGS__)

/// Times the enclosing scope into an explicit registry (nullptr → metrics
/// no-op; the trace span still fires when a recorder is installed).
#define GTER_TRACE_SCOPE_TO(registry, ...)                          \
  ::gter::ScopedTimer GTER_METRICS_CONCAT(gter_trace_, __LINE__)(   \
      registry, __VA_ARGS__)

}  // namespace gter

#endif  // GTER_COMMON_METRICS_H_
