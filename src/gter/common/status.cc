#include "gter/common/status.h"

#include <cstdio>

namespace gter {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "GTER_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace gter
