#ifndef GTER_COMMON_JSON_H_
#define GTER_COMMON_JSON_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gter/common/status.h"

namespace gter {

/// Minimal JSON document model + recursive-descent parser, sized for the
/// tooling layer: `gter_cli report` reads back the `--metrics_out` and
/// `--trace_out` files the pipeline emits. Full JSON value grammar
/// (objects, arrays, strings with escapes, numbers, true/false/null);
/// object keys are kept in a sorted map (duplicate keys: last one wins).
/// Not a streaming parser — inputs are whole metric dumps, a few KB.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; trailing non-space input is an error.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one for the kind aborts (GTER_CHECK).
  bool boolean() const;
  double number() const;
  const std::string& string() const;
  const std::vector<JsonValue>& array() const;
  const std::map<std::string, JsonValue>& object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// `Find(key)->number()` with a fallback for absent/non-numeric members.
  double NumberOr(const std::string& key, double fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Reads an entire file into a string (the `gter_cli report` input path).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace gter

#endif  // GTER_COMMON_JSON_H_
