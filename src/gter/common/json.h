#ifndef GTER_COMMON_JSON_H_
#define GTER_COMMON_JSON_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gter/common/status.h"

namespace gter {

/// Minimal JSON document model + recursive-descent parser + compact
/// writer, sized for the tooling and serving layers: `gter_cli report`
/// reads back the `--metrics_out`/`--trace_out` files the pipeline emits,
/// and `gterd` speaks newline-delimited JSON built and serialized through
/// this type. Full JSON value grammar (objects, arrays, strings with
/// escapes, numbers, true/false/null); object keys are kept in a sorted
/// map (duplicate keys: last one wins). Not a streaming parser — inputs
/// are whole documents: metric dumps or single wire frames.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; trailing non-space input is an error.
  static Result<JsonValue> Parse(std::string_view text);

  /// Builder factories for the writer path.
  static JsonValue MakeNull();
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one for the kind aborts (GTER_CHECK).
  bool boolean() const;
  double number() const;
  const std::string& string() const;
  const std::vector<JsonValue>& array() const;
  const std::map<std::string, JsonValue>& object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// `Find(key)->number()` with a fallback for absent/non-numeric members.
  double NumberOr(const std::string& key, double fallback) const;

  /// Object member insert/overwrite; this value must be an object.
  /// Returns *this for chaining.
  JsonValue& Set(std::string key, JsonValue value);

  /// Array element append; this value must be an array.
  void Append(JsonValue value);

  /// Compact single-line serialization (no insignificant whitespace, keys
  /// in sorted order). Strings escape `"`, `\`, and all control bytes, LF
  /// included — one document never spans lines, which is what makes the
  /// newline-delimited wire protocol frameable. Integral numbers within
  /// the exact-double range print without an exponent or decimal point;
  /// other numbers print with %.17g, so Parse(Serialize(v)) reproduces
  /// every finite value bitwise. Non-finite numbers serialize as null
  /// (JSON has no inf/nan).
  std::string Serialize() const;

  /// Appends Serialize() to `out` (the writer's workhorse form).
  void SerializeTo(std::string* out) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Reads an entire file into a string (the `gter_cli report` input path).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace gter

#endif  // GTER_COMMON_JSON_H_
