#include "gter/common/exec_context.h"

#include "gter/common/metrics.h"
#include "gter/common/trace.h"

namespace gter {

MetricsRegistry* ExecContext::metrics_or_ambient() const {
  return metrics != nullptr ? metrics : MetricsRegistry::Current();
}

TraceRecorder* ExecContext::trace_or_ambient() const {
  return trace != nullptr ? trace : TraceRecorder::Current();
}

SimdLevel ExecContext::simd_level() const {
  return simd.has_value() ? *simd : ActiveSimdLevel();
}

const ExecContext& DefaultExecContext() {
  static const ExecContext kAmbient;
  return kAmbient;
}

}  // namespace gter
