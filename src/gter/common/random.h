#ifndef GTER_COMMON_RANDOM_H_
#define GTER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gter {

/// Deterministic, fast PRNG (xoshiro256** seeded via SplitMix64).
/// Every stochastic component in the library (data generation, ITER weight
/// initialization, RSS walks, CliqueRank edge bonuses) draws from an Rng so
/// whole-pipeline runs are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform double in the open interval (0, 1); never returns exactly 0.
  double OpenUniformDouble();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (caches the second deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [1, n] with exponent `s` (>0), via inverse-CDF
  /// over a precomputation-free harmonic sum (O(n) worst case only on first
  /// use per (n, s); callers in datagen use ZipfSampler for hot loops).
  /// Exposed mainly for tests.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      // Value-based swap: also works for std::vector<bool> proxies.
      T tmp = (*items)[i];
      (*items)[i] = (*items)[j];
      (*items)[j] = tmp;
    }
  }

  /// Draws `k` distinct indices from [0, n) in increasing probability-correct
  /// manner (Floyd's algorithm); result order is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Splits off an independently-seeded child generator; children with
  /// distinct `stream_id`s have independent streams.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Precomputed alias-free Zipf sampler over ranks [0, n) with exponent s.
/// Sampling is O(log n) via binary search on the CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  /// Returns a rank in [0, n); rank 0 is the most probable.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gter

#endif  // GTER_COMMON_RANDOM_H_
