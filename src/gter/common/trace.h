#ifndef GTER_COMMON_TRACE_H_
#define GTER_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gter/common/status.h"

namespace gter {

/// Event-level tracing layer (see DESIGN.md §"Tracing").
///
/// Where `MetricsRegistry` aggregates (a timer is one `{count, seconds}`
/// pair per stage), `TraceRecorder` keeps every span: begin/end timestamps
/// off `steady_clock`, a static name and category, and up to two numeric
/// arguments (sweep index, fusion round, chunk size, ...). The recorded
/// timeline exports as Chrome trace-event JSON (`--trace_out`), loadable in
/// Perfetto (https://ui.perfetto.dev) or `chrome://tracing`, with one track
/// per thread — so the schedule of RSS chunks and CliqueRank GEMMs across
/// the ThreadPool is visible, not just their totals.
///
/// Contract (mirrors the metrics layer): with no recorder installed, every
/// instrumentation point is one relaxed atomic load — no clock reads, no
/// locks, no allocation. Recording is lock-free: each thread appends to its
/// own pre-allocated buffer and publishes the new size with a release
/// store; the only mutex is taken once per thread (buffer registration)
/// and per export.
///
/// Span naming convention: the same lowercase `stage/span` slugs the
/// metrics layer uses (`fusion/round`, `iter/sweep`, `rss/chunk`); the
/// category is the coarse subsystem (`stage`, `pool`, `rss`, ...).

/// Optional numeric argument attached to a span. `key` must be a string
/// literal (or otherwise outlive the recorder); a null key means "absent".
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// One completed span. Name/category must be string literals (the recorder
/// stores the pointers, not copies — recording never allocates).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;     // steady_clock time_since_epoch
  uint64_t duration_ns = 0;
  TraceArg arg0;
  TraceArg arg1;
};

namespace internal {
struct TraceThreadLog;
}  // namespace internal

/// Collects spans from any number of threads into per-thread buffers.
/// Thread-safe for concurrent RecordSpan and export; a thread's buffer has
/// fixed capacity (events past it are counted as dropped, never resized).
class TraceRecorder {
 public:
  /// Default per-thread buffer: 64k events × 64 bytes = 4 MiB per
  /// recording thread, enough for every bundled workload.
  static constexpr size_t kDefaultCapacityPerThread = size_t{1} << 16;

  explicit TraceRecorder(
      size_t capacity_per_thread = kDefaultCapacityPerThread);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends one completed span for the calling thread. Lock-free after
  /// the thread's first call (which registers its buffer under a mutex).
  /// Timestamps are `steady_clock` nanoseconds as returned by `NowNs()`.
  void RecordSpan(const char* name, const char* category, uint64_t start_ns,
                  uint64_t duration_ns, TraceArg arg0 = TraceArg{},
                  TraceArg arg1 = TraceArg{});

  /// Total spans currently recorded across all threads.
  size_t event_count() const;

  /// Spans discarded because a thread's buffer was full.
  uint64_t dropped_events() const;

  /// Attaches a process-level label exported as an "M" (metadata)
  /// `process_labels` event — the channel run context rides on (active
  /// SIMD level, detected CPU features, ...). Labels show next to the
  /// process name in Perfetto. Thread-safe; duplicates are kept in call
  /// order.
  void AddProcessLabel(std::string label);

  /// Serializes the timeline as Chrome trace-event JSON: an object with a
  /// "traceEvents" array of "X" (complete) events plus "M" (metadata)
  /// thread-name events; "ts"/"dur" are microseconds relative to recorder
  /// construction. Safe to call while other threads are still recording
  /// (their unpublished tail is simply not included).
  std::string ToChromeJson() const;

  /// Copies out every published span across all threads, in per-thread
  /// recording order. The raw-event counterpart of `ToChromeJson` — the
  /// server's slow-request ring uses it to lift a per-request recorder's
  /// spans into its bounded buffer. Same concurrency contract as export.
  std::vector<TraceEvent> Snapshot() const;

  /// The recorder installed by `ScopedTraceInstall`, or nullptr. One
  /// relaxed atomic load — the whole cost of disabled tracing. Unlike the
  /// metrics registry this slot is process-global, so ThreadPool workers
  /// see it too (their spans land on their own tracks).
  static TraceRecorder* Current();

  /// `steady_clock` time_since_epoch in nanoseconds — the time base every
  /// recorded span uses.
  static uint64_t NowNs();

 private:
  internal::TraceThreadLog* LogForThisThread();

  const size_t capacity_per_thread_;
  const uint64_t id_;        // process-unique, never reused
  const uint64_t epoch_ns_;  // NowNs() at construction; export time base
  mutable std::mutex logs_mutex_;
  std::vector<std::unique_ptr<internal::TraceThreadLog>> logs_;
  std::vector<std::string> process_labels_;  // guarded by logs_mutex_
};

/// Installs `recorder` as the process-global current recorder for the
/// lifetime of the object; restores the previous one on destruction.
/// Install from the coordinating thread around the run (the CLI/bench
/// pattern); concurrent installs from different threads are not supported.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(TraceRecorder* recorder);
  ~ScopedTraceInstall();

  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;

 private:
  TraceRecorder* previous_;
};

/// Names the calling thread's track in every recorder it subsequently
/// registers with ("main", "pool-worker-3"). Threads that never call this
/// are exported as "thread-<tid>".
void SetCurrentThreadTraceName(std::string name);

/// RAII span recorded into the installed recorder (no-op, no clock read,
/// when none is installed). Name/category/arg keys must be string literals.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name, const char* category = "span",
                           TraceArg arg0 = TraceArg{},
                           TraceArg arg1 = TraceArg{})
      : recorder_(TraceRecorder::Current()),
        name_(name),
        category_(category),
        arg0_(arg0),
        arg1_(arg1) {
    if (recorder_ != nullptr) start_ns_ = TraceRecorder::NowNs();
  }
  ~ScopedTraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->RecordSpan(name_, category_, start_ns_,
                          TraceRecorder::NowNs() - start_ns_, arg0_, arg1_);
  }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  TraceArg arg0_;
  TraceArg arg1_;
  uint64_t start_ns_ = 0;
};

/// Writes `recorder.ToChromeJson()` to `path` (the `--trace_out` sink).
Status WriteTraceJson(const std::string& path, const TraceRecorder& recorder);

#define GTER_TRACE_CONCAT_INNER(a, b) a##b
#define GTER_TRACE_CONCAT(a, b) GTER_TRACE_CONCAT_INNER(a, b)

/// Trace-only span over the enclosing scope (no metrics timer): name, then
/// optional category and up to two TraceArgs.
#define GTER_TRACE_SPAN(...)                                     \
  ::gter::ScopedTraceSpan GTER_TRACE_CONCAT(gter_span_, __LINE__)(__VA_ARGS__)

}  // namespace gter

#endif  // GTER_COMMON_TRACE_H_
