#include "gter/common/parse_number.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace gter {
namespace {

Status NumberError(std::string_view text, const char* what) {
  return Status::InvalidArgument(std::string(what) + ": '" +
                                 std::string(text) + "'");
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view text) {
  // strtoll needs NUL termination; inputs here are short tokens.
  std::string buf(text);
  if (buf.empty()) return NumberError(text, "empty integer");
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return NumberError(text, "malformed integer");
  }
  if (errno == ERANGE) {
    return NumberError(text, "integer out of range");
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  std::string buf(text);
  if (buf.empty()) return NumberError(text, "empty integer");
  // strtoull "accepts" a leading minus by negating modulo 2^64 — reject it
  // before it can wrap ("-1" must not become 18446744073709551615).
  if (buf[0] == '-') return NumberError(text, "negative unsigned integer");
  errno = 0;
  char* end = nullptr;
  uint64_t value = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return NumberError(text, "malformed integer");
  }
  if (errno == ERANGE) {
    return NumberError(text, "integer out of range");
  }
  return value;
}

Result<uint32_t> ParseUint32(std::string_view text) {
  auto wide = ParseUint64(text);
  if (!wide.ok()) return wide.status();
  if (wide.value() > std::numeric_limits<uint32_t>::max()) {
    return NumberError(text, "integer out of range");
  }
  return static_cast<uint32_t>(wide.value());
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(text);
  if (buf.empty()) return NumberError(text, "empty number");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return NumberError(text, "malformed number");
  }
  // ERANGE covers both directions; only overflow (±HUGE_VAL) is a lie about
  // the input. Underflow returns the nearest denormal (or zero), which is
  // exactly what a %.17g dump of a denormal should load back as.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return NumberError(text, "number out of range");
  }
  return value;
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace gter
