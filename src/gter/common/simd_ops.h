#ifndef GTER_COMMON_SIMD_OPS_H_
#define GTER_COMMON_SIMD_OPS_H_

#include <cstddef>
#include <cstdint>

#include "gter/common/cpu.h"

namespace gter {

/// Dispatched gather-reduce primitives — the inner loops of the ITER
/// propagation sweeps (and any other adjacency-list accumulation). Each has
/// a scalar twin that accumulates strictly left-to-right (the exact
/// pre-SIMD summation) and an AVX2 twin using gathers with multi-
/// accumulator unrolling, whose reassociated sum agrees with the scalar
/// one to ≤1e-12 relative error (see DESIGN.md §"SIMD dispatch &
/// determinism contract"). For a fixed SIMD level both are pure functions
/// of their inputs — results never depend on thread count or call site.

/// Σ_i values[idx[i]].
double IndexedSum(const double* values, const uint32_t* idx, size_t n);

/// Σ_i weights[idx[i]] · values[idx[i]] (both arrays share the index).
double IndexedWeightedSum(const double* weights, const double* values,
                          const uint32_t* idx, size_t n);

/// Scalar reference twins (always available; what `--simd=scalar` runs).
double IndexedSumScalar(const double* values, const uint32_t* idx, size_t n);
double IndexedWeightedSumScalar(const double* weights, const double* values,
                                const uint32_t* idx, size_t n);

/// Function-pointer resolution for hot loops that want to pay the level
/// check once per stage instead of once per call.
using IndexedSumFn = double (*)(const double*, const uint32_t*, size_t);
using IndexedWeightedSumFn = double (*)(const double*, const double*,
                                        const uint32_t*, size_t);
IndexedSumFn ResolveIndexedSum(SimdLevel level);
IndexedWeightedSumFn ResolveIndexedWeightedSum(SimdLevel level);

namespace internal {
#if GTER_HAVE_AVX2
double IndexedSumAvx2(const double* values, const uint32_t* idx, size_t n);
double IndexedWeightedSumAvx2(const double* weights, const double* values,
                              const uint32_t* idx, size_t n);
#endif
#if GTER_HAVE_AVX512
double IndexedSumAvx512(const double* values, const uint32_t* idx, size_t n);
double IndexedWeightedSumAvx512(const double* weights, const double* values,
                                const uint32_t* idx, size_t n);
#endif
}  // namespace internal

}  // namespace gter

#endif  // GTER_COMMON_SIMD_OPS_H_
