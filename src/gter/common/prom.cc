#include "gter/common/prom.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>

namespace gter {
namespace {

void AppendDouble(std::string* out, double value) {
  if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (std::isnan(value)) {
    *out += "NaN";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

/// Reserves `name` in `taken`, appending `_2`, `_3`, … on a collision
/// (possible only if two distinct slugs sanitize to the same name; the
/// metric-name lint keeps the declared slug set collision-free).
std::string ClaimName(std::string name, std::set<std::string>* taken,
                      std::string* out) {
  if (taken->insert(name).second) return name;
  for (int suffix = 2;; ++suffix) {
    std::string candidate = name + "_" + std::to_string(suffix);
    if (taken->insert(candidate).second) {
      *out += "# NOTE " + candidate + " renamed from " + name +
              " (post-sanitization collision)\n";
      return candidate;
    }
  }
}

void AppendHelpType(std::string* out, const std::string& name,
                    std::string_view slug, const char* type) {
  *out += "# HELP " + name + " gter metric ";
  // Slugs are [a-z0-9_/] by the lint; escape defensively anyway.
  for (char c : slug) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  *out += "\n# TYPE " + name + " ";
  *out += type;
  out->push_back('\n');
}

void AppendHistogramFamily(std::string* out, const std::string& name,
                           std::string_view slug, const Histogram& h) {
  AppendHelpType(out, name, slug, "histogram");
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;  // sparse: monotonicity is preserved
    cumulative += h.buckets[i];
    *out += name + "_bucket{le=\"";
    AppendDouble(out, Histogram::BucketUpperBound(i));
    *out += "\"} ";
    AppendUint(out, cumulative);
    out->push_back('\n');
  }
  *out += name + "_bucket{le=\"+Inf\"} ";
  AppendUint(out, h.count);
  out->push_back('\n');
  *out += name + "_sum ";
  AppendDouble(out, h.sum);
  out->push_back('\n');
  *out += name + "_count ";
  AppendUint(out, h.count);
  out->push_back('\n');
}

/// Parses one exposition sample line `<series> <value>`; returns true and
/// fills `value` when `line` is exactly series `series`.
bool ParseSample(std::string_view line, std::string_view series,
                 double* value) {
  if (line.size() <= series.size() ||
      line.substr(0, series.size()) != series || line[series.size()] != ' ') {
    return false;
  }
  const std::string text(line.substr(series.size() + 1));
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != text.c_str();
}

}  // namespace

std::string PromSanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry& registry,
                                 std::string_view prefix) {
  // Section snapshots are taken one lock each; a scrape racing writers
  // sees each section internally consistent, which is all Prometheus
  // semantics require.
  const auto counters = registry.CountersSnapshot();
  const auto gauges = registry.GaugesSnapshot();
  const auto timers = registry.TimersSnapshot();
  const auto histograms = registry.HistogramsSnapshot();
  const auto sliding = registry.SlidingSnapshots();

  std::string out;
  std::set<std::string> taken;
  const std::string p(prefix);

  // Claim histogram family names first — including the derived _bucket/
  // _sum/_count series — so a scalar metric that sanitizes to e.g.
  // `x_count` is the one renamed, never a histogram's derived series
  // (renaming those would break the family grouping scrapers rely on).
  const auto claim_family = [&](const std::string& slug) {
    const std::string name = ClaimName(p + PromSanitizeName(slug), &taken, &out);
    taken.insert(name + "_bucket");
    taken.insert(name + "_sum");
    taken.insert(name + "_count");
    return name;
  };
  std::vector<std::string> histogram_names;
  histogram_names.reserve(histograms.size());
  for (const auto& [slug, histogram] : histograms) {
    (void)histogram;
    histogram_names.push_back(claim_family(slug));
  }
  std::vector<std::string> sliding_names;
  sliding_names.reserve(sliding.size());
  for (const auto& [slug, snapshot] : sliding) {
    (void)snapshot;
    sliding_names.push_back(claim_family(slug));
  }

  for (const auto& [slug, value] : counters) {
    const std::string name = ClaimName(p + PromSanitizeName(slug), &taken, &out);
    AppendHelpType(&out, name, slug, "counter");
    out += name + " ";
    AppendUint(&out, value);
    out.push_back('\n');
  }
  for (const auto& [slug, value] : gauges) {
    const std::string name = ClaimName(p + PromSanitizeName(slug), &taken, &out);
    AppendHelpType(&out, name, slug, "gauge");
    out += name + " ";
    AppendDouble(&out, value);
    out.push_back('\n');
  }
  for (const auto& [slug, stat] : timers) {
    const std::string base = p + PromSanitizeName(slug);
    const std::string count_name = ClaimName(base + "_count", &taken, &out);
    AppendHelpType(&out, count_name, slug, "counter");
    out += count_name + " ";
    AppendUint(&out, stat.count);
    out.push_back('\n');
    const std::string seconds_name =
        ClaimName(base + "_seconds_total", &taken, &out);
    AppendHelpType(&out, seconds_name, slug, "counter");
    out += seconds_name + " ";
    AppendDouble(&out, stat.seconds);
    out.push_back('\n');
  }
  size_t family = 0;
  for (const auto& [slug, histogram] : histograms) {
    AppendHistogramFamily(&out, histogram_names[family++], slug, histogram);
  }
  family = 0;
  for (const auto& [slug, snapshot] : sliding) {
    AppendHistogramFamily(&out, sliding_names[family++], slug, snapshot);
  }
  return out;
}

bool FindPromHistogram(std::string_view text, std::string_view name,
                       PromParsedHistogram* out) {
  *out = PromParsedHistogram{};
  const std::string bucket_prefix = std::string(name) + "_bucket{le=\"";
  const std::string sum_series = std::string(name) + "_sum";
  const std::string count_series = std::string(name) + "_count";
  bool saw_count = false;
  bool saw_sum = false;

  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    if (line.size() > bucket_prefix.size() &&
        line.substr(0, bucket_prefix.size()) == bucket_prefix) {
      const size_t close = line.find("\"} ", bucket_prefix.size());
      if (close == std::string_view::npos) return false;
      const std::string le_text(
          line.substr(bucket_prefix.size(), close - bucket_prefix.size()));
      double le = 0.0;
      if (le_text == "+Inf") {
        le = std::numeric_limits<double>::infinity();
      } else {
        char* end = nullptr;
        le = std::strtod(le_text.c_str(), &end);
        if (end == le_text.c_str()) return false;
      }
      const std::string value_text(line.substr(close + 3));
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str()) return false;
      out->cumulative.emplace_back(le, static_cast<uint64_t>(value));
      continue;
    }
    double value = 0.0;
    if (ParseSample(line, sum_series, &value)) {
      out->sum = value;
      saw_sum = true;
    } else if (ParseSample(line, count_series, &value)) {
      out->count = static_cast<uint64_t>(value);
      saw_count = true;
    }
  }
  return saw_sum && saw_count && !out->cumulative.empty();
}

double PromHistogramQuantile(const PromParsedHistogram& h, double q) {
  if (h.count == 0 || h.cumulative.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(h.count);
  double lower = 0.0;
  uint64_t below = 0;
  for (const auto& [le, cum] : h.cumulative) {
    if (static_cast<double>(cum) >= target && cum > below) {
      if (std::isinf(le)) return lower;  // tail bucket: best bound we have
      const double in_bucket = static_cast<double>(cum - below);
      const double fraction =
          (target - static_cast<double>(below)) / in_bucket;
      return lower + fraction * (le - lower);
    }
    if (cum > below) {
      below = cum;
      lower = le;
    }
  }
  return lower;
}

}  // namespace gter
