#ifndef GTER_COMMON_PARSE_NUMBER_H_
#define GTER_COMMON_PARSE_NUMBER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "gter/common/status.h"

namespace gter {

/// Strict, checked text ↔ number conversions for every I/O boundary in the
/// library (flag parsing, CSV model files, the wire protocol). The strtol
/// family alone is a trap at such boundaries: with a null end pointer
/// "abc" parses as 0, "12x" as 12, and out-of-range inputs silently clamp
/// (strtoll) or wrap (strtoull given a leading '-'). These helpers reject
/// all of that with InvalidArgument instead of guessing.
///
/// Contract common to all three parsers:
///  * the entire input must be consumed — no trailing characters;
///  * the empty string is an error;
///  * out-of-range magnitudes are an error, never a clamp. For doubles
///    only *overflow* errors; gradual underflow to a denormal (or zero)
///    is a faithful nearest representation and is accepted, so every
///    value FormatDouble emits loads back.

/// Parses a base-10 signed integer.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a base-10 unsigned integer. A leading '-' is an error (strtoull
/// would silently wrap it to a huge positive value).
Result<uint64_t> ParseUint64(std::string_view text);

/// ParseUint64 restricted to the uint32_t range (record ids, source
/// indices, entity ids).
Result<uint32_t> ParseUint32(std::string_view text);

/// Parses a double (strtod grammar: decimal/scientific, inf/nan).
/// Overflow is an error; underflow is not (see above).
Result<double> ParseDouble(std::string_view text);

/// Round-trippable decimal form of `value`: %.17g guarantees
/// ParseDouble(FormatDouble(v)) == v bitwise for every finite double
/// (std::to_string's fixed 6 digits does not).
std::string FormatDouble(double value);

}  // namespace gter

#endif  // GTER_COMMON_PARSE_NUMBER_H_
