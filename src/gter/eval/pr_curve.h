#ifndef GTER_EVAL_PR_CURVE_H_
#define GTER_EVAL_PR_CURVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gter {

/// One operating point of a scorer.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Precision–recall curve of a score vector against per-pair labels, one
/// point per distinct predicted-set size, downsampled to at most
/// `max_points` (always keeping the first and last). `total_positives`
/// counts every matching pair of the universe, so recall accounts for
/// matches outside the candidate set.
std::vector<PrPoint> ComputePrCurve(const std::vector<double>& scores,
                                    const std::vector<bool>& labels,
                                    uint64_t total_positives,
                                    size_t max_points = 200);

/// Average precision (area under the PR curve by the step-wise
/// interpolation standard in IR): Σ_k P(k)·Δ I(k) / total_positives where
/// the sum runs over candidates in descending score order.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<bool>& labels,
                        uint64_t total_positives);

}  // namespace gter

#endif  // GTER_EVAL_PR_CURVE_H_
