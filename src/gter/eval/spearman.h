#ifndef GTER_EVAL_SPEARMAN_H_
#define GTER_EVAL_SPEARMAN_H_

#include <vector>

namespace gter {

/// Average ranks of `values` (1-based; ties share the mean of the rank
/// block, as standard for Spearman with ties).
std::vector<double> AverageRanks(const std::vector<double>& values);

/// Spearman rank correlation coefficient between two equally-sized vectors,
/// computed as Pearson correlation of average ranks (tie-robust). Returns 0
/// for vectors of size < 2 or zero rank variance.
double SpearmanRho(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace gter

#endif  // GTER_EVAL_SPEARMAN_H_
