#include "gter/eval/threshold_sweep.h"

#include <algorithm>

#include "gter/common/status.h"

namespace gter {
namespace {

SweepResult MakeResult(double threshold, uint64_t tp, uint64_t fp,
                       uint64_t total_positives) {
  Confusion c;
  c.true_positives = tp;
  c.false_positives = fp;
  c.false_negatives = total_positives - tp;
  SweepResult r;
  r.threshold = threshold;
  r.precision = c.Precision();
  r.recall = c.Recall();
  r.f1 = c.F1();
  return r;
}

}  // namespace

SweepResult BestF1Threshold(const std::vector<double>& scores,
                            const std::vector<bool>& labels,
                            uint64_t total_positives, size_t num_levels) {
  GTER_CHECK(scores.size() == labels.size());
  GTER_CHECK(num_levels >= 2);
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  if (max_score <= 0.0) max_score = 1.0;

  // Sort pairs by score descending once; then every quantized threshold is a
  // prefix of the sorted order — one pass computes all 1000 candidates.
  std::vector<uint32_t> order(scores.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });

  SweepResult best;
  best.threshold = max_score + 1.0;  // "predict nothing" baseline, F1 = 0
  uint64_t tp = 0, fp = 0;
  size_t cursor = 0;
  // Thresholds descend from max to 0 so predicted sets grow monotonically.
  for (size_t level = num_levels; level-- > 0;) {
    double threshold =
        max_score * static_cast<double>(level) / static_cast<double>(num_levels - 1);
    while (cursor < order.size() && scores[order[cursor]] >= threshold) {
      if (labels[order[cursor]]) {
        ++tp;
      } else {
        ++fp;
      }
      ++cursor;
    }
    SweepResult r = MakeResult(threshold, tp, fp, total_positives);
    if (r.f1 > best.f1) best = r;
  }
  return best;
}

SweepResult EvaluateAtThreshold(const std::vector<double>& scores,
                                const std::vector<bool>& labels,
                                uint64_t total_positives, double threshold) {
  GTER_CHECK(scores.size() == labels.size());
  uint64_t tp = 0, fp = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) {
      if (labels[i]) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }
  return MakeResult(threshold, tp, fp, total_positives);
}

}  // namespace gter
