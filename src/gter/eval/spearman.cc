#include "gter/eval/spearman.h"

#include <algorithm>
#include <cmath>

#include "gter/common/status.h"

namespace gter {

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double mean_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanRho(const std::vector<double>& x,
                   const std::vector<double>& y) {
  GTER_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  std::vector<double> rx = AverageRanks(x);
  std::vector<double> ry = AverageRanks(y);
  double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = rx[i] - mean;
    double dy = ry[i] - mean;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

}  // namespace gter
