#ifndef GTER_EVAL_THRESHOLD_SWEEP_H_
#define GTER_EVAL_THRESHOLD_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/eval/confusion.h"

namespace gter {

/// Result of an optimal-threshold search.
struct SweepResult {
  double threshold = 0.0;
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// The paper's §VII-C protocol for threshold-based methods: quantize
/// [0, max score] into `num_levels` discrete thresholds and return the one
/// with the highest F1 ("an upper bound of manually tuned parameters").
/// `scores[p]`/`labels[p]` are per candidate pair; a pair matches when its
/// score is >= the threshold. `total_positives` counts every matching pair
/// of the universe (see TotalPositives).
SweepResult BestF1Threshold(const std::vector<double>& scores,
                            const std::vector<bool>& labels,
                            uint64_t total_positives,
                            size_t num_levels = 1000);

/// F1/precision/recall at one fixed threshold.
SweepResult EvaluateAtThreshold(const std::vector<double>& scores,
                                const std::vector<bool>& labels,
                                uint64_t total_positives, double threshold);

}  // namespace gter

#endif  // GTER_EVAL_THRESHOLD_SWEEP_H_
