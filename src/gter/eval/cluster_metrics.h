#ifndef GTER_EVAL_CLUSTER_METRICS_H_
#define GTER_EVAL_CLUSTER_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/er/ground_truth.h"

namespace gter {

/// Pairwise clustering quality: precision/recall/F1 over all unordered
/// record pairs, comparing a predicted labeling to the ground truth.
struct ClusterEvaluation {
  double pairwise_precision = 0.0;
  double pairwise_recall = 0.0;
  double pairwise_f1 = 0.0;
  /// Adjusted Rand Index in [-1, 1].
  double adjusted_rand_index = 0.0;
  size_t num_predicted_clusters = 0;
};

/// Evaluates predicted cluster labels (one per record) against the truth.
ClusterEvaluation EvaluateClustering(const std::vector<uint32_t>& predicted,
                                     const GroundTruth& truth);

/// Builds clusters from match decisions by transitive closure: every
/// predicted-matching pair is merged. Returns one dense label per record.
std::vector<uint32_t> ClustersFromMatches(
    size_t num_records,
    const std::vector<std::pair<uint32_t, uint32_t>>& matches);

}  // namespace gter

#endif  // GTER_EVAL_CLUSTER_METRICS_H_
