#include "gter/eval/pr_curve.h"

#include <algorithm>
#include <numeric>

#include "gter/common/status.h"

namespace gter {

std::vector<PrPoint> ComputePrCurve(const std::vector<double>& scores,
                                    const std::vector<bool>& labels,
                                    uint64_t total_positives,
                                    size_t max_points) {
  GTER_CHECK(scores.size() == labels.size());
  GTER_CHECK(max_points >= 2);
  std::vector<uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });

  std::vector<PrPoint> full;
  uint64_t tp = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    tp += labels[order[k]];
    // Emit a point at each threshold boundary (last of a tie group).
    if (k + 1 < order.size() &&
        scores[order[k + 1]] == scores[order[k]]) {
      continue;
    }
    PrPoint point;
    point.threshold = scores[order[k]];
    point.precision = static_cast<double>(tp) / static_cast<double>(k + 1);
    point.recall = total_positives == 0
                       ? 0.0
                       : static_cast<double>(tp) /
                             static_cast<double>(total_positives);
    full.push_back(point);
  }
  if (full.size() <= max_points) return full;
  std::vector<PrPoint> sampled;
  sampled.reserve(max_points);
  double step = static_cast<double>(full.size() - 1) /
                static_cast<double>(max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    sampled.push_back(full[static_cast<size_t>(i * step)]);
  }
  sampled.back() = full.back();
  return sampled;
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<bool>& labels,
                        uint64_t total_positives) {
  GTER_CHECK(scores.size() == labels.size());
  if (total_positives == 0) return 0.0;
  std::vector<uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });
  uint64_t tp = 0;
  double ap = 0.0;
  for (size_t k = 0; k < order.size(); ++k) {
    if (!labels[order[k]]) continue;
    ++tp;
    ap += static_cast<double>(tp) / static_cast<double>(k + 1);
  }
  return ap / static_cast<double>(total_positives);
}

}  // namespace gter
