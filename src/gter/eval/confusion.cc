#include "gter/eval/confusion.h"

#include "gter/common/status.h"

namespace gter {

std::vector<bool> LabelPairs(const PairSpace& pairs,
                             const GroundTruth& truth) {
  std::vector<bool> labels(pairs.size());
  for (PairId p = 0; p < pairs.size(); ++p) {
    const RecordPair& rp = pairs.pair(p);
    labels[p] = truth.IsMatch(rp.a, rp.b);
  }
  return labels;
}

uint64_t TotalPositives(const Dataset& dataset, const GroundTruth& truth) {
  if (dataset.num_sources() == 2) {
    std::vector<uint32_t> source_of;
    source_of.reserve(dataset.size());
    for (const Record& r : dataset.records()) source_of.push_back(r.source);
    return truth.CountMatchingCrossPairs(source_of);
  }
  return truth.CountMatchingPairs();
}

Confusion EvaluatePairPredictions(const PairSpace& pairs,
                                  const std::vector<bool>& predicted,
                                  const std::vector<bool>& labels,
                                  uint64_t total_positives) {
  GTER_CHECK(predicted.size() == pairs.size());
  GTER_CHECK(labels.size() == pairs.size());
  Confusion c;
  for (PairId p = 0; p < pairs.size(); ++p) {
    if (predicted[p]) {
      if (labels[p]) {
        ++c.true_positives;
      } else {
        ++c.false_positives;
      }
    }
  }
  GTER_CHECK(total_positives >= c.true_positives);
  c.false_negatives = total_positives - c.true_positives;
  return c;
}

}  // namespace gter
