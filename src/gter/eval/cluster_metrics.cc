#include "gter/eval/cluster_metrics.h"

#include <algorithm>
#include <unordered_map>

#include "gter/common/status.h"
#include "gter/graph/union_find.h"

namespace gter {
namespace {

uint64_t PairsOf(uint64_t k) { return k * (k - 1) / 2; }

}  // namespace

ClusterEvaluation EvaluateClustering(const std::vector<uint32_t>& predicted,
                                     const GroundTruth& truth) {
  GTER_CHECK(predicted.size() == truth.num_records());
  const size_t n = predicted.size();

  // Contingency: cells[(pred, true)] = co-occurrence count.
  std::unordered_map<uint64_t, uint64_t> cells;
  std::unordered_map<uint32_t, uint64_t> pred_sizes;
  std::unordered_map<uint32_t, uint64_t> true_sizes;
  for (size_t r = 0; r < n; ++r) {
    uint32_t pc = predicted[r];
    uint32_t tc = truth.entity_of(static_cast<RecordId>(r));
    ++cells[(static_cast<uint64_t>(pc) << 32) | tc];
    ++pred_sizes[pc];
    ++true_sizes[tc];
  }

  uint64_t same_both = 0;  // pairs together in both clusterings (TP)
  for (const auto& [key, count] : cells) same_both += PairsOf(count);
  uint64_t same_pred = 0;
  for (const auto& [key, count] : pred_sizes) same_pred += PairsOf(count);
  uint64_t same_true = 0;
  for (const auto& [key, count] : true_sizes) same_true += PairsOf(count);

  ClusterEvaluation eval;
  eval.num_predicted_clusters = pred_sizes.size();
  eval.pairwise_precision =
      same_pred == 0 ? 0.0 : static_cast<double>(same_both) / same_pred;
  eval.pairwise_recall =
      same_true == 0 ? 0.0 : static_cast<double>(same_both) / same_true;
  double pr = eval.pairwise_precision + eval.pairwise_recall;
  eval.pairwise_f1 =
      pr == 0.0 ? 0.0
                : 2.0 * eval.pairwise_precision * eval.pairwise_recall / pr;

  // Adjusted Rand Index.
  double total_pairs = static_cast<double>(PairsOf(n));
  if (total_pairs > 0.0) {
    double index = static_cast<double>(same_both);
    double expected = static_cast<double>(same_pred) *
                      static_cast<double>(same_true) / total_pairs;
    double max_index =
        (static_cast<double>(same_pred) + static_cast<double>(same_true)) / 2.0;
    double denom = max_index - expected;
    eval.adjusted_rand_index = denom == 0.0 ? 0.0 : (index - expected) / denom;
  }
  return eval;
}

std::vector<uint32_t> ClustersFromMatches(
    size_t num_records,
    const std::vector<std::pair<uint32_t, uint32_t>>& matches) {
  UnionFind uf(num_records);
  for (const auto& [a, b] : matches) uf.Union(a, b);
  return uf.ComponentLabels();
}

}  // namespace gter
