#ifndef GTER_EVAL_CONFUSION_H_
#define GTER_EVAL_CONFUSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gter/er/ground_truth.h"
#include "gter/er/pair_space.h"

namespace gter {

/// Pairwise confusion counts over the candidate universe. Matching pairs
/// that were never candidates (no shared term) count as false negatives —
/// the paper's F1 is over all record pairs, not just materialized ones.
struct Confusion {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t false_negatives = 0;

  double Precision() const {
    uint64_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    uint64_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Per-candidate-pair ground-truth labels: labels[p] is true iff pair p's
/// records refer to the same entity.
std::vector<bool> LabelPairs(const PairSpace& pairs, const GroundTruth& truth);

/// Counts matching pairs in the candidate *universe* (all cross-source
/// pairs for 2-source data, all unordered pairs otherwise), including pairs
/// not materialized in `pairs`.
uint64_t TotalPositives(const Dataset& dataset, const GroundTruth& truth);

/// Builds the confusion counts for a prediction over the candidate pairs.
/// `predicted[p]` is the decision for candidate pair p; `total_positives`
/// is TotalPositives(...) so that non-candidate matches become FNs.
Confusion EvaluatePairPredictions(const PairSpace& pairs,
                                  const std::vector<bool>& predicted,
                                  const std::vector<bool>& labels,
                                  uint64_t total_positives);

}  // namespace gter

#endif  // GTER_EVAL_CONFUSION_H_
