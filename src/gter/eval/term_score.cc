#include "gter/eval/term_score.h"

namespace gter {

std::vector<double> OracleTermScores(const BipartiteGraph& graph,
                                     const PairSpace& pairs,
                                     const GroundTruth& truth) {
  std::vector<double> scores(graph.num_terms(), 0.0);
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    auto adjacent = graph.PairsOfTerm(t);
    if (adjacent.empty()) continue;
    size_t matching = 0;
    for (PairId p : adjacent) {
      const RecordPair& rp = pairs.pair(p);
      if (truth.IsMatch(rp.a, rp.b)) ++matching;
    }
    scores[t] =
        static_cast<double>(matching) / static_cast<double>(adjacent.size());
  }
  return scores;
}

}  // namespace gter
