#ifndef GTER_EVAL_TERM_SCORE_H_
#define GTER_EVAL_TERM_SCORE_H_

#include <vector>

#include "gter/er/ground_truth.h"
#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"

namespace gter {

/// The oracle discrimination score of §VII-E:
///
///   score(t) = (Σ_{(r_i,r_j) adjacent to t} I(r_i, r_j)) / P_t
///
/// where I = 1 iff the pair refers to the same entity and P_t is the number
/// of pair nodes connected to t in the bipartite graph. score(t) = 1 means
/// every pair sharing t is a match (highly discriminative term); values
/// near 0 mean a common term. Terms with no adjacent pair get score 0.
/// Used to validate ITER's learned weights (Table IV, Figure 4) — never by
/// the resolvers.
std::vector<double> OracleTermScores(const BipartiteGraph& graph,
                                     const PairSpace& pairs,
                                     const GroundTruth& truth);

}  // namespace gter

#endif  // GTER_EVAL_TERM_SCORE_H_
