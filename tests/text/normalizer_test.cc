#include "gter/text/normalizer.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(NormalizerTest, LowercasesAscii) {
  EXPECT_EQ(Normalize("HeLLo WoRLD"), "hello world");
}

TEST(NormalizerTest, PunctuationBecomesSeparator) {
  EXPECT_EQ(Normalize("ace-hardware, inc."), "ace hardware inc");
}

TEST(NormalizerTest, DigitsAreKept) {
  EXPECT_EQ(Normalize("Sony PSLX350H (310) 246-1501"),
            "sony pslx350h 310 246 1501");
}

TEST(NormalizerTest, WhitespaceCollapsed) {
  EXPECT_EQ(Normalize("  a \t b\n\nc  "), "a b c");
}

TEST(NormalizerTest, EmptyInput) { EXPECT_EQ(Normalize(""), ""); }

TEST(NormalizerTest, OnlyPunctuation) { EXPECT_EQ(Normalize("!!!...---"), ""); }

TEST(NormalizerTest, OptionsCanDisableLowercasing) {
  NormalizerOptions options;
  options.lowercase = false;
  EXPECT_EQ(Normalize("AbC", options), "AbC");
}

TEST(NormalizerTest, OptionsCanKeepPunctuation) {
  NormalizerOptions options;
  options.strip_punctuation = false;
  EXPECT_EQ(Normalize("a-b", options), "a-b");
}

TEST(NormalizerTest, OptionsCanKeepWhitespace) {
  NormalizerOptions options;
  options.collapse_whitespace = false;
  EXPECT_EQ(Normalize("a  b", options), "a  b");
}

}  // namespace
}  // namespace gter
