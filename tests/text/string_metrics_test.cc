#include "gter/text/string_metrics.h"

#include <string>
#include <tuple>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
}

TEST(JaroTest, KnownValue) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(JaroTest, EmptyHandling) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  double jaro = JaroSimilarity("martha", "marhta");
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(JaroWinklerTest, NoPrefixNoBoost) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xbc"),
                   JaroSimilarity("abc", "xbc"));
}

TEST(SetMetricsTest, SortedIntersection) {
  std::vector<uint32_t> a = {1, 3, 5, 7};
  std::vector<uint32_t> b = {3, 4, 5, 8};
  EXPECT_EQ(SortedIntersectionSize(a, b), 2u);
  auto inter = SortedIntersection(a, b);
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_EQ(inter[0], 3u);
  EXPECT_EQ(inter[1], 5u);
}

TEST(SetMetricsTest, JaccardKnownValues) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> b = {2, 3, 4};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

TEST(SetMetricsTest, OverlapCoefficient) {
  std::vector<uint32_t> a = {1, 2};
  std::vector<uint32_t> b = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, b), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(SetMetricsTest, DiceCoefficient) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> b = {2, 3, 4};
  EXPECT_NEAR(DiceCoefficient(a, b), 2.0 * 2 / 6, 1e-12);
}

TEST(TrigramJaccardTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("hello world", "hello world"), 1.0);
}

TEST(TrigramJaccardTest, TypoRobustness) {
  // One typo should keep similarity high while disjoint strings score 0.
  double close = TrigramJaccard("panasonic", "panasomic");
  double far = TrigramJaccard("panasonic", "whirlpool");
  EXPECT_GT(close, 0.35);
  EXPECT_LT(far, 0.05);
}

TEST(TrigramJaccardTest, EmptyAndShortStrings) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("ab", "ab"), 1.0);
}

TEST(MongeElkanTest, ReorderedTokensStaySimilar) {
  std::vector<std::string> a = {"golden", "dragon", "palace"};
  std::vector<std::string> b = {"palace", "golden", "dragon"};
  EXPECT_NEAR(MongeElkanSimilarity(a, b), 1.0, 1e-12);
}

TEST(MongeElkanTest, PerTokenTyposDegradeGracefully) {
  std::vector<std::string> a = {"golden", "dragon"};
  std::vector<std::string> b = {"goldan", "dragon"};
  double close = MongeElkanSimilarity(a, b);
  std::vector<std::string> c = {"ocean", "grill"};
  double far = MongeElkanSimilarity(a, c);
  EXPECT_GT(close, 0.9);
  EXPECT_GT(close, far + 0.2);
}

TEST(MongeElkanTest, EmptyHandling) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}), 0.0);
}

TEST(MongeElkanTest, Symmetric) {
  std::vector<std::string> a = {"blue", "ocean", "grill"};
  std::vector<std::string> b = {"blue", "lagoon"};
  EXPECT_NEAR(MongeElkanSimilarity(a, b), MongeElkanSimilarity(b, a), 1e-12);
}

TEST(SoftTfIdfTest, ExactMatchIsCosine) {
  std::vector<std::string> tokens = {"golden", "dragon"};
  std::vector<double> weights = {0.6, 0.8};
  EXPECT_NEAR(SoftTfIdfSimilarity(tokens, weights, tokens, weights), 1.0,
              1e-9);
}

TEST(SoftTfIdfTest, ApproximateTokensCountWhenAboveTheta) {
  std::vector<std::string> a = {"goldan"};
  std::vector<double> wa = {1.0};
  std::vector<std::string> b = {"golden"};
  std::vector<double> wb = {1.0};
  double soft = SoftTfIdfSimilarity(a, wa, b, wb, 0.9);
  EXPECT_GT(soft, 0.9);  // JW("goldan","golden") ≈ 0.96 counts
  double strict = SoftTfIdfSimilarity(a, wa, b, wb, 0.99);
  EXPECT_DOUBLE_EQ(strict, 0.0);  // theta excludes the fuzzy match
}

TEST(SoftTfIdfTest, WeightsScaleContribution) {
  std::vector<std::string> a = {"rare", "common"};
  std::vector<std::string> b = {"rare", "other"};
  std::vector<double> high_rare = {0.9, 0.1};
  std::vector<double> low_rare = {0.1, 0.9};
  double high = SoftTfIdfSimilarity(a, high_rare, b, high_rare);
  double low = SoftTfIdfSimilarity(a, low_rare, b, low_rare);
  EXPECT_GT(high, low);
}

TEST(SoftTfIdfTest, EmptyHandling) {
  EXPECT_DOUBLE_EQ(SoftTfIdfSimilarity({}, {}, {}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SoftTfIdfSimilarity({"a"}, {1.0}, {}, {}), 0.0);
}

// ---- Property sweeps over metric invariants --------------------------------

using MetricFn = double (*)(std::string_view, std::string_view);

class StringSimilarityProperties
    : public ::testing::TestWithParam<std::tuple<const char*, MetricFn>> {};

TEST_P(StringSimilarityProperties, SymmetricAndBounded) {
  MetricFn metric = std::get<1>(GetParam());
  const std::vector<std::string> samples = {
      "",      "a",       "ab",         "golden dragon",
      "dragon golden",    "pslx350h",   "pslx35oh",
      "3102461501",       "sony bravia television",
  };
  for (const auto& x : samples) {
    for (const auto& y : samples) {
      double xy = metric(x, y);
      double yx = metric(y, x);
      EXPECT_NEAR(xy, yx, 1e-12) << x << " vs " << y;
      EXPECT_GE(xy, 0.0);
      EXPECT_LE(xy, 1.0);
    }
    EXPECT_DOUBLE_EQ(metric(x, x), 1.0) << x;
  }
}

double JaroWinklerDefault(std::string_view a, std::string_view b) {
  return JaroWinklerSimilarity(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, StringSimilarityProperties,
    ::testing::Values(
        std::make_tuple("levenshtein", &LevenshteinSimilarity),
        std::make_tuple("jaro", &JaroSimilarity),
        std::make_tuple("jaro_winkler", &JaroWinklerDefault),
        std::make_tuple("trigram", &TrigramJaccard)),
    [](const auto& info) { return std::get<0>(info.param); });

}  // namespace
}  // namespace gter
