// Randomized round-trip properties of the normalizer/tokenizer over
// generated noisy strings: normalization must be idempotent, and
// re-tokenizing the space-joined token stream must be the identity — the
// invariants every downstream consumer (vocabulary interning, datagen
// noise, CSV round-trips) silently relies on.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/text/normalizer.h"
#include "gter/text/tokenizer.h"

namespace gter {
namespace {

/// A noisy string: random-length words over letters/digits, glued with
/// random separators (spaces, punctuation, control-ish bytes, runs of
/// whitespace) and random case.
std::string NoisyString(Rng* rng) {
  static constexpr char kWordChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  static constexpr char kSeparators[] = " \t\n.,;:!?'\"()-/&#@ ";
  std::string text;
  size_t words = rng->NextBounded(8);
  for (size_t w = 0; w < words; ++w) {
    size_t sep_run = 1 + rng->NextBounded(3);
    for (size_t s = 0; s < sep_run; ++s) {
      text.push_back(kSeparators[rng->NextBounded(sizeof(kSeparators) - 1)]);
    }
    size_t len = rng->NextBounded(10);  // empty words exercise separators
    for (size_t c = 0; c < len; ++c) {
      text.push_back(kWordChars[rng->NextBounded(sizeof(kWordChars) - 1)]);
    }
  }
  return text;
}

std::string Join(const std::vector<std::string>& tokens) {
  std::string joined;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) joined.push_back(' ');
    joined += tokens[i];
  }
  return joined;
}

TEST(TokenizerRoundtrip, RandomizedNoisyStrings) {
  Rng rng(20180605);
  TokenizerOptions options;
  for (int iteration = 0; iteration < 1000; ++iteration) {
    // Vary the min-length filter across the range the pipelines use.
    options.min_token_length = 1 + rng.NextBounded(3);
    std::string text = NoisyString(&rng);

    std::string normalized = Normalize(text, options.normalizer);
    // Idempotence: normalizing a normalized string changes nothing.
    EXPECT_EQ(Normalize(normalized, options.normalizer), normalized)
        << "input: [" << text << "]";

    std::vector<std::string> tokens = Tokenize(text, options);
    for (const std::string& token : tokens) {
      ASSERT_FALSE(token.empty());
      EXPECT_GE(token.size(), options.min_token_length);
      for (char c : token) {
        // Lowercased alphanumeric only — punctuation became separators.
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }

    // Round trip: the space-joined token stream re-tokenizes to itself.
    EXPECT_EQ(Tokenize(Join(tokens), options), tokens)
        << "input: [" << text << "]";

    // Tokenizing the normalized text equals tokenizing the raw text —
    // tokenization factors through normalization.
    EXPECT_EQ(Tokenize(normalized, options), tokens);
  }
}

TEST(TokenizerRoundtrip, NormalizeIsIdempotentWithoutCollapse) {
  Rng rng(77);
  NormalizerOptions options;
  options.collapse_whitespace = false;
  for (int iteration = 0; iteration < 1000; ++iteration) {
    std::string text = NoisyString(&rng);
    std::string once = Normalize(text, options);
    EXPECT_EQ(Normalize(once, options), once) << "input: [" << text << "]";
  }
}

}  // namespace
}  // namespace gter
