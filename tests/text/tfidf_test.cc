#include "gter/text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TfIdfTest, DocumentFrequencies) {
  // doc0: {0,1}, doc1: {1,2}, doc2: {1}
  std::vector<std::vector<TermId>> docs = {{0, 1}, {1, 2}, {1}};
  TfIdfModel model;
  model.Build(docs, 3);
  EXPECT_EQ(model.DocFrequency(0), 1u);
  EXPECT_EQ(model.DocFrequency(1), 3u);
  EXPECT_EQ(model.DocFrequency(2), 1u);
}

TEST(TfIdfTest, IdfFormula) {
  std::vector<std::vector<TermId>> docs = {{0}, {0}, {1}};
  TfIdfModel model;
  model.Build(docs, 2);
  EXPECT_NEAR(model.Idf(0), std::log(4.0 / 2.0), 1e-12);
  EXPECT_NEAR(model.Idf(1), std::log(4.0 / 1.0), 1e-12);
}

TEST(TfIdfTest, UnseenTermHasZeroIdf) {
  std::vector<std::vector<TermId>> docs = {{0}};
  TfIdfModel model;
  model.Build(docs, 3);
  EXPECT_DOUBLE_EQ(model.Idf(2), 0.0);
}

TEST(TfIdfTest, VectorsAreL2Normalized) {
  std::vector<std::vector<TermId>> docs = {{0, 1, 1}, {1, 2}};
  TfIdfModel model;
  model.Build(docs, 3);
  for (size_t d = 0; d < 2; ++d) {
    const auto& vec = model.VectorOf(d);
    double norm = 0.0;
    for (double w : vec.weights) norm += w * w;
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(TfIdfTest, CosineSelfSimilarityIsOne) {
  std::vector<std::vector<TermId>> docs = {{0, 1, 2}, {3, 4}};
  TfIdfModel model;
  model.Build(docs, 5);
  EXPECT_NEAR(model.Cosine(0, 0), 1.0, 1e-12);
}

TEST(TfIdfTest, DisjointDocsHaveZeroCosine) {
  std::vector<std::vector<TermId>> docs = {{0, 1}, {2, 3}};
  TfIdfModel model;
  model.Build(docs, 4);
  EXPECT_DOUBLE_EQ(model.Cosine(0, 1), 0.0);
}

TEST(TfIdfTest, RareSharedTermScoresHigherThanCommon) {
  // Docs 0 & 1 share rare term 0; docs 2 & 3 share term 1, which appears
  // everywhere. Pair (0,1) must score higher.
  std::vector<std::vector<TermId>> docs = {
      {0, 1, 2}, {0, 1, 3}, {1, 4, 5}, {1, 6, 7}};
  TfIdfModel model;
  model.Build(docs, 8);
  EXPECT_GT(model.Cosine(0, 1), model.Cosine(2, 3));
}

TEST(TfIdfTest, TermFrequencyMatters) {
  // doc0 repeats term 0 three times; doc1 once. Both share term 0 with
  // doc2. The repeated-use doc is more aligned with doc2's direction when
  // doc2 is dominated by term 0.
  std::vector<std::vector<TermId>> docs = {{0, 0, 0, 1}, {0, 1, 1, 1}, {0}};
  TfIdfModel model;
  model.Build(docs, 2);
  EXPECT_GT(model.Cosine(0, 2), model.Cosine(1, 2));
}

// --- Incremental corpus deltas (DESIGN.md §4g) -------------------------

// The delta contract: a stream of AddDocument calls followed by
// RefreshVectors() is bitwise a one-shot Build over the same corpus.
TEST(TfIdfDeltaTest, StreamedAddsMatchBatchBuild) {
  std::vector<std::vector<TermId>> docs = {
      {0, 1, 2}, {0, 1, 3}, {1, 4, 5}, {1, 6, 7}, {2, 2, 5}, {7, 0}};
  TfIdfModel batch;
  batch.Build(docs, 8);

  TfIdfModel streamed;
  streamed.Build({}, 0);
  for (size_t d = 0; d < docs.size(); ++d) {
    EXPECT_EQ(streamed.AddDocument(docs[d]), d);
  }
  streamed.RefreshVectors();

  ASSERT_EQ(streamed.num_docs(), batch.num_docs());
  EXPECT_EQ(streamed.stale_docs(), 0u);
  for (TermId t = 0; t < 8; ++t) {
    EXPECT_EQ(streamed.DocFrequency(t), batch.DocFrequency(t));
    EXPECT_EQ(streamed.Idf(t), batch.Idf(t));
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    const auto& a = streamed.VectorOf(d);
    const auto& b = batch.VectorOf(d);
    ASSERT_EQ(a.terms, b.terms);
    for (size_t i = 0; i < a.weights.size(); ++i) {
      EXPECT_EQ(a.weights[i], b.weights[i]);
    }
  }
}

// df/idf are exact immediately after a delta (no refresh needed), and the
// added doc plus its sharers are re-derived eagerly — only documents
// disjoint from the new one may carry a stale corpus-size scale.
TEST(TfIdfDeltaTest, AddKeepsDfExactAndRefreshesSharers) {
  std::vector<std::vector<TermId>> docs = {{0, 1}, {1, 2}, {3}};
  TfIdfModel model;
  model.Build(docs, 4);
  model.AddDocument({1, 4, 4});

  TfIdfModel rebuilt;
  rebuilt.Build({{0, 1}, {1, 2}, {3}, {1, 4, 4}}, 5);
  for (TermId t = 0; t < 5; ++t) {
    EXPECT_EQ(model.DocFrequency(t), rebuilt.DocFrequency(t));
    EXPECT_EQ(model.Idf(t), rebuilt.Idf(t));
  }
  // Docs 0, 1 share term 1 with the new doc, and doc 3 is the new doc:
  // all three match the rebuilt model exactly. Doc 2 ({3}) is disjoint —
  // the one stale vector.
  EXPECT_EQ(model.stale_docs(), 1u);
  for (size_t d : {0u, 1u, 3u}) {
    const auto& a = model.VectorOf(d);
    const auto& b = rebuilt.VectorOf(d);
    ASSERT_EQ(a.terms, b.terms);
    for (size_t i = 0; i < a.weights.size(); ++i) {
      EXPECT_EQ(a.weights[i], b.weights[i]);
    }
  }
  model.RefreshVectors();
  EXPECT_EQ(model.stale_docs(), 0u);
}

// Remove tombstones the slot (indices stay stable), restores exact
// df/num_docs, and a refresh converges the survivors back onto the
// original batch model.
TEST(TfIdfDeltaTest, RemoveRoundTripsToOriginal) {
  std::vector<std::vector<TermId>> docs = {{0, 1, 2}, {0, 3}, {1, 3, 3}};
  TfIdfModel model;
  model.Build(docs, 4);
  size_t extra = model.AddDocument({0, 1, 2, 3});
  ASSERT_EQ(extra, 3u);
  model.RemoveDocument(extra);
  model.RefreshVectors();

  TfIdfModel original;
  original.Build(docs, 4);
  EXPECT_EQ(model.num_docs(), original.num_docs());
  EXPECT_EQ(model.num_slots(), 4u);
  EXPECT_FALSE(model.alive(extra));
  EXPECT_TRUE(model.VectorOf(extra).terms.empty());
  for (TermId t = 0; t < 4; ++t) {
    EXPECT_EQ(model.DocFrequency(t), original.DocFrequency(t));
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    const auto& a = model.VectorOf(d);
    const auto& b = original.VectorOf(d);
    ASSERT_EQ(a.terms, b.terms);
    for (size_t i = 0; i < a.weights.size(); ++i) {
      EXPECT_EQ(a.weights[i], b.weights[i]);
    }
  }
}

// Removing a middle document keeps the other indices usable and df exact
// against a batch build of the surviving corpus.
TEST(TfIdfDeltaTest, RemoveMiddleDocumentKeepsSurvivorsExact) {
  std::vector<std::vector<TermId>> docs = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  TfIdfModel model;
  model.Build(docs, 4);
  model.RemoveDocument(1);
  model.RefreshVectors();

  TfIdfModel survivors;
  survivors.Build({{0, 1}, {2, 3}, {0, 3}}, 4);
  EXPECT_EQ(model.num_docs(), 3u);
  for (TermId t = 0; t < 4; ++t) {
    EXPECT_EQ(model.DocFrequency(t), survivors.DocFrequency(t));
  }
  // model doc 0/2/3 correspond to survivors doc 0/1/2.
  const size_t mapping[3][2] = {{0, 0}, {2, 1}, {3, 2}};
  for (const auto& [mine, theirs] : mapping) {
    const auto& a = model.VectorOf(mine);
    const auto& b = survivors.VectorOf(theirs);
    ASSERT_EQ(a.terms, b.terms);
    for (size_t i = 0; i < a.weights.size(); ++i) {
      EXPECT_EQ(a.weights[i], b.weights[i]);
    }
  }
}

TEST(SparseDotTest, HandlesEmptyVectors) {
  TfIdfVector a, b;
  EXPECT_DOUBLE_EQ(SparseDot(a, b), 0.0);
  a.terms = {1};
  a.weights = {1.0};
  EXPECT_DOUBLE_EQ(SparseDot(a, b), 0.0);
}

TEST(TfIdfTest, EmptyDocumentGetsEmptyVector) {
  std::vector<std::vector<TermId>> docs = {{}, {0}};
  TfIdfModel model;
  model.Build(docs, 1);
  EXPECT_TRUE(model.VectorOf(0).terms.empty());
  EXPECT_DOUBLE_EQ(model.Cosine(0, 1), 0.0);
}

}  // namespace
}  // namespace gter
