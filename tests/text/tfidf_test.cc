#include "gter/text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TfIdfTest, DocumentFrequencies) {
  // doc0: {0,1}, doc1: {1,2}, doc2: {1}
  std::vector<std::vector<TermId>> docs = {{0, 1}, {1, 2}, {1}};
  TfIdfModel model;
  model.Build(docs, 3);
  EXPECT_EQ(model.DocFrequency(0), 1u);
  EXPECT_EQ(model.DocFrequency(1), 3u);
  EXPECT_EQ(model.DocFrequency(2), 1u);
}

TEST(TfIdfTest, IdfFormula) {
  std::vector<std::vector<TermId>> docs = {{0}, {0}, {1}};
  TfIdfModel model;
  model.Build(docs, 2);
  EXPECT_NEAR(model.Idf(0), std::log(4.0 / 2.0), 1e-12);
  EXPECT_NEAR(model.Idf(1), std::log(4.0 / 1.0), 1e-12);
}

TEST(TfIdfTest, UnseenTermHasZeroIdf) {
  std::vector<std::vector<TermId>> docs = {{0}};
  TfIdfModel model;
  model.Build(docs, 3);
  EXPECT_DOUBLE_EQ(model.Idf(2), 0.0);
}

TEST(TfIdfTest, VectorsAreL2Normalized) {
  std::vector<std::vector<TermId>> docs = {{0, 1, 1}, {1, 2}};
  TfIdfModel model;
  model.Build(docs, 3);
  for (size_t d = 0; d < 2; ++d) {
    const auto& vec = model.VectorOf(d);
    double norm = 0.0;
    for (double w : vec.weights) norm += w * w;
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(TfIdfTest, CosineSelfSimilarityIsOne) {
  std::vector<std::vector<TermId>> docs = {{0, 1, 2}, {3, 4}};
  TfIdfModel model;
  model.Build(docs, 5);
  EXPECT_NEAR(model.Cosine(0, 0), 1.0, 1e-12);
}

TEST(TfIdfTest, DisjointDocsHaveZeroCosine) {
  std::vector<std::vector<TermId>> docs = {{0, 1}, {2, 3}};
  TfIdfModel model;
  model.Build(docs, 4);
  EXPECT_DOUBLE_EQ(model.Cosine(0, 1), 0.0);
}

TEST(TfIdfTest, RareSharedTermScoresHigherThanCommon) {
  // Docs 0 & 1 share rare term 0; docs 2 & 3 share term 1, which appears
  // everywhere. Pair (0,1) must score higher.
  std::vector<std::vector<TermId>> docs = {
      {0, 1, 2}, {0, 1, 3}, {1, 4, 5}, {1, 6, 7}};
  TfIdfModel model;
  model.Build(docs, 8);
  EXPECT_GT(model.Cosine(0, 1), model.Cosine(2, 3));
}

TEST(TfIdfTest, TermFrequencyMatters) {
  // doc0 repeats term 0 three times; doc1 once. Both share term 0 with
  // doc2. The repeated-use doc is more aligned with doc2's direction when
  // doc2 is dominated by term 0.
  std::vector<std::vector<TermId>> docs = {{0, 0, 0, 1}, {0, 1, 1, 1}, {0}};
  TfIdfModel model;
  model.Build(docs, 2);
  EXPECT_GT(model.Cosine(0, 2), model.Cosine(1, 2));
}

TEST(SparseDotTest, HandlesEmptyVectors) {
  TfIdfVector a, b;
  EXPECT_DOUBLE_EQ(SparseDot(a, b), 0.0);
  a.terms = {1};
  a.weights = {1.0};
  EXPECT_DOUBLE_EQ(SparseDot(a, b), 0.0);
}

TEST(TfIdfTest, EmptyDocumentGetsEmptyVector) {
  std::vector<std::vector<TermId>> docs = {{}, {0}};
  TfIdfModel model;
  model.Build(docs, 1);
  EXPECT_TRUE(model.VectorOf(0).terms.empty());
  EXPECT_DOUBLE_EQ(model.Cosine(0, 1), 0.0);
}

}  // namespace
}  // namespace gter
