#include "gter/text/vocabulary.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("gamma"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  TermId id = vocab.Intern("alpha");
  EXPECT_EQ(vocab.Intern("alpha"), id);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupFindsInterned) {
  Vocabulary vocab;
  TermId id = vocab.Intern("alpha");
  EXPECT_EQ(vocab.Lookup("alpha"), id);
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Lookup("nothing"), kInvalidTermId);
}

TEST(VocabularyTest, TermOfRoundTrips) {
  Vocabulary vocab;
  TermId a = vocab.Intern("alpha");
  TermId b = vocab.Intern("beta");
  EXPECT_EQ(vocab.TermOf(a), "alpha");
  EXPECT_EQ(vocab.TermOf(b), "beta");
}

TEST(VocabularyTest, ManyTermsStayConsistent) {
  Vocabulary vocab;
  for (int i = 0; i < 1000; ++i) {
    vocab.Intern("term" + std::to_string(i));
  }
  EXPECT_EQ(vocab.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string term = "term" + std::to_string(i);
    EXPECT_EQ(vocab.TermOf(vocab.Lookup(term)), term);
  }
}

}  // namespace
}  // namespace gter
