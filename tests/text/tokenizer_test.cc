#include "gter/text/tokenizer.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAfterNormalization) {
  auto tokens = Tokenize("Golden Dragon, 123 Main St.");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "golden");
  EXPECT_EQ(tokens[1], "dragon");
  EXPECT_EQ(tokens[2], "123");
  EXPECT_EQ(tokens[4], "st");
}

TEST(TokenizerTest, EmptyStringYieldsNoTokens) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   ...  ").empty());
}

TEST(TokenizerTest, MinTokenLengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 2;
  auto tokens = Tokenize("a bc def g", options);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "bc");
  EXPECT_EQ(tokens[1], "def");
}

TEST(TokenizerTest, DuplicatesPreserved) {
  auto tokens = Tokenize("la la land");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], tokens[1]);
}

TEST(CharNgramsTest, BasicTrigrams) {
  auto grams = CharNgrams("hello", 3);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "hel");
  EXPECT_EQ(grams[1], "ell");
  EXPECT_EQ(grams[2], "llo");
}

TEST(CharNgramsTest, ShortTokenReturnsItself) {
  auto grams = CharNgrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(CharNgramsTest, ExactLengthToken) {
  auto grams = CharNgrams("abc", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "abc");
}

TEST(CharNgramsTest, ZeroNReturnsEmpty) {
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

}  // namespace
}  // namespace gter
