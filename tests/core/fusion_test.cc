#include "gter/core/fusion.h"

#include <gtest/gtest.h>

#include "gter/core/resolver.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/eval/confusion.h"
#include "gter/eval/threshold_sweep.h"

namespace gter {
namespace {

FusionConfig FastConfig() {
  FusionConfig config;
  config.rounds = 3;
  config.cliquerank.max_steps = 10;
  return config;
}

TEST(FusionTest, ResolvesSmallRestaurantBenchmarkWell) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 3);
  RemoveFrequentTerms(&data.dataset);
  FusionPipeline pipeline(data.dataset, FastConfig());
  FusionResult result = pipeline.Run().value();

  auto labels = LabelPairs(pipeline.pairs(), data.truth);
  Confusion c = EvaluatePairPredictions(pipeline.pairs(), result.matches,
                                        labels,
                                        TotalPositives(data.dataset, data.truth));
  EXPECT_GT(c.F1(), 0.7);
}

TEST(FusionTest, OutputShapesAreConsistent) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionPipeline pipeline(data.dataset, FastConfig());
  FusionResult result = pipeline.Run().value();
  EXPECT_EQ(result.pair_scores.size(), pipeline.pairs().size());
  EXPECT_EQ(result.pair_probability.size(), pipeline.pairs().size());
  EXPECT_EQ(result.matches.size(), pipeline.pairs().size());
  EXPECT_EQ(result.term_weights.size(), data.dataset.vocabulary().size());
  for (double p : result.pair_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FusionTest, RoundStatsAreRecordedAndCumulative) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config = FastConfig();
  config.rounds = 4;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult result = pipeline.Run().value();
  ASSERT_EQ(result.round_stats.size(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(result.round_stats[r].round, r + 1);
    EXPECT_GT(result.round_stats[r].iter_iterations, 0u);
    if (r > 0) {
      EXPECT_GE(result.round_stats[r].cumulative_seconds,
                result.round_stats[r - 1].cumulative_seconds);
    }
  }
}

TEST(FusionTest, ObserverFiresOncePerRound) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config = FastConfig();
  config.rounds = 3;
  FusionPipeline pipeline(data.dataset, config);
  std::vector<size_t> seen;
  pipeline.set_round_observer([&](size_t round, const FusionResult& snapshot) {
    seen.push_back(round);
    EXPECT_EQ(snapshot.pair_probability.size(), pipeline.pairs().size());
  });
  pipeline.Run().value();
  EXPECT_EQ(seen, (std::vector<size_t>{1, 2, 3}));
}

TEST(FusionTest, FirstIterTraceRecordedWhenRequested) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config = FastConfig();
  config.iter.track_convergence = true;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult result = pipeline.Run().value();
  EXPECT_FALSE(result.first_iter_trace.empty());
}

TEST(FusionTest, ReinforcementImprovesOverFirstRound) {
  // Table V's shape: later-round F1 (optimal-threshold on probability)
  // should not degrade materially vs round 1 and typically improves.
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.08, 7);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 3;
  config.cliquerank.max_steps = 10;
  FusionPipeline pipeline(data.dataset, config);
  auto labels = LabelPairs(pipeline.pairs(), data.truth);
  uint64_t positives = TotalPositives(data.dataset, data.truth);
  std::vector<double> f1_by_round;
  pipeline.set_round_observer([&](size_t, const FusionResult& snapshot) {
    SweepResult sweep =
        BestF1Threshold(snapshot.pair_probability, labels, positives);
    f1_by_round.push_back(sweep.f1);
  });
  pipeline.Run().value();
  ASSERT_EQ(f1_by_round.size(), 3u);
  EXPECT_GE(f1_by_round.back(), f1_by_round.front() - 0.02);
}

TEST(FusionTest, EtaThresholdControlsMatches) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig strict = FastConfig();
  strict.eta = 0.999;
  FusionConfig loose = FastConfig();
  loose.eta = 0.5;
  FusionResult rs = FusionPipeline(data.dataset, strict).Run().value();
  FusionResult rl = FusionPipeline(data.dataset, loose).Run().value();
  size_t strict_matches = std::count(rs.matches.begin(), rs.matches.end(), true);
  size_t loose_matches = std::count(rl.matches.begin(), rl.matches.end(), true);
  EXPECT_LE(strict_matches, loose_matches);
}

TEST(FusionTest, RssBackendProducesComparableDecisions) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 9);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config = FastConfig();
  config.rounds = 2;
  config.use_rss = true;
  config.rss.num_walks = 100;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult result = pipeline.Run().value();
  auto labels = LabelPairs(pipeline.pairs(), data.truth);
  Confusion c = EvaluatePairPredictions(pipeline.pairs(), result.matches,
                                        labels,
                                        TotalPositives(data.dataset, data.truth));
  EXPECT_GT(c.F1(), 0.6);
}

TEST(FusionTest, ResolveFromMatchesBuildsClusters) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5);
  RemoveFrequentTerms(&data.dataset);
  FusionPipeline pipeline(data.dataset, FastConfig());
  FusionResult result = pipeline.Run().value();
  ResolutionResult res =
      ResolveFromMatches(data.dataset, pipeline.pairs(), result.matches);
  EXPECT_EQ(res.cluster_of.size(), data.dataset.size());
  auto matched = MatchedPairs(pipeline.pairs(), result.matches);
  for (const auto& [a, b] : matched) {
    EXPECT_EQ(res.cluster_of[a], res.cluster_of[b]);
  }
}

}  // namespace
}  // namespace gter
