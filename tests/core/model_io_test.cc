#include "gter/core/model_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "gter/datagen/datagen.h"
#include "gter/er/csv.h"
#include "gter/er/preprocess.h"

namespace gter {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  GeneratedDataset data;
  FusionResult result;
  PairSpace pairs;

  Fixture() : data(GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5)) {
    RemoveFrequentTerms(&data.dataset);
    FusionConfig config;
    config.rounds = 2;
    config.cliquerank.max_steps = 10;
    FusionPipeline pipeline(data.dataset, config);
    result = pipeline.Run().value();
    pairs = pipeline.pairs();
  }
};

TEST(ModelIoTest, TermWeightsRoundTrip) {
  Fixture f;
  std::string path = TempPath("gter_weights_test.csv");
  ASSERT_TRUE(SaveTermWeights(path, f.data.dataset, f.result.term_weights).ok());
  auto loaded = LoadTermWeights(path, f.data.dataset);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), f.result.term_weights.size());
  // Bitwise, not approximate: %.17g emission + strict parsing make
  // save→load the identity, so a reloaded model resolves identically.
  for (TermId t = 0; t < f.result.term_weights.size(); ++t) {
    double expected = f.result.term_weights[t];
    double actual = loaded.value()[t];
    ASSERT_EQ(std::memcmp(&actual, &expected, sizeof(double)), 0)
        << "term " << t;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, ExtremeWeightsRoundTripBitwise) {
  // std::to_string's fixed 6 decimals used to flatten these: a denormal
  // and 1e-300 both became "0.000000", 1/3 lost 11 significant digits.
  Dataset ds("tiny");
  ds.AddRecord(0, "alpha beta gamma delta epsilon");
  std::vector<double> weights = {1.0 / 3.0, 5e-324, 1e300, -1e-300,
                                 0.1 + 0.2};
  ASSERT_EQ(weights.size(), ds.vocabulary().size());
  std::string path = TempPath("gter_extreme_weights_test.csv");
  ASSERT_TRUE(SaveTermWeights(path, ds, weights).ok());
  auto loaded = LoadTermWeights(path, ds);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t t = 0; t < weights.size(); ++t) {
    double actual = loaded.value()[t];
    ASSERT_EQ(std::memcmp(&actual, &weights[t], sizeof(double)), 0)
        << "term " << t;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, MalformedWeightRejectedOnLoad) {
  Dataset ds("tiny");
  ds.AddRecord(0, "alpha beta");
  std::string path = TempPath("gter_malformed_weight_test.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"term", "weight"},
                                  {"alpha", "0.5junk"}})
                  .ok());
  auto loaded = LoadTermWeights(path, ds);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelIoTest, MatchesRoundTrip) {
  Fixture f;
  std::string path = TempPath("gter_matches_test.csv");
  ASSERT_TRUE(SaveMatches(path, f.pairs, f.result).ok());
  auto loaded = LoadMatches(path, f.pairs);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), f.result.matches);
  std::remove(path.c_str());
}

TEST(ModelIoTest, SizeMismatchRejected) {
  Fixture f;
  std::vector<double> wrong(3, 0.5);
  EXPECT_FALSE(
      SaveTermWeights(TempPath("gter_bad.csv"), f.data.dataset, wrong).ok());
}

TEST(ModelIoTest, UnknownTermRejectedOnLoad) {
  Fixture f;
  std::string path = TempPath("gter_unknown_term.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"term", "weight"},
                                  {"definitely_not_in_vocab_xyz", "0.5"}})
                  .ok());
  auto loaded = LoadTermWeights(path, f.data.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ForeignPairRejectedOnLoad) {
  Fixture f;
  std::string path = TempPath("gter_foreign_pair.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"record_a", "record_b", "probability"},
                                  {"0", "999999", "1.0"}})
                  .ok());
  auto loaded = LoadMatches(path, f.pairs);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsIOError) {
  Fixture f;
  auto loaded = LoadTermWeights("/no/such/path.csv", f.data.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace gter
