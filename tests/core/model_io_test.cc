#include "gter/core/model_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "gter/datagen/datagen.h"
#include "gter/er/csv.h"
#include "gter/er/preprocess.h"

namespace gter {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  GeneratedDataset data;
  FusionResult result;
  PairSpace pairs;

  Fixture() : data(GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 5)) {
    RemoveFrequentTerms(&data.dataset);
    FusionConfig config;
    config.rounds = 2;
    config.cliquerank.max_steps = 10;
    FusionPipeline pipeline(data.dataset, config);
    result = pipeline.Run().value();
    pairs = pipeline.pairs();
  }
};

TEST(ModelIoTest, TermWeightsRoundTrip) {
  Fixture f;
  std::string path = TempPath("gter_weights_test.csv");
  ASSERT_TRUE(SaveTermWeights(path, f.data.dataset, f.result.term_weights).ok());
  auto loaded = LoadTermWeights(path, f.data.dataset);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), f.result.term_weights.size());
  for (TermId t = 0; t < f.result.term_weights.size(); ++t) {
    EXPECT_NEAR(loaded.value()[t], f.result.term_weights[t], 1e-6);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, MatchesRoundTrip) {
  Fixture f;
  std::string path = TempPath("gter_matches_test.csv");
  ASSERT_TRUE(SaveMatches(path, f.pairs, f.result).ok());
  auto loaded = LoadMatches(path, f.pairs);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), f.result.matches);
  std::remove(path.c_str());
}

TEST(ModelIoTest, SizeMismatchRejected) {
  Fixture f;
  std::vector<double> wrong(3, 0.5);
  EXPECT_FALSE(
      SaveTermWeights(TempPath("gter_bad.csv"), f.data.dataset, wrong).ok());
}

TEST(ModelIoTest, UnknownTermRejectedOnLoad) {
  Fixture f;
  std::string path = TempPath("gter_unknown_term.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"term", "weight"},
                                  {"definitely_not_in_vocab_xyz", "0.5"}})
                  .ok());
  auto loaded = LoadTermWeights(path, f.data.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ForeignPairRejectedOnLoad) {
  Fixture f;
  std::string path = TempPath("gter_foreign_pair.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"record_a", "record_b", "probability"},
                                  {"0", "999999", "1.0"}})
                  .ok());
  auto loaded = LoadMatches(path, f.pairs);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsIOError) {
  Fixture f;
  auto loaded = LoadTermWeights("/no/such/path.csv", f.data.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace gter
