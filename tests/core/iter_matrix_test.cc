#include "gter/core/iter_matrix.h"

#include <gtest/gtest.h>

#include "gter/core/iter.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/eval/spearman.h"

namespace gter {
namespace {

struct Fixture {
  Dataset ds{"test"};
  PairSpace pairs;
  BipartiteGraph graph;

  Fixture() : pairs(BuildPairs()), graph(BipartiteGraph::Build(ds, pairs)) {}

  PairSpace BuildPairs() {
    ds.AddRecord(0, "anchor1 noise");
    ds.AddRecord(0, "anchor1 noise");
    ds.AddRecord(0, "anchor2 noise");
    ds.AddRecord(0, "anchor2 noise");
    ds.AddRecord(0, "noise misc1");
    ds.AddRecord(0, "noise misc2");
    return PairSpace::Build(ds);
  }

  std::vector<double> Uniform() const {
    return std::vector<double>(pairs.size(), 1.0);
  }
};

TEST(IterMatrixTest, ConvergesToEigenvector) {
  Fixture f;
  IterMatrixResult result = RunIterMatrixForm(f.graph, f.Uniform()).value();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.eigenvalue, 0.0);
  // Theorem 1: the stationary y is the principal eigenvector — residual
  // ‖My − λy‖ must be tiny relative to λ.
  EXPECT_LT(result.residual, 1e-9 * result.eigenvalue);
}

TEST(IterMatrixTest, StationaryVectorIsUnitNorm) {
  Fixture f;
  IterMatrixResult result = RunIterMatrixForm(f.graph, f.Uniform()).value();
  double norm_sq = 0.0;
  for (double v : result.pair_scores) norm_sq += v * v;
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
}

TEST(IterMatrixTest, SeedDoesNotChangeStationarySolution) {
  Fixture f;
  IterMatrixOptions a, b;
  a.seed = 1;
  b.seed = 424242;
  IterMatrixResult ra = RunIterMatrixForm(f.graph, f.Uniform(), a).value();
  IterMatrixResult rb = RunIterMatrixForm(f.graph, f.Uniform(), b).value();
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    EXPECT_NEAR(ra.pair_scores[p], rb.pair_scores[p], 1e-8);
  }
}

TEST(IterMatrixTest, AgreesWithSweepImplementationOnRanking) {
  // Algorithm 1 (with its per-sweep normalization) and the pure power
  // iteration converge to the same *ranking* of pairs and terms — the
  // normalization only reshapes magnitudes monotonically per sweep.
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 5);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  BipartiteGraph graph = BipartiteGraph::Build(data.dataset, pairs);
  std::vector<double> uniform(pairs.size(), 1.0);

  IterMatrixResult matrix = RunIterMatrixForm(graph, uniform).value();
  IterOptions sweep_options;
  sweep_options.normalization = IterNormalization::kL2;
  IterResult sweep = RunIter(graph, uniform, sweep_options).value();

  EXPECT_GT(SpearmanRho(matrix.pair_scores, sweep.pair_scores), 0.95);
  // Compare term rankings over terms that participate in pairs.
  std::vector<double> mx, sx;
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    if (graph.PairsOfTerm(t).empty()) continue;
    mx.push_back(matrix.term_weights[t]);
    sx.push_back(sweep.term_weights[t]);
  }
  EXPECT_GT(SpearmanRho(mx, sx), 0.9);
}

TEST(IterMatrixTest, EdgeProbabilityReweightsSpectrum) {
  Fixture f;
  // Zeroing all probabilities collapses M to the zero matrix.
  std::vector<double> zeros(f.pairs.size(), 0.0);
  IterMatrixResult dead = RunIterMatrixForm(f.graph, zeros).value();
  EXPECT_DOUBLE_EQ(dead.eigenvalue, 0.0);

  // Keeping only the anchor1 pair concentrates the eigenvector on it.
  std::vector<double> only(f.pairs.size(), 0.0);
  PairId anchor_pair = f.pairs.Find(0, 1);
  only[anchor_pair] = 1.0;
  IterMatrixResult focused = RunIterMatrixForm(f.graph, only).value();
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    EXPECT_GE(focused.pair_scores[anchor_pair] + 1e-12,
              focused.pair_scores[p]);
  }
}

TEST(IterMatrixTest, EmptyGraphHandled) {
  Dataset ds("test");
  ds.AddRecord(0, "x");
  ds.AddRecord(0, "y");
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  IterMatrixResult result = RunIterMatrixForm(graph, {}).value();
  EXPECT_TRUE(result.pair_scores.empty());
}

}  // namespace
}  // namespace gter
