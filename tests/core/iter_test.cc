#include "gter/core/iter.h"

#include <gtest/gtest.h>

#include "gter/eval/spearman.h"
#include "gter/eval/term_score.h"

namespace gter {
namespace {

/// Two matching pairs anchored by discriminative terms, one frequent noise
/// term shared by everything.
struct Fixture {
  Dataset ds{"test"};
  GroundTruth truth;
  PairSpace pairs;
  BipartiteGraph graph;

  Fixture()
      : truth({0, 0, 1, 1, 2, 3}),
        pairs(BuildPairs()),
        graph(BipartiteGraph::Build(ds, pairs)) {}

  PairSpace BuildPairs() {
    ds.AddRecord(0, "anchor1 noise");      // 0 ┐ entity 0
    ds.AddRecord(0, "anchor1 noise");      // 1 ┘
    ds.AddRecord(0, "anchor2 noise");      // 2 ┐ entity 1
    ds.AddRecord(0, "anchor2 noise");      // 3 ┘
    ds.AddRecord(0, "noise misc1");        // 4   entity 2
    ds.AddRecord(0, "noise misc2");        // 5   entity 3
    return PairSpace::Build(ds);
  }
};

std::vector<double> UniformProbability(const PairSpace& pairs) {
  return std::vector<double>(pairs.size(), 1.0);
}

TEST(IterTest, ConvergesOnSmallGraph) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100u);
}

TEST(IterTest, DiscriminativeTermsOutweighNoise) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  double anchor1 = result.term_weights[f.ds.vocabulary().Lookup("anchor1")];
  double anchor2 = result.term_weights[f.ds.vocabulary().Lookup("anchor2")];
  double noise = result.term_weights[f.ds.vocabulary().Lookup("noise")];
  EXPECT_GT(anchor1, noise);
  EXPECT_GT(anchor2, noise);
}

TEST(IterTest, MatchingPairsScoreHigherThanNonMatching) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  double match_01 = result.pair_scores[f.pairs.Find(0, 1)];
  double match_23 = result.pair_scores[f.pairs.Find(2, 3)];
  double nonmatch = result.pair_scores[f.pairs.Find(0, 2)];
  EXPECT_GT(match_01, nonmatch);
  EXPECT_GT(match_23, nonmatch);
}

TEST(IterTest, WeightsLieInUnitIntervalUnderLogistic) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  for (double x : result.term_weights) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(IterTest, PairScoreIsSumOfSharedTermWeights) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    double expected = 0.0;
    for (TermId t : f.graph.TermsOfPair(p)) {
      expected += result.term_weights[t];
    }
    EXPECT_NEAR(result.pair_scores[p], expected, 1e-12);
  }
}

TEST(IterTest, DeterministicInSeed) {
  Fixture f;
  IterOptions options;
  options.seed = 99;
  IterResult a = RunIter(f.graph, UniformProbability(f.pairs), options).value();
  IterResult b = RunIter(f.graph, UniformProbability(f.pairs), options).value();
  EXPECT_EQ(a.term_weights, b.term_weights);
}

TEST(IterTest, ConvergesFromDifferentInitializations) {
  // The stationary point is the principal eigenvector (Theorem 1) — the
  // seed must not change where we land, only the path.
  Fixture f;
  IterOptions o1, o2;
  o1.seed = 1;
  o2.seed = 123456;
  o1.tolerance = o2.tolerance = 1e-12;
  IterResult a = RunIter(f.graph, UniformProbability(f.pairs), o1).value();
  IterResult b = RunIter(f.graph, UniformProbability(f.pairs), o2).value();
  for (size_t t = 0; t < a.term_weights.size(); ++t) {
    EXPECT_NEAR(a.term_weights[t], b.term_weights[t], 1e-6);
  }
}

TEST(IterTest, EdgeProbabilityDemotesPunishedTerms) {
  Fixture f;
  // Tell ITER the non-matching pairs (those not (0,1) or (2,3)) have
  // probability 0: noise-only pairs stop contributing to "noise".
  std::vector<double> probability(f.pairs.size(), 0.0);
  probability[f.pairs.Find(0, 1)] = 1.0;
  probability[f.pairs.Find(2, 3)] = 1.0;
  IterResult with_p = RunIter(f.graph, probability).value();
  IterResult uniform = RunIter(f.graph, UniformProbability(f.pairs)).value();
  TermId noise = f.ds.vocabulary().Lookup("noise");
  TermId anchor = f.ds.vocabulary().Lookup("anchor1");
  double ratio_with = with_p.term_weights[anchor] /
                      std::max(with_p.term_weights[noise], 1e-12);
  double ratio_uniform = uniform.term_weights[anchor] /
                         std::max(uniform.term_weights[noise], 1e-12);
  EXPECT_GT(ratio_with, ratio_uniform);
}

TEST(IterTest, TrackConvergenceRecordsDecreasingTail) {
  Fixture f;
  IterOptions options;
  options.track_convergence = true;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs), options).value();
  ASSERT_EQ(result.update_trace.size(), result.iterations);
  // The final update must be below tolerance (that is why it stopped).
  EXPECT_LT(result.update_trace.back(), options.tolerance);
  // And smaller than the peak update.
  double peak = *std::max_element(result.update_trace.begin(),
                                  result.update_trace.end());
  EXPECT_GT(peak, result.update_trace.back());
}

TEST(IterTest, L2NormalizationVariant) {
  Fixture f;
  IterOptions options;
  options.normalization = IterNormalization::kL2;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs), options).value();
  double norm_sq = 0.0;
  for (double x : result.term_weights) norm_sq += x * x;
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  // The ranking must agree with the logistic variant.
  IterResult logistic = RunIter(f.graph, UniformProbability(f.pairs)).value();
  TermId anchor = f.ds.vocabulary().Lookup("anchor1");
  TermId noise = f.ds.vocabulary().Lookup("noise");
  EXPECT_GT(result.term_weights[anchor], result.term_weights[noise]);
  EXPECT_GT(logistic.term_weights[anchor], logistic.term_weights[noise]);
}

TEST(IterTest, LearnedRankingCorrelatesWithOracle) {
  Fixture f;
  IterResult result = RunIter(f.graph, UniformProbability(f.pairs)).value();
  auto oracle = OracleTermScores(f.graph, f.pairs, f.truth);
  // Restrict to terms that participate in some pair.
  std::vector<double> learned, truth_scores;
  for (TermId t = 0; t < f.graph.num_terms(); ++t) {
    if (!f.graph.PairsOfTerm(t).empty()) {
      learned.push_back(result.term_weights[t]);
      truth_scores.push_back(oracle[t]);
    }
  }
  EXPECT_GT(SpearmanRho(learned, truth_scores), 0.5);
}

TEST(IterDeathTest, WrongProbabilitySizeAborts) {
  Fixture f;
  EXPECT_DEATH(RunIter(f.graph, {1.0}), "GTER_CHECK");
}

}  // namespace
}  // namespace gter
