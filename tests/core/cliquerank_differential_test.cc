// Differential tests over the CliqueRank engines: the dense GEMM engine
// and the masked-sparse engine implement the same recurrence and must
// agree on ANY graph — checked on Erdős–Rényi graphs whose densities
// straddle the kAuto switch point, across seeds and boost modes. A second
// harness pins the CSR-gather masked kernel bit-identically to the
// dense-scratch reference kernel at a size where the O(n²) scratch is the
// thing being replaced.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/common/thread_pool.h"
#include "gter/core/cliquerank.h"
#include "gter/er/pair_space.h"
#include "gter/graph/record_graph.h"
#include "gter/matrix/csr_matrix.h"
#include "gter/matrix/masked_multiply.h"

namespace gter {
namespace {

/// An Erdős–Rényi record graph: each of the n·(n−1)/2 pairs joins the
/// candidate space with probability `density`, with uniform similarities.
struct ErdosRenyiWorld {
  PairSpace pairs;
  std::vector<double> sims;
  RecordGraph graph;

  ErdosRenyiWorld(size_t n, double density, uint64_t seed)
      : pairs(BuildPairs(n, density, seed)), graph(BuildGraph(n, seed)) {}

  static PairSpace BuildPairs(size_t n, double density, uint64_t seed) {
    Rng rng(seed);
    std::vector<RecordPair> edges;
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.UniformDouble() < density) edges.push_back({a, b});
      }
    }
    return PairSpace::FromPairs(std::move(edges));
  }

  RecordGraph BuildGraph(size_t n, uint64_t seed) {
    Rng rng(seed + 1);
    sims.resize(pairs.size());
    for (double& s : sims) s = rng.UniformDouble();
    return RecordGraph::Build(n, pairs, sims);
  }
};

// (records, density, seed): densities straddle dense_density_threshold
// (0.25) so both sides of the kAuto switch are differentially covered.
class CliqueRankEngineDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

TEST_P(CliqueRankEngineDifferential, DenseAndMaskedAgree) {
  auto [n, density, seed] = GetParam();
  ErdosRenyiWorld world(n, density, seed);
  if (world.pairs.size() == 0) GTEST_SKIP() << "empty graph";

  for (BoostMode mode : {BoostMode::kSampled, BoostMode::kExpected}) {
    CliqueRankOptions dense;
    dense.engine = CliqueRankEngine::kDense;
    dense.boost_mode = mode;
    dense.seed = seed * 1000 + 3;
    CliqueRankOptions masked = dense;
    masked.engine = CliqueRankEngine::kMaskedSparse;

    CliqueRankResult rd =
        RunCliqueRank(world.graph, world.pairs, dense).value();
    CliqueRankResult rm =
        RunCliqueRank(world.graph, world.pairs, masked).value();
    ASSERT_EQ(rd.engine_used, CliqueRankEngine::kDense);
    ASSERT_EQ(rm.engine_used, CliqueRankEngine::kMaskedSparse);
    ASSERT_EQ(rd.pair_probability.size(), world.pairs.size());
    for (PairId p = 0; p < world.pairs.size(); ++p) {
      EXPECT_NEAR(rd.pair_probability[p], rm.pair_probability[p], 1e-12)
          << "pair " << p << " mode "
          << (mode == BoostMode::kSampled ? "sampled" : "expected");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, CliqueRankEngineDifferential,
    ::testing::Combine(::testing::Values<size_t>(24, 60),
                       ::testing::Values(0.05, 0.15, 0.35, 0.6),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6)),
    [](const auto& info) {
      std::string name = "n";
      name += std::to_string(std::get<0>(info.param));
      name += "_d";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      name += "_s";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

/// The kernel-level differential: ComputeMaskedProductCsr (O(n) gather)
/// against ComputeMaskedProduct (O(n²) dense scratch) must be
/// bit-identical — same per-entry summation order — at a scale where the
/// dense scratch (n² doubles) is what the CSR path exists to avoid.
TEST(MaskedKernelDifferential, CsrGatherMatchesDenseScratchBitwise) {
  const size_t n = 2000;
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    std::vector<CsrMatrix::Triplet> triplets;
    for (uint32_t i = 0; i < n; ++i) {
      for (int e = 0; e < 6; ++e) {
        uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
        if (j == i) continue;
        double w = rng.OpenUniformDouble();
        triplets.push_back({i, j, w});
        triplets.push_back({j, i, w});
      }
    }
    CsrMatrix trans = CsrMatrix::FromTriplets(n, n, triplets);
    trans.NormalizeRows();
    CsrMatrix pattern = trans;  // same structure
    std::vector<double> prev(pattern.nnz());
    for (double& v : prev) v = rng.UniformDouble();

    std::vector<double> scratch(n * n, 0.0);
    ScatterToDense(pattern, prev.data(), scratch.data());
    std::vector<double> out_dense(pattern.nnz(), -1.0);
    ComputeMaskedProduct(trans, scratch.data(), pattern, out_dense.data());

    std::vector<double> out_csr(pattern.nnz(), -1.0);
    ComputeMaskedProductCsr(trans, prev.data(), pattern, out_csr.data());

    for (size_t e = 0; e < pattern.nnz(); ++e) {
      ASSERT_EQ(out_dense[e], out_csr[e]) << "entry " << e << " seed "
                                          << seed;
    }
  }
}

/// Same bitwise agreement with a thread pool driving the CSR kernel —
/// chunking must not change per-row summation order.
TEST(MaskedKernelDifferential, CsrGatherIsThreadCountInvariant) {
  const size_t n = 600;
  Rng rng(21);
  std::vector<CsrMatrix::Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 5; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      double w = rng.OpenUniformDouble();
      triplets.push_back({i, j, w});
      triplets.push_back({j, i, w});
    }
  }
  CsrMatrix trans = CsrMatrix::FromTriplets(n, n, triplets);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;
  std::vector<double> prev(pattern.nnz());
  for (double& v : prev) v = rng.UniformDouble();

  std::vector<double> serial(pattern.nnz(), 0.0);
  ComputeMaskedProductCsr(trans, prev.data(), pattern, serial.data());

  ThreadPool pool(4);
  std::vector<double> parallel(pattern.nnz(), 0.0);
  ComputeMaskedProductCsr(trans, prev.data(), pattern, parallel.data(),
                          ExecContext::WithPool(&pool));
  for (size_t e = 0; e < pattern.nnz(); ++e) {
    ASSERT_EQ(serial[e], parallel[e]) << "entry " << e;
  }
}

}  // namespace
}  // namespace gter
