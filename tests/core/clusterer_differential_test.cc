// Differential suite pinning the Clusterer refactor: routing correlation
// clustering through the strategy interface must be bitwise-identical to
// calling CorrelationCluster directly (the pre-refactor path), over the
// same Erdős–Rényi graph corpus the engine differentials use, at 1 and 8
// threads. A second case pins connected components against the historical
// ResolveFromMatches closure.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/common/thread_pool.h"
#include "gter/core/clusterer.h"
#include "gter/core/correlation_clustering.h"
#include "gter/er/pair_space.h"
#include "gter/graph/union_find.h"

namespace gter {
namespace {

struct ErdosRenyiWorld {
  PairSpace pairs;
  std::vector<double> prob;

  ErdosRenyiWorld(size_t n, double density, uint64_t seed) {
    Rng rng(seed);
    std::vector<RecordPair> edges;
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.UniformDouble() < density) edges.push_back({a, b});
      }
    }
    pairs = PairSpace::FromPairs(std::move(edges));
    prob.resize(pairs.size());
    for (double& p : prob) p = rng.UniformDouble();
  }
};

class ClustererDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

TEST_P(ClustererDifferential, CorrelationViaInterfaceIsBitIdentical) {
  auto [n, density, seed] = GetParam();
  ErdosRenyiWorld world(n, density, seed);
  const double eta = 0.6;

  // The pre-refactor path: CorrelationCluster called directly with the
  // together-threshold at η.
  CorrelationClusteringOptions direct_options;
  direct_options.together_threshold = eta;
  CorrelationClusteringResult direct =
      CorrelationCluster(n, world.pairs, world.prob, direct_options).value();

  ClusterProblem problem;
  problem.num_records = n;
  problem.pairs = &world.pairs;
  problem.pair_probability = &world.prob;
  problem.eta = eta;
  std::unique_ptr<Clusterer> clusterer =
      MakeClusterer(ClustererKind::kCorrelation);

  // Serial and 8-thread contexts must both reproduce the direct call
  // exactly — labels are integers, so "bitwise" is plain equality.
  Clustering serial = clusterer->Cluster(problem).value();
  EXPECT_EQ(serial.cluster_of, direct.cluster_of);

  ThreadPool pool(8);
  Clustering pooled =
      clusterer->Cluster(problem, ExecContext::WithPool(&pool)).value();
  EXPECT_EQ(pooled.cluster_of, direct.cluster_of);
  EXPECT_EQ(pooled.num_clusters, serial.num_clusters);
}

TEST_P(ClustererDifferential, ConnectedComponentsMatchesUnionFindClosure) {
  auto [n, density, seed] = GetParam();
  ErdosRenyiWorld world(n, density, seed);
  const double eta = 0.6;

  // The historical endgame: union every p ≥ η pair, label by component.
  UnionFind uf(n);
  for (PairId p = 0; p < world.pairs.size(); ++p) {
    if (world.prob[p] >= eta) {
      uf.Union(world.pairs.pair(p).a, world.pairs.pair(p).b);
    }
  }
  std::vector<uint32_t> expected = uf.ComponentLabels();

  ClusterProblem problem;
  problem.num_records = n;
  problem.pairs = &world.pairs;
  problem.pair_probability = &world.prob;
  problem.eta = eta;
  Clustering clustering =
      MakeClusterer(ClustererKind::kConnectedComponents)
          ->Cluster(problem)
          .value();
  EXPECT_EQ(clustering.cluster_of, expected);
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, ClustererDifferential,
    ::testing::Combine(::testing::Values<size_t>(24, 60),
                       ::testing::Values(0.05, 0.15, 0.35, 0.6),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6)),
    [](const auto& info) {
      std::string name = "n";
      name += std::to_string(std::get<0>(info.param));
      name += "_d";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      name += "_s";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace gter
