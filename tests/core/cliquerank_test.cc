#include "gter/core/cliquerank.h"

#include <gtest/gtest.h>

#include "gter/common/thread_pool.h"
#include "gter/core/rss.h"

namespace gter {
namespace {

/// Same two-clique structure as the RSS tests.
struct TwoCliques {
  Dataset ds{"test"};
  PairSpace pairs;
  std::vector<double> sims;

  TwoCliques() {
    ds.AddRecord(0, "aa");        // 0
    ds.AddRecord(0, "aa");        // 1
    ds.AddRecord(0, "aa weak");   // 2
    ds.AddRecord(0, "bb weak");   // 3
    ds.AddRecord(0, "bb");        // 4
    ds.AddRecord(0, "bb");        // 5
    pairs = PairSpace::Build(ds);
    sims.assign(pairs.size(), 0.0);
    Set(0, 1, 0.9);
    Set(0, 2, 0.85);
    Set(1, 2, 0.9);
    Set(3, 4, 0.9);
    Set(3, 5, 0.85);
    Set(4, 5, 0.9);
    Set(2, 3, 0.1);
  }

  void Set(RecordId a, RecordId b, double w) { sims[pairs.Find(a, b)] = w; }

  RecordGraph Graph() const {
    return RecordGraph::Build(ds.size(), pairs, sims);
  }
};

TEST(CliqueRankTest, SeparatesCliquesFromBridge) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankResult result = RunCliqueRank(graph, f.pairs, {}).value();
  EXPECT_GT(result.pair_probability[f.pairs.Find(0, 1)], 0.9);
  EXPECT_GT(result.pair_probability[f.pairs.Find(4, 5)], 0.9);
  EXPECT_LT(result.pair_probability[f.pairs.Find(2, 3)],
            result.pair_probability[f.pairs.Find(0, 1)]);
}

TEST(CliqueRankTest, ProbabilitiesClampedToUnitInterval) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankOptions options;
  options.max_steps = 40;  // long accumulation would exceed 1 unclamped
  CliqueRankResult result = RunCliqueRank(graph, f.pairs, options).value();
  for (double p : result.pair_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(CliqueRankTest, DenseAndMaskedEnginesAgree) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankOptions dense_opts;
  dense_opts.engine = CliqueRankEngine::kDense;
  CliqueRankOptions masked_opts;
  masked_opts.engine = CliqueRankEngine::kMaskedSparse;
  auto dense = RunCliqueRank(graph, f.pairs, dense_opts).value();
  auto masked = RunCliqueRank(graph, f.pairs, masked_opts).value();
  ASSERT_EQ(dense.pair_probability.size(), masked.pair_probability.size());
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    EXPECT_NEAR(dense.pair_probability[p], masked.pair_probability[p], 1e-9);
  }
  EXPECT_EQ(dense.engine_used, CliqueRankEngine::kDense);
  EXPECT_EQ(masked.engine_used, CliqueRankEngine::kMaskedSparse);
}

TEST(CliqueRankTest, AutoEngineSelectsByDensity) {
  TwoCliques f;  // 7 edges over 15 possible → density ≈ 0.47
  RecordGraph graph = f.Graph();
  CliqueRankOptions options;
  options.engine = CliqueRankEngine::kAuto;
  options.dense_density_threshold = 0.25;
  auto result = RunCliqueRank(graph, f.pairs, options).value();
  EXPECT_EQ(result.engine_used, CliqueRankEngine::kDense);
  options.dense_density_threshold = 0.9;
  result = RunCliqueRank(graph, f.pairs, options).value();
  EXPECT_EQ(result.engine_used, CliqueRankEngine::kMaskedSparse);
}

TEST(CliqueRankTest, SingleStepEqualsBoostedTransition) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankOptions options;
  options.max_steps = 1;
  options.use_boost = false;  // then M¹ = M_t exactly
  auto result = RunCliqueRank(graph, f.pairs, options).value();
  CsrMatrix mt = graph.TransitionMatrix(options.alpha);
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    const RecordPair& rp = f.pairs.pair(p);
    double expected = (mt.At(rp.a, rp.b) + mt.At(rp.b, rp.a)) / 2.0;
    EXPECT_NEAR(result.pair_probability[p], std::min(expected, 1.0), 1e-12);
  }
}

TEST(CliqueRankTest, ExpectedBoostModeIsDeterministicAcrossSeeds) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankOptions a, b;
  a.boost_mode = b.boost_mode = BoostMode::kExpected;
  a.seed = 1;
  b.seed = 999;
  auto ra = RunCliqueRank(graph, f.pairs, a).value();
  auto rb = RunCliqueRank(graph, f.pairs, b).value();
  EXPECT_EQ(ra.pair_probability, rb.pair_probability);
}

TEST(CliqueRankTest, SampledBoostIsDeterministicInSeed) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  CliqueRankOptions options;
  options.seed = 42;
  auto a = RunCliqueRank(graph, f.pairs, options).value();
  auto b = RunCliqueRank(graph, f.pairs, options).value();
  EXPECT_EQ(a.pair_probability, b.pair_probability);
}

TEST(CliqueRankTest, BoostLiftsBigCliqueProbability) {
  // 12-node uniform clique, few steps: boost rescues reachability.
  Dataset ds("test");
  for (int i = 0; i < 12; ++i) ds.AddRecord(0, "big");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> sims(pairs.size(), 0.8);
  RecordGraph graph = RecordGraph::Build(ds.size(), pairs, sims);
  CliqueRankOptions with_boost;
  with_boost.max_steps = 5;
  CliqueRankOptions no_boost = with_boost;
  no_boost.use_boost = false;
  auto pb = RunCliqueRank(graph, pairs, with_boost).value();
  auto pp = RunCliqueRank(graph, pairs, no_boost).value();
  double mean_b = 0.0, mean_p = 0.0;
  for (PairId p = 0; p < pairs.size(); ++p) {
    mean_b += pb.pair_probability[p];
    mean_p += pp.pair_probability[p];
  }
  EXPECT_GT(mean_b, mean_p);
}

TEST(CliqueRankTest, AgreesWithRssOnCliqueStructure) {
  // The matrix method approximates the sampling method: both must rank
  // within-clique pairs above the bridge.
  TwoCliques f;
  RecordGraph graph = f.Graph();
  RssOptions rss_options;
  rss_options.num_walks = 400;
  auto rss = RunRss(graph, f.pairs, rss_options).value();
  auto cr = RunCliqueRank(graph, f.pairs, {}).value();
  PairId in_clique = f.pairs.Find(0, 1);
  PairId bridge = f.pairs.Find(2, 3);
  EXPECT_GT(rss[in_clique], rss[bridge]);
  EXPECT_GT(cr.pair_probability[in_clique], cr.pair_probability[bridge]);
}

TEST(CliqueRankTest, PairOfIsolatedRecords) {
  Dataset ds("test");
  ds.AddRecord(0, "only");
  ds.AddRecord(0, "only");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> sims(pairs.size(), 0.7);
  RecordGraph graph = RecordGraph::Build(ds.size(), pairs, sims);
  auto result = RunCliqueRank(graph, pairs, {}).value();
  EXPECT_GT(result.pair_probability[0], 0.9);
}

TEST(CliqueRankTest, ParallelPoolMatchesSequential) {
  TwoCliques f;
  RecordGraph graph = f.Graph();
  ThreadPool pool(4);
  auto a = RunCliqueRank(graph, f.pairs, {}).value();
  auto b =
      RunCliqueRank(graph, f.pairs, {}, ExecContext::WithPool(&pool)).value();
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    EXPECT_NEAR(a.pair_probability[p], b.pair_probability[p], 1e-12);
  }
}

}  // namespace
}  // namespace gter
