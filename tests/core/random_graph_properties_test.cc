// Property sweeps over random record graphs: invariants that must hold for
// ANY input, checked across sizes, densities and exponents (TEST_P).

#include <tuple>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/core/cliquerank.h"
#include "gter/core/iter.h"
#include "gter/core/rss.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"

namespace gter {
namespace {

/// A random dataset where records draw `terms_per_record` terms from a
/// vocabulary of `vocab` pseudo-terms — every structural shape the
/// algorithms must tolerate emerges at some (n, vocab) corner: dense
/// near-cliques, isolated records, huge tied rows.
struct RandomWorld {
  Dataset ds{"random"};
  PairSpace pairs;
  std::vector<double> sims;
  RecordGraph graph;

  RandomWorld(size_t n, size_t vocab, size_t terms_per_record, uint64_t seed)
      : pairs(Build(n, vocab, terms_per_record, seed)),
        graph(BuildGraph(seed)) {}

  PairSpace Build(size_t n, size_t vocab, size_t terms_per_record,
                  uint64_t seed) {
    Rng rng(seed);
    for (size_t r = 0; r < n; ++r) {
      std::string text;
      for (size_t t = 0; t < terms_per_record; ++t) {
        text.push_back('t');
        text += std::to_string(rng.NextBounded(vocab));
        text.push_back(' ');
      }
      ds.AddRecord(0, text);
    }
    return PairSpace::Build(ds);
  }

  RecordGraph BuildGraph(uint64_t seed) {
    Rng rng(seed + 1);
    sims.resize(pairs.size());
    for (auto& s : sims) s = rng.UniformDouble();
    return RecordGraph::Build(ds.size(), pairs, sims);
  }
};

class RandomGraphProperties
    : public ::testing::TestWithParam<
          std::tuple<size_t, size_t, double, uint64_t>> {};

TEST_P(RandomGraphProperties, CliqueRankEnginesAgreeAndStayBounded) {
  auto [n, vocab, alpha, seed] = GetParam();
  RandomWorld world(n, vocab, 4, seed);
  if (world.pairs.size() == 0) GTEST_SKIP() << "no candidate pairs";

  CliqueRankOptions dense;
  dense.engine = CliqueRankEngine::kDense;
  dense.alpha = alpha;
  CliqueRankOptions masked = dense;
  masked.engine = CliqueRankEngine::kMaskedSparse;

  auto rd = RunCliqueRank(world.graph, world.pairs, dense).value();
  auto rm = RunCliqueRank(world.graph, world.pairs, masked).value();
  for (PairId p = 0; p < world.pairs.size(); ++p) {
    EXPECT_NEAR(rd.pair_probability[p], rm.pair_probability[p], 1e-9);
    EXPECT_GE(rd.pair_probability[p], 0.0);
    EXPECT_LE(rd.pair_probability[p], 1.0);
  }
}

TEST_P(RandomGraphProperties, TransitionRowsAreStochastic) {
  auto [n, vocab, alpha, seed] = GetParam();
  RandomWorld world(n, vocab, 4, seed);
  // Records with no candidate pair are isolated nodes: their transition row
  // must be empty (sum exactly 0), every other row must sum to 1.
  std::vector<size_t> degree(world.ds.size(), 0);
  for (const RecordPair& rp : world.pairs.pairs()) {
    ++degree[rp.a];
    ++degree[rp.b];
  }
  CsrMatrix mt = world.graph.TransitionMatrix(alpha);
  ASSERT_EQ(mt.rows(), world.ds.size());
  for (size_t r = 0; r < mt.rows(); ++r) {
    auto values = mt.RowValues(r);
    double sum = 0.0;
    for (double v : values) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    if (degree[r] == 0) {
      EXPECT_EQ(sum, 0.0) << "isolated node " << r << " has outgoing mass";
    } else {
      EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << r;
    }
  }
}

TEST_P(RandomGraphProperties, BoostedValuesStayInUnitInterval) {
  auto [n, vocab, alpha, seed] = GetParam();
  (void)alpha;
  RandomWorld world(n, vocab, 4, seed);
  if (world.pairs.size() == 0) GTEST_SKIP();
  // Eq. 12 maps t = M_t[i,j] through B·t/(1−t+B·t) with B = (1+b)^α > 1;
  // the result must stay in (0,1) whenever t ∈ (0,1), hit 1 exactly when
  // t = 1, and this must hold for ANY α and either boost realization.
  Rng rng(seed * 31 + 7);
  for (BoostMode mode : {BoostMode::kSampled, BoostMode::kExpected}) {
    CliqueRankOptions options;
    options.alpha = 1.0 + 3.0 * rng.UniformDouble();  // α ∈ [1, 4]
    options.boost_mode = mode;
    options.seed = seed;
    CsrMatrix trans = world.graph.TransitionMatrix(options.alpha);
    std::vector<double> boosted = CliqueRankBoostedValues(trans, options);
    ASSERT_EQ(boosted.size(), trans.nnz());
    size_t e = 0;
    for (size_t r = 0; r < trans.rows(); ++r) {
      for (double t : trans.RowValues(r)) {
        double v = boosted[e++];
        if (t == 1.0) {
          EXPECT_DOUBLE_EQ(v, 1.0);
        } else {
          EXPECT_GT(v, 0.0) << "t=" << t;
          EXPECT_LT(v, 1.0) << "t=" << t;
          EXPECT_GE(v, t);  // the boost never shrinks a transition
        }
      }
    }
  }
}

TEST_P(RandomGraphProperties, RssProbabilitiesValidAndSeedStable) {
  auto [n, vocab, alpha, seed] = GetParam();
  if (n > 40) GTEST_SKIP() << "RSS sweep kept small";
  RandomWorld world(n, vocab, 4, seed);
  if (world.pairs.size() == 0) GTEST_SKIP();
  RssOptions options;
  options.alpha = alpha;
  options.num_walks = 20;
  options.max_steps = 6;
  auto a = RunRss(world.graph, world.pairs, options).value();
  auto b = RunRss(world.graph, world.pairs, options).value();
  EXPECT_EQ(a, b);
  for (double p : a) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(RandomGraphProperties, IterConvergesOnRandomBipartiteGraphs) {
  auto [n, vocab, alpha, seed] = GetParam();
  (void)alpha;
  RandomWorld world(n, vocab, 4, seed);
  if (world.pairs.size() == 0) GTEST_SKIP();
  BipartiteGraph graph = BipartiteGraph::Build(world.ds, world.pairs);
  // Terms whose only pair is self-referential decay harmonically (x ←
  // x/(1+x)), so tight tolerances need unbounded sweeps on adversarial
  // graphs; the practical guarantee is convergence at a modest tolerance.
  IterOptions options;
  options.tolerance = 1e-3;
  options.max_iterations = 300;
  IterResult result =
      RunIter(graph, std::vector<double>(world.pairs.size(), 1.0), options)
          .value();
  EXPECT_TRUE(result.converged);
  for (double x : result.term_weights) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);  // logistic normalization keeps weights in [0, 1)
  }
  for (PairId p = 0; p < world.pairs.size(); ++p) {
    double expected = 0.0;
    for (TermId t : graph.TermsOfPair(p)) expected += result.term_weights[t];
    EXPECT_NEAR(result.pair_scores[p], expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, RandomGraphProperties,
    ::testing::Values(
        // (records, vocab, alpha, seed): sparse, dense, tied, sharp.
        std::make_tuple<size_t, size_t, double, uint64_t>(10, 100, 20.0, 1),
        std::make_tuple<size_t, size_t, double, uint64_t>(30, 20, 20.0, 2),
        std::make_tuple<size_t, size_t, double, uint64_t>(30, 5, 5.0, 3),
        std::make_tuple<size_t, size_t, double, uint64_t>(60, 40, 1.0, 4),
        std::make_tuple<size_t, size_t, double, uint64_t>(60, 200, 40.0, 5),
        std::make_tuple<size_t, size_t, double, uint64_t>(25, 3, 20.0, 6)),
    [](const auto& info) {
      std::string name = "n";
      name += std::to_string(std::get<0>(info.param));
      name += "_v";
      name += std::to_string(std::get<1>(info.param));
      name += "_a";
      name += std::to_string(static_cast<int>(std::get<2>(info.param)));
      name += "_s";
      name += std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace gter
