#include "gter/core/correlation_clustering.h"

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/eval/cluster_metrics.h"
#include "gter/core/fusion.h"
#include "gter/core/resolver.h"

namespace gter {
namespace {

/// Builds a pair space over `n` records that all share one term, with a
/// given probability per pair (default 0 = strong "apart" vote).
struct Fixture {
  Dataset ds{"test"};
  PairSpace pairs;
  std::vector<double> probability;

  explicit Fixture(size_t n) {
    for (size_t i = 0; i < n; ++i) ds.AddRecord(0, "shared");
    pairs = PairSpace::Build(ds);
    probability.assign(pairs.size(), 0.0);
  }

  void Set(RecordId a, RecordId b, double p) {
    probability[pairs.Find(a, b)] = p;
  }
};

TEST(CorrelationClusteringTest, RecoversTwoCleanCliques) {
  Fixture f(6);
  for (RecordId a = 0; a < 3; ++a) {
    for (RecordId b = a + 1; b < 3; ++b) f.Set(a, b, 1.0);
  }
  for (RecordId a = 3; a < 6; ++a) {
    for (RecordId b = a + 1; b < 6; ++b) f.Set(a, b, 1.0);
  }
  auto result = CorrelationCluster(6, f.pairs, f.probability).value();
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[1]);
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[2]);
  EXPECT_EQ(result.cluster_of[3], result.cluster_of[4]);
  EXPECT_EQ(result.cluster_of[3], result.cluster_of[5]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[3]);
}

TEST(CorrelationClusteringTest, SingleFalseLinkIsOutvoted) {
  // Two 4-cliques joined by one spurious p=1 edge: transitive closure
  // merges everything; correlation clustering keeps them apart because 1
  // agree-vote cannot beat the 16 disagree-votes a merge would create.
  Fixture f(8);
  for (RecordId a = 0; a < 4; ++a) {
    for (RecordId b = a + 1; b < 4; ++b) f.Set(a, b, 1.0);
  }
  for (RecordId a = 4; a < 8; ++a) {
    for (RecordId b = a + 1; b < 8; ++b) f.Set(a, b, 1.0);
  }
  f.Set(0, 4, 1.0);  // the false link

  // Closure: one cluster.
  std::vector<std::pair<uint32_t, uint32_t>> matched;
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    if (f.probability[p] >= 0.98) {
      matched.emplace_back(f.pairs.pair(p).a, f.pairs.pair(p).b);
    }
  }
  auto closure = ClustersFromMatches(8, matched);
  EXPECT_EQ(closure[0], closure[7]);

  // Correlation clustering: two clusters.
  auto result = CorrelationCluster(8, f.pairs, f.probability).value();
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[3]);
  EXPECT_EQ(result.cluster_of[4], result.cluster_of[7]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[4]);
}

TEST(CorrelationClusteringTest, AllApartWhenNoPositiveVotes) {
  Fixture f(5);  // all probabilities 0
  auto result = CorrelationCluster(5, f.pairs, f.probability).value();
  std::set<uint32_t> distinct(result.cluster_of.begin(),
                              result.cluster_of.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(CorrelationClusteringTest, ObjectiveMatchesHandCount) {
  Fixture f(3);
  f.Set(0, 1, 1.0);  // together-vote
  // (0,2) and (1,2) stay 0 → apart-votes.
  auto result = CorrelationCluster(3, f.pairs, f.probability).value();
  // Optimal: {0,1},{2} → agreement on all 3 pairs → objective 3.
  EXPECT_DOUBLE_EQ(result.objective, 3.0);
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[1]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[2]);
}

TEST(CorrelationClusteringTest, DeterministicInSeed) {
  Fixture f(10);
  Rng rng(5);
  for (auto& p : f.probability) p = rng.Bernoulli(0.3) ? 1.0 : 0.0;
  CorrelationClusteringOptions options;
  options.seed = 77;
  auto a = CorrelationCluster(10, f.pairs, f.probability, options).value();
  auto b = CorrelationCluster(10, f.pairs, f.probability, options).value();
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(CorrelationClusteringTest, LabelsAreDense) {
  Fixture f(7);
  f.Set(2, 5, 1.0);
  auto result = CorrelationCluster(7, f.pairs, f.probability).value();
  uint32_t max_label = 0;
  for (uint32_t l : result.cluster_of) max_label = std::max(max_label, l);
  std::set<uint32_t> distinct(result.cluster_of.begin(),
                              result.cluster_of.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(max_label) + 1);
}

TEST(CorrelationClusteringTest, BeatsClosureOnCitationBenchmark) {
  // The motivating production case: on clique-heavy data, closure chains
  // saturated false positives into mega-clusters; correlation clustering
  // outvotes them.
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.15, 11);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 2;
  config.cliquerank.max_steps = 10;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult fused = pipeline.Run().value();

  ResolutionResult closure =
      ResolveFromMatches(data.dataset, pipeline.pairs(), fused.matches);
  auto corr = CorrelationCluster(data.dataset.size(), pipeline.pairs(),
                                 fused.pair_probability).value();

  double f1_closure =
      EvaluateClustering(closure.cluster_of, data.truth).pairwise_f1;
  double f1_corr =
      EvaluateClustering(corr.cluster_of, data.truth).pairwise_f1;
  EXPECT_GT(f1_corr, f1_closure);
  EXPECT_GT(f1_corr, 0.75);
}

}  // namespace
}  // namespace gter
