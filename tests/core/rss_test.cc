#include "gter/core/rss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gter/common/thread_pool.h"

namespace gter {
namespace {

/// Two well-separated cliques {0,1,2} and {3,4,5} linked by one weak
/// bridge edge (2,3). Within-clique similarities are high; the bridge is
/// weak — the structure CliqueRank/RSS is designed to exploit.
struct TwoCliques {
  Dataset ds{"test"};
  PairSpace pairs;
  std::vector<double> sims;
  RecordGraph graph;

  TwoCliques() : pairs(BuildPairs()), graph(BuildGraph()) {}

  PairSpace BuildPairs() {
    // Clique A shares "aa", clique B shares "bb"; the bridge records 2 and
    // 3 additionally share "weak".
    ds.AddRecord(0, "aa");        // 0
    ds.AddRecord(0, "aa");        // 1
    ds.AddRecord(0, "aa weak");   // 2
    ds.AddRecord(0, "bb weak");   // 3
    ds.AddRecord(0, "bb");        // 4
    ds.AddRecord(0, "bb");        // 5
    return PairSpace::Build(ds);
  }

  RecordGraph BuildGraph() {
    sims.assign(pairs.size(), 0.0);
    auto set = [&](RecordId a, RecordId b, double w) {
      PairId p = pairs.Find(a, b);
      ASSERT_TRUE(p != kInvalidPairId) << a << "," << b;
      sims[p] = w;
    };
    set(0, 1, 0.9);
    set(0, 2, 0.85);
    set(1, 2, 0.9);
    set(3, 4, 0.9);
    set(3, 5, 0.85);
    set(4, 5, 0.9);
    set(2, 3, 0.1);  // the bridge
    return RecordGraph::Build(ds.size(), pairs, sims);
  }
};

TEST(RssTest, WithinCliqueProbabilityHigh) {
  TwoCliques f;
  RssOptions options;
  options.num_walks = 200;
  auto p = RunRss(f.graph, f.pairs, options).value();
  EXPECT_GT(p[f.pairs.Find(0, 1)], 0.9);
  EXPECT_GT(p[f.pairs.Find(4, 5)], 0.9);
}

TEST(RssTest, BridgeProbabilityLow) {
  TwoCliques f;
  RssOptions options;
  options.num_walks = 200;
  auto p = RunRss(f.graph, f.pairs, options).value();
  EXPECT_LT(p[f.pairs.Find(2, 3)], 0.5);
  EXPECT_LT(p[f.pairs.Find(2, 3)], p[f.pairs.Find(0, 1)]);
}

TEST(RssTest, ProbabilitiesAreValidAndDeterministic) {
  TwoCliques f;
  RssOptions options;
  options.num_walks = 50;
  options.seed = 11;
  auto a = RunRss(f.graph, f.pairs, options).value();
  auto b = RunRss(f.graph, f.pairs, options).value();
  EXPECT_EQ(a, b);
  for (double v : a) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RssTest, BoostHelpsLargeCliques) {
  // A 12-node clique with uniform weights: without the bonus, reaching a
  // specific target within S steps is unlikely; the boost fixes it
  // (the paper's 192-record Paper-dataset motivation).
  Dataset ds("test");
  for (int i = 0; i < 12; ++i) ds.AddRecord(0, "big");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> sims(pairs.size(), 0.8);
  RecordGraph graph = RecordGraph::Build(ds.size(), pairs, sims);

  RssOptions with_boost;
  with_boost.num_walks = 100;
  with_boost.max_steps = 5;
  RssOptions no_boost = with_boost;
  no_boost.use_boost = false;

  auto p_boost = RunRss(graph, pairs, with_boost).value();
  auto p_plain = RunRss(graph, pairs, no_boost).value();
  double mean_boost = 0.0, mean_plain = 0.0;
  for (PairId p = 0; p < pairs.size(); ++p) {
    mean_boost += p_boost[p];
    mean_plain += p_plain[p];
  }
  mean_boost /= static_cast<double>(pairs.size());
  mean_plain /= static_cast<double>(pairs.size());
  EXPECT_GT(mean_boost, mean_plain + 0.15);
  EXPECT_GT(mean_boost, 0.7);
}

TEST(RssTest, EarlyStopSuppressesEscapedWalks) {
  TwoCliques f;
  RssOptions with_stop;
  with_stop.num_walks = 200;
  RssOptions no_stop = with_stop;
  no_stop.early_stop = false;
  auto p_stop = RunRss(f.graph, f.pairs, with_stop).value();
  auto p_free = RunRss(f.graph, f.pairs, no_stop).value();
  // Without early stop the surfer may wander out and back, so cross-clique
  // probability can only grow.
  EXPECT_LE(p_stop[f.pairs.Find(2, 3)], p_free[f.pairs.Find(2, 3)] + 0.05);
}

TEST(RssTest, MoreStepsNeverReduceReachability) {
  TwoCliques f;
  RssOptions few;
  few.num_walks = 400;
  few.max_steps = 1;
  RssOptions many = few;
  many.max_steps = 20;
  auto p_few = RunRss(f.graph, f.pairs, few).value();
  auto p_many = RunRss(f.graph, f.pairs, many).value();
  double sum_few = 0.0, sum_many = 0.0;
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    sum_few += p_few[p];
    sum_many += p_many[p];
  }
  EXPECT_GE(sum_many, sum_few - 0.1);
}

TEST(RssTest, OddWalkCountRunsEveryWalk) {
  // num_walks=9 must run all 9 walks and normalize by 9: every probability
  // is then an exact multiple of 1/9. The old half-split ran 8 walks and
  // produced multiples of 1/8.
  Dataset ds("test");
  for (int i = 0; i < 12; ++i) ds.AddRecord(0, "big");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> sims(pairs.size(), 0.8);
  RecordGraph graph = RecordGraph::Build(ds.size(), pairs, sims);

  RssOptions options;
  options.num_walks = 9;
  options.max_steps = 5;
  options.use_boost = false;  // keeps mid-range probabilities in play
  auto p = RunRss(graph, pairs, options).value();
  bool saw_fractional = false;
  for (double v : p) {
    double scaled = v * 9.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9) << "v=" << v;
    if (v > 0.0 && v < 1.0) saw_fractional = true;
  }
  // The check above is vacuous if every walk succeeded or failed.
  EXPECT_TRUE(saw_fractional);
}

TEST(RssTest, BitIdenticalAcrossThreadCounts) {
  TwoCliques f;
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  for (uint64_t seed : {3u, 11u, 2018u}) {
    RssOptions options;
    options.num_walks = 50;
    options.seed = seed;
    options.grain = 1;  // force chunking even on this tiny pair space

    auto p_serial = RunRss(f.graph, f.pairs, options).value();
    auto p_one =
        RunRss(f.graph, f.pairs, options, ExecContext::WithPool(&pool1))
            .value();
    auto p_eight =
        RunRss(f.graph, f.pairs, options, ExecContext::WithPool(&pool8))
            .value();
    EXPECT_EQ(p_serial, p_one) << "seed " << seed;
    EXPECT_EQ(p_serial, p_eight) << "seed " << seed;
  }
}

TEST(RssTest, IsolatedPairStillDefined) {
  Dataset ds("test");
  ds.AddRecord(0, "only");
  ds.AddRecord(0, "only");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> sims(pairs.size(), 0.5);
  RecordGraph graph = RecordGraph::Build(ds.size(), pairs, sims);
  auto p = RunRss(graph, pairs, {}).value();
  // The two records are each other's only neighbor → always reached.
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

}  // namespace
}  // namespace gter
